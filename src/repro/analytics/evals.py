"""Regression evals: score a policy across a scenario suite and diff two ingests.

The eval workflow keeps perf/behaviour PRs honest:

1. ingest a known-good result set under a *baseline* label
   (``repro ingest --store … --label baseline``);
2. after a change, ingest the fresh results under a *candidate* label;
3. ``repro eval --baseline baseline --candidate candidate`` compares the two label's
   ``runs`` rows scenario by scenario (and policy by policy), applies per-metric
   regression thresholds, and exits non-zero on any breach — the CI contract.

Metrics where lower is better (energy, time, rounds) fail when the candidate grows
past the threshold fraction; higher-is-better metrics (accuracy) fail when it shrinks
past it.  Scenarios present in the baseline but missing from the candidate fail the
eval too: silently dropping coverage is itself a regression.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analytics.query import filter_mask
from repro.analytics.warehouse import Warehouse
from repro.exceptions import AnalyticsError


@dataclass(frozen=True)
class Threshold:
    """Allowed relative movement of one ``runs`` metric before the eval fails."""

    metric: str
    #: Maximum relative regression, e.g. ``0.05`` = 5 % in the *bad* direction.
    max_regression: float
    higher_is_better: bool = False

    def passes(self, baseline: float, candidate: float) -> bool:
        """Whether the candidate value stays within the allowed movement."""
        delta = relative_delta(baseline, candidate)
        if self.higher_is_better:
            return delta >= -self.max_regression
        return delta <= self.max_regression


#: Default eval thresholds: energy/time/rounds may not grow > 5 % (rounds 10 %),
#: accuracy may not drop > 1 %.
DEFAULT_THRESHOLDS: tuple[Threshold, ...] = (
    Threshold("final_accuracy", 0.01, higher_is_better=True),
    Threshold("participant_energy_j", 0.05),
    Threshold("global_energy_j", 0.05),
    Threshold("total_time_s", 0.05),
    Threshold("rounds_executed", 0.10),
)


def relative_delta(baseline: float, candidate: float) -> float:
    """Signed relative change of ``candidate`` vs ``baseline`` (0-safe)."""
    return (candidate - baseline) / max(abs(baseline), 1e-12)


def parse_threshold(text: str) -> Threshold:
    """Parse a CLI threshold ``metric=pct`` (lower-better) or ``metric=+pct``.

    A leading ``+`` marks a higher-is-better metric (it may not *drop* by more than
    ``pct`` percent); otherwise the metric may not *grow* by more than ``pct``.
    """
    name, sep, raw = text.partition("=")
    name = name.strip().replace("-", "_")
    raw = raw.strip()
    if not sep or not name or not raw:
        raise AnalyticsError(
            f"invalid threshold {text!r}; expected metric=pct (e.g. global_energy_j=5)"
        )
    higher_is_better = raw.startswith("+")
    try:
        percent = float(raw.lstrip("+"))
    except ValueError:
        raise AnalyticsError(f"invalid threshold percentage in {text!r}") from None
    if percent < 0:
        raise AnalyticsError(f"threshold percentage must be >= 0, got {percent}")
    return Threshold(name, percent / 100.0, higher_is_better=higher_is_better)


def _scenario_names(columns: Mapping[str, np.ndarray], index: np.ndarray) -> np.ndarray:
    """Human-stable scenario key per row: the preset name, or a composed descriptor."""
    presets = columns["preset"][index].astype(str)
    workloads = columns["workload"][index].astype(str)
    settings = columns["setting"][index].astype(str)
    devices = columns["num_devices"][index]
    composed = np.array(
        [
            f"{workload}/{setting}/N{'?' if np.isnan(n) else int(n)}"
            for workload, setting, n in zip(workloads, settings, devices)
        ],
        dtype=str,
    )
    return np.where(presets != "", presets, composed)


def _score_label(
    warehouse: Warehouse, label: str, metrics: Sequence[str]
) -> dict[tuple[str, str], dict[str, float]]:
    """Mean ``runs`` metrics of one ingest label, keyed by (scenario, policy)."""
    columns = warehouse.table("runs")
    mask = filter_mask("runs", columns, {"label": [label]})
    index = np.flatnonzero(mask)
    if index.size == 0:
        known = warehouse.labels()
        raise AnalyticsError(
            f"no ingested runs carry the label {label!r} "
            f"(ingested labels: {known or 'none'}); run `python -m repro ingest`"
        )
    scenarios = _scenario_names(columns, index)
    policies = columns["policy"][index].astype(str)
    keys = np.char.add(np.char.add(scenarios, "\x1f"), policies)
    scores: dict[tuple[str, str], dict[str, float]] = {}
    for key in np.unique(keys):
        rows = index[keys == key]
        scenario, policy = key.split("\x1f")
        scores[(scenario, policy)] = {
            metric: float(np.nanmean(columns[metric][rows]))
            if np.any(~np.isnan(columns[metric][rows]))
            else float("nan")
            for metric in metrics
        }
    return scores


@dataclass(frozen=True)
class MetricComparison:
    """One (scenario, policy, metric) verdict of a regression eval."""

    scenario: str
    policy: str
    metric: str
    baseline: float
    candidate: float
    delta_rel: float
    limit_rel: float
    higher_is_better: bool
    passed: bool

    def as_row(self) -> tuple[object, ...]:
        """Row representation for the report table."""
        return (
            self.scenario,
            self.policy,
            self.metric,
            self.baseline,
            self.candidate,
            f"{self.delta_rel:+.2%}",
            f"{'-' if self.higher_is_better else '+'}{self.limit_rel:.0%}",
            "pass" if self.passed else "FAIL",
        )


#: Column headers of the eval report table.
EVAL_HEADERS: tuple[str, ...] = (
    "scenario",
    "policy",
    "metric",
    "baseline",
    "candidate",
    "delta",
    "limit",
    "verdict",
)


@dataclass
class EvalReport:
    """Outcome of one regression eval between two ingest labels."""

    baseline_label: str
    candidate_label: str
    suite: tuple[str, ...]
    comparisons: list[MetricComparison]
    missing: list[tuple[str, str]]  # (scenario, policy) in baseline but not candidate

    @property
    def ok(self) -> bool:
        """True when every compared metric stayed within threshold and none vanished."""
        return not self.missing and all(c.passed for c in self.comparisons)

    @property
    def failures(self) -> list[MetricComparison]:
        """The comparisons that breached their threshold."""
        return [c for c in self.comparisons if not c.passed]

    def to_dict(self) -> dict:
        """JSON payload (the CI eval-report artifact format)."""
        return {
            "kind": "regression-eval-report",
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "suite": list(self.suite),
            "ok": self.ok,
            "missing": [
                {"scenario": scenario, "policy": policy}
                for scenario, policy in self.missing
            ],
            "comparisons": [
                {
                    "scenario": c.scenario,
                    "policy": c.policy,
                    "metric": c.metric,
                    "baseline": c.baseline,
                    "candidate": c.candidate,
                    "delta_rel": c.delta_rel,
                    "limit_rel": c.limit_rel,
                    "higher_is_better": c.higher_is_better,
                    "passed": c.passed,
                }
                for c in self.comparisons
            ],
        }

    def format(self) -> str:
        """Human-readable verdict: the comparison table plus a one-line summary."""
        from repro.experiments.reporting import format_table

        lines = [format_table(EVAL_HEADERS, [c.as_row() for c in self.comparisons])]
        for scenario, policy in self.missing:
            lines.append(
                f"MISSING: scenario {scenario!r} policy {policy!r} is in baseline "
                f"{self.baseline_label!r} but absent from candidate "
                f"{self.candidate_label!r}"
            )
        failures = self.failures
        if self.ok:
            lines.append(
                f"\neval OK: {len(self.comparisons)} metric(s) within threshold "
                f"({self.candidate_label!r} vs baseline {self.baseline_label!r})"
            )
        else:
            lines.append(
                f"\neval FAILED: {len(failures)} metric(s) regressed past threshold, "
                f"{len(self.missing)} scenario(s) missing "
                f"({self.candidate_label!r} vs baseline {self.baseline_label!r})"
            )
        return "\n".join(lines)


def run_regression_eval(
    warehouse: Warehouse,
    baseline: str,
    candidate: str = "default",
    suite: Iterable[str] | None = None,
    thresholds: Sequence[Threshold] | None = None,
) -> EvalReport:
    """Score the candidate ingest against the baseline across the scenario suite.

    ``suite`` restricts the eval to named scenarios (preset names or composed
    ``workload/setting/N<devices>`` descriptors); by default every scenario present
    in the baseline is scored.  Scenarios in the suite that the baseline itself
    lacks raise — a typo'd suite must not silently pass.
    """
    thresholds = tuple(thresholds if thresholds is not None else DEFAULT_THRESHOLDS)
    if not thresholds:
        raise AnalyticsError("a regression eval needs at least one threshold")
    metrics = tuple(dict.fromkeys(t.metric for t in thresholds))
    baseline_scores = _score_label(warehouse, baseline, metrics)
    candidate_scores = _score_label(warehouse, candidate, metrics)
    suite_names = tuple(suite) if suite is not None else ()
    if suite_names:
        known = {scenario for scenario, _policy in baseline_scores}
        unknown = [name for name in suite_names if name not in known]
        if unknown:
            raise AnalyticsError(
                f"suite scenario(s) {unknown!r} have no baseline rows under label "
                f"{baseline!r} (baseline covers: {sorted(known)})"
            )
    comparisons: list[MetricComparison] = []
    missing: list[tuple[str, str]] = []
    for (scenario, policy), base_metrics in sorted(baseline_scores.items()):
        if suite_names and scenario not in suite_names:
            continue
        cand_metrics = candidate_scores.get((scenario, policy))
        if cand_metrics is None:
            missing.append((scenario, policy))
            continue
        for threshold in thresholds:
            base_value = base_metrics[threshold.metric]
            cand_value = cand_metrics[threshold.metric]
            if np.isnan(base_value) or np.isnan(cand_value):
                continue  # Metric unavailable on one side (e.g. store-only ingest).
            comparisons.append(
                MetricComparison(
                    scenario=scenario,
                    policy=policy,
                    metric=threshold.metric,
                    baseline=base_value,
                    candidate=cand_value,
                    delta_rel=relative_delta(base_value, cand_value),
                    limit_rel=threshold.max_regression,
                    higher_is_better=threshold.higher_is_better,
                    passed=threshold.passes(base_value, cand_value),
                )
            )
    return EvalReport(
        baseline_label=baseline,
        candidate_label=candidate,
        suite=suite_names,
        comparisons=comparisons,
        missing=missing,
    )


# ------------------------------------------------------------------ bench floors
@dataclass(frozen=True)
class BenchFloor:
    """An absolute lower bound on one ingested ``bench`` measurement.

    Unlike the label-vs-label regression eval, a floor needs no baseline ingest:
    CI measures, ingests and checks the latest bench row against a pinned number,
    so a throughput collapse fails the build even on the very first run.
    """

    metric: str
    #: ``"replication"`` targets the ``roundengine-replication`` row; any other
    #: value is a fleet size selecting the matching ``roundengine`` row.
    selector: str
    floor: float

    @property
    def benchmark(self) -> str:
        """The ``bench`` table benchmark name the floor reads."""
        return "roundengine-replication" if self.selector == "replication" else "roundengine"

    @property
    def num_devices(self) -> float | None:
        """Fleet-size filter, or ``None`` for the replication row."""
        return None if self.selector == "replication" else float(int(self.selector))

    def describe(self) -> str:
        """The CLI spelling of this floor, e.g. ``batch_rounds_per_s@10000``."""
        return f"{self.metric}@{self.selector}"


def parse_bench_floor(text: str) -> BenchFloor:
    """Parse a CLI floor ``metric@selector=value``.

    ``selector`` is a fleet size (``batch_rounds_per_s@10000=1500``) or the word
    ``replication`` for the seed-replication row (``speedup@replication=4``).
    """
    head, sep, raw = text.partition("=")
    metric, at, selector = head.strip().partition("@")
    metric = metric.strip().replace("-", "_")
    selector = selector.strip()
    if not sep or not at or not metric or not selector:
        raise AnalyticsError(
            f"invalid bench floor {text!r}; expected metric@devices=value "
            "(e.g. batch_rounds_per_s@10000=1500) or metric@replication=value"
        )
    try:
        floor = float(raw.strip())
    except ValueError:
        raise AnalyticsError(f"invalid bench floor value in {text!r}") from None
    if selector != "replication":
        try:
            int(selector)
        except ValueError:
            raise AnalyticsError(
                f"invalid bench floor selector {selector!r} in {text!r}; "
                "expected a fleet size or 'replication'"
            ) from None
    return BenchFloor(metric=metric, selector=selector, floor=floor)


@dataclass(frozen=True)
class FloorCheck:
    """One bench-floor verdict: the latest measurement against its pinned floor."""

    floor: BenchFloor
    timestamp: str
    measured: float
    passed: bool

    def as_row(self) -> tuple[object, ...]:
        """Row representation for the report table."""
        return (
            self.floor.describe(),
            self.timestamp,
            self.measured,
            self.floor.floor,
            "pass" if self.passed else "FAIL",
        )


#: Column headers of the bench-floor report table.
BENCH_FLOOR_HEADERS: tuple[str, ...] = (
    "measurement",
    "timestamp",
    "measured",
    "floor",
    "verdict",
)


@dataclass
class BenchFloorReport:
    """Outcome of checking ingested bench rows against pinned floors."""

    checks: list[FloorCheck]

    @property
    def ok(self) -> bool:
        """True when every measurement sits on or above its floor."""
        return all(check.passed for check in self.checks)

    def to_dict(self) -> dict:
        """JSON payload (the CI perf-smoke artifact format)."""
        return {
            "kind": "bench-floor-report",
            "ok": self.ok,
            "checks": [
                {
                    "measurement": check.floor.describe(),
                    "metric": check.floor.metric,
                    "selector": check.floor.selector,
                    "timestamp": check.timestamp,
                    "measured": check.measured,
                    "floor": check.floor.floor,
                    "passed": check.passed,
                }
                for check in self.checks
            ],
        }

    def format(self) -> str:
        """Human-readable verdict: the check table plus a one-line summary."""
        from repro.experiments.reporting import format_table

        lines = [format_table(BENCH_FLOOR_HEADERS, [c.as_row() for c in self.checks])]
        failures = [c for c in self.checks if not c.passed]
        if self.ok:
            lines.append(f"\nbench floors OK: {len(self.checks)} measurement(s) at or above floor")
        else:
            lines.append(f"\nbench floors FAILED: {len(failures)} measurement(s) below floor")
        return "\n".join(lines)


def run_bench_floor_eval(
    warehouse: Warehouse, floors: Sequence[BenchFloor]
) -> BenchFloorReport:
    """Check the most recent ingested bench measurements against absolute floors.

    Each floor selects its rows from the ``bench`` table (by benchmark name and,
    for fleet-size floors, ``num_devices``) and scores the row with the latest
    timestamp — the measurement CI just ingested.  A floor whose selector matches
    no ingested row raises: a typo'd metric or a bench that never ran must not
    silently pass.
    """
    if not floors:
        raise AnalyticsError("a bench-floor eval needs at least one floor")
    columns = warehouse.table("bench")
    checks: list[FloorCheck] = []
    for floor in floors:
        if floor.metric not in columns:
            raise AnalyticsError(
                f"unknown bench metric {floor.metric!r}; "
                f"bench columns: {sorted(columns)}"
            )
        mask = columns["benchmark"].astype(str) == floor.benchmark
        if floor.num_devices is not None:
            with np.errstate(invalid="ignore"):
                mask &= columns["num_devices"] == floor.num_devices
        index = np.flatnonzero(mask)
        if index.size == 0:
            raise AnalyticsError(
                f"no ingested bench rows match {floor.describe()!r}; run "
                "`python -m repro bench` and ingest the record "
                "(python -m repro ingest --bench BENCH_roundengine.json)"
            )
        timestamps = columns["timestamp"][index].astype(str)
        latest = index[int(np.argmax(timestamps))]
        measured = float(columns[floor.metric][latest])
        if np.isnan(measured):
            raise AnalyticsError(
                f"bench metric {floor.metric!r} is NaN on the latest "
                f"{floor.describe()!r} row; the bench record predates this metric"
            )
        checks.append(
            FloorCheck(
                floor=floor,
                timestamp=str(timestamps[int(np.argmax(timestamps))]),
                measured=measured,
                passed=measured >= floor.floor,
            )
        )
    return BenchFloorReport(checks=checks)


#: Column headers of the cross-run comparison report.
REPORT_HEADERS: tuple[str, ...] = (
    "scenario",
    "policy",
    "seeds",
    "final accuracy",
    "energy vs baseline",
    "time vs baseline",
    "rounds",
)


def build_comparison_report(
    warehouse: Warehouse,
    where: Mapping[str, Sequence[str]] | None = None,
    baseline_policy: str = "fedavg-random",
) -> tuple[tuple[str, ...], list[tuple[object, ...]]]:
    """Cross-run comparison rows: per-scenario policy metrics normalised to a baseline.

    This is the warehouse-backed, many-run generalisation of the in-memory
    ``repro compare`` table: it reads whatever was ingested (thousands of cached
    runs included) instead of re-simulating, and normalises each scenario's energy
    and time to the baseline policy's mean where that baseline was ingested too.
    """
    columns = warehouse.table("runs")
    mask = (
        filter_mask("runs", columns, dict(where))
        if where
        else np.ones(warehouse.num_rows("runs"), dtype=bool)
    )
    index = np.flatnonzero(mask)
    if index.size == 0:
        raise AnalyticsError(
            "no ingested runs match the report filter; ingest results first "
            "(python -m repro ingest) or relax --where"
        )
    scenarios = _scenario_names(columns, index)
    policies = columns["policy"][index].astype(str)
    rows: list[tuple[object, ...]] = []
    for scenario in np.unique(scenarios):
        scenario_rows = index[scenarios == scenario]
        scenario_policies = policies[scenarios == scenario]
        base_mask = scenario_policies == baseline_policy
        base_energy = (
            float(np.nanmean(columns["global_energy_j"][scenario_rows[base_mask]]))
            if np.any(base_mask)
            else float("nan")
        )
        base_time = (
            float(np.nanmean(columns["total_time_s"][scenario_rows[base_mask]]))
            if np.any(base_mask)
            else float("nan")
        )
        for policy in np.unique(scenario_policies):
            policy_rows = scenario_rows[scenario_policies == policy]
            energy = float(np.nanmean(columns["global_energy_j"][policy_rows]))
            total_time = float(np.nanmean(columns["total_time_s"][policy_rows]))
            rows.append(
                (
                    str(scenario),
                    str(policy),
                    int(policy_rows.size),
                    float(np.nanmean(columns["final_accuracy"][policy_rows])),
                    energy / base_energy if base_energy and not np.isnan(base_energy) else float("nan"),
                    total_time / base_time if base_time and not np.isnan(base_time) else float("nan"),
                    float(np.nanmean(columns["rounds_executed"][policy_rows])),
                )
            )
    return REPORT_HEADERS, rows
