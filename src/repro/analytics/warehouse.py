"""The columnar results warehouse: ingest runs, goldens and bench records; read tables.

A :class:`Warehouse` is a directory of columnar table files plus a JSON manifest:

* ``rounds.parquet`` / ``rounds.npz`` — per-round rows of ingested trajectories;
* ``runs.*`` — per-seed summary rows (store ingests land here);
* ``bench.*`` — flattened ``BENCH_*.json`` measurements with provenance;
* ``manifest.json`` — backend name, schema version, row counts and the ingest log
  (labels), so a warehouse is self-describing and backend mixups fail loudly.

The columnar backend is Parquet (via ``pyarrow``) when installed, with a pure-numpy
compressed ``.npz`` fallback so the core keeps its numpy-only dependency surface.
Both store the same string/float64 columns, and every read returns plain numpy
arrays, so the query layer never knows which backend produced them.

Ingests are idempotent: rows are keyed per table (``label``/``source``/``spec_hash``/
``seed`` for runs and rounds) and a re-ingest of the same run replaces its rows
instead of duplicating them.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.analytics.schema import (
    TABLE_KEYS,
    TABLES,
    WAREHOUSE_SCHEMA_VERSION,
    bench_rows_from_record,
    empty_columns,
    metrics_rows_from_snapshot,
    round_rows_from_golden,
    round_rows_from_result,
    rows_to_columns,
    run_row_from_golden,
    run_row_from_result,
    run_rows_from_experiment,
    table_schema,
)
from repro.exceptions import AnalyticsError

#: Default on-disk location of the warehouse (relative to the working directory).
DEFAULT_WAREHOUSE_ROOT = Path(".repro-warehouse")

#: Manifest filename inside the warehouse root.
MANIFEST_FILENAME = "manifest.json"

#: Glob matching the bench records written at the repository root.
BENCH_GLOB = "BENCH_*.json"


def have_pyarrow() -> bool:
    """True when the optional ``pyarrow`` columnar backend is importable."""
    try:  # pragma: no cover - trivially environment-dependent
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True


class NumpyBackend:
    """Pure-numpy columnar file backend: one compressed ``.npz`` per table."""

    name = "numpy"
    suffix = ".npz"

    def write(self, path: Path, columns: dict[str, np.ndarray]) -> None:
        """Write one table's columns (atomically: write-then-rename)."""
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("wb") as handle:
            np.savez_compressed(handle, **columns)
        tmp.replace(path)

    def read(self, path: Path) -> dict[str, np.ndarray]:
        """Read one table's columns."""
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}


class ParquetBackend:
    """Parquet columnar backend over ``pyarrow`` (installed separately)."""

    name = "parquet"
    suffix = ".parquet"

    def __init__(self) -> None:
        if not have_pyarrow():
            raise AnalyticsError(
                "the parquet backend needs pyarrow, which is not installed; "
                "use backend='numpy' (or 'auto') for the .npz fallback"
            )

    def write(self, path: Path, columns: dict[str, np.ndarray]) -> None:
        """Write one table's columns as a Parquet file."""
        import pyarrow as pa
        import pyarrow.parquet as pq

        table = pa.table({name: pa.array(column) for name, column in columns.items()})
        pq.write_table(table, path)

    def read(self, path: Path) -> dict[str, np.ndarray]:
        """Read one table's columns back as numpy arrays."""
        import pyarrow.parquet as pq

        table = pq.read_table(path)
        columns: dict[str, np.ndarray] = {}
        for name in table.column_names:
            values = table.column(name).to_numpy(zero_copy_only=False)
            if values.dtype == object:  # Strings come back as object arrays.
                values = values.astype(str)
            columns[name] = values
        return columns


#: Backend constructors by CLI name.
BACKENDS = {NumpyBackend.name: NumpyBackend, ParquetBackend.name: ParquetBackend}


def get_backend(name: str = "auto"):
    """Resolve a backend by name; ``auto`` prefers Parquet when pyarrow is installed."""
    if name == "auto":
        return ParquetBackend() if have_pyarrow() else NumpyBackend()
    try:
        return BACKENDS[name]()
    except KeyError:
        raise AnalyticsError(
            f"unknown warehouse backend {name!r}; expected 'auto', "
            f"{', '.join(repr(known) for known in sorted(BACKENDS))}"
        ) from None


class Warehouse:
    """Columnar analytics store over experiment, golden and bench results."""

    def __init__(
        self, root: str | os.PathLike = DEFAULT_WAREHOUSE_ROOT, backend: str = "auto"
    ) -> None:
        self.root = Path(root)
        self._manifest = self._load_manifest()
        recorded = self._manifest.get("backend")
        if recorded is not None:
            if backend not in ("auto", recorded):
                raise AnalyticsError(
                    f"warehouse {self.root} was created with the {recorded!r} backend; "
                    f"opening it with {backend!r} would mix columnar formats — "
                    "use a fresh root (or the recorded backend)"
                )
            self.backend = get_backend(recorded)
        else:
            self.backend = get_backend(backend)
        self._tables: dict[str, dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------ manifest
    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_FILENAME

    def _load_manifest(self) -> dict:
        path = self._manifest_path()
        if not path.exists():
            return {}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise AnalyticsError(f"corrupt warehouse manifest {path}: {exc}") from exc
        schema = manifest.get("warehouse_schema")
        if schema != WAREHOUSE_SCHEMA_VERSION:
            raise AnalyticsError(
                f"warehouse {self.root} was written with schema {schema!r}; this "
                f"version reads schema {WAREHOUSE_SCHEMA_VERSION} — re-ingest into "
                "a fresh root"
            )
        return manifest

    def _save_manifest(self) -> None:
        self._manifest["warehouse_schema"] = WAREHOUSE_SCHEMA_VERSION
        self._manifest["backend"] = self.backend.name
        self._manifest.setdefault("tables", {})
        for name in TABLES:
            self._manifest["tables"][name] = {
                "rows": self.num_rows(name),
                "file": self._table_path(name).name,
            }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._manifest_path().with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self._manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        tmp.replace(self._manifest_path())

    def _log_ingest(self, label: str, source: str, rows: int) -> None:
        log = self._manifest.setdefault("ingests", [])
        log.append({"label": label, "source": source, "rows": rows, "at": time.time()})

    def labels(self) -> list[str]:
        """Every ingest label seen so far, in first-ingest order."""
        seen: list[str] = []
        for entry in self._manifest.get("ingests", ()):
            if entry["label"] not in seen:
                seen.append(entry["label"])
        return seen

    # ------------------------------------------------------------------ tables
    def _table_path(self, table: str) -> Path:
        table_schema(table)  # Validate the name.
        return self.root / f"{table}{self.backend.suffix}"

    def table(self, name: str) -> dict[str, np.ndarray]:
        """One table's columns (empty columns when nothing was ingested yet)."""
        if name not in self._tables:
            path = self._table_path(name)
            if path.exists():
                columns = self.backend.read(path)
                expected = {column.name for column in table_schema(name)}
                if set(columns) != expected:
                    raise AnalyticsError(
                        f"warehouse table {name!r} at {path} holds columns "
                        f"{sorted(columns)} but this version expects "
                        f"{sorted(expected)}; re-ingest into a fresh root"
                    )
                self._tables[name] = columns
            else:
                self._tables[name] = empty_columns(name)
        return self._tables[name]

    def num_rows(self, name: str) -> int:
        """Row count of one table."""
        columns = self.table(name)
        first = next(iter(columns.values()))
        return int(first.shape[0])

    def _row_keys(self, table: str, columns: dict[str, np.ndarray]) -> np.ndarray:
        key_columns = TABLE_KEYS[table]
        parts = [np.asarray(columns[name]).astype(str) for name in key_columns]
        if not parts or parts[0].shape[0] == 0:
            return np.array([], dtype=str)
        stacked = parts[0]
        for part in parts[1:]:
            stacked = np.char.add(np.char.add(stacked, "|"), part)
        return stacked

    def append_rows(self, table: str, rows: list[dict]) -> int:
        """Append rows to a table, replacing rows of the same run key (idempotent).

        Returns the number of rows added.
        """
        if not rows:
            return 0
        with telemetry.get_tracer().span(
            "ingest", category="warehouse", table=table, rows=len(rows)
        ):
            fresh = rows_to_columns(table, rows)
            existing = self.table(table)
            if next(iter(existing.values())).shape[0]:
                keep = ~np.isin(
                    self._row_keys(table, existing), self._row_keys(table, fresh)
                )
                merged = {
                    name: np.concatenate([existing[name][keep], fresh[name]])
                    for name in fresh
                }
            else:
                merged = fresh
            self._tables[table] = merged
            self.root.mkdir(parents=True, exist_ok=True)
            self.backend.write(self._table_path(table), merged)
            self._save_manifest()
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_warehouse_rows_total", help="Rows appended to warehouse tables."
            ).inc(len(rows), table=table)
        return len(rows)

    # ------------------------------------------------------------------ ingest
    def ingest_result(
        self,
        result,
        spec,
        label: str = "default",
        source: str = "run",
        preset: str | None = None,
    ) -> int:
        """Ingest one finished :class:`~repro.sim.results.SimulationResult` trajectory.

        Contributes one ``rounds`` row per executed round and one ``runs`` summary
        row; returns the total rows added.
        """
        added = self.append_rows(
            "rounds",
            round_rows_from_result(result, spec, label=label, source=source, preset=preset),
        )
        added += self.append_rows(
            "runs",
            [run_row_from_result(result, spec, label=label, source=source, preset=preset)],
        )
        self._log_ingest(label, source, added)
        self._save_manifest()
        return added

    def ingest_store(self, store, label: str = "default") -> int:
        """Ingest every cached result of a result store (SQLite or legacy JSONL).

        ``store`` is a :class:`~repro.service.store.ArtifactStore`, a legacy
        :class:`~repro.experiments.runner.ResultStore`, or a path understood by
        :func:`~repro.service.store.open_store` (the existing migration seam, so
        legacy ``.jsonl`` stores ingest through the same door).  Summaries land in
        the ``runs`` table, one row per seed replica.
        """
        if isinstance(store, (str, os.PathLike)):
            from repro.service.store import open_store

            store = open_store(store)
        rows: list[dict] = []
        if hasattr(store, "iter_results"):  # ArtifactStore: preset-aware iteration.
            entries = store.iter_results()
        else:  # Legacy JSONL ResultStore (or an in-memory double with .results()).
            entries = ((result, None) for result in store.results().values())
        for result, preset in entries:
            rows.extend(
                run_rows_from_experiment(result, label=label, source="store", preset=preset)
            )
        added = self.append_rows("runs", rows)
        self._log_ingest(label, "store", added)
        self._save_manifest()
        return added

    def ingest_goldens(
        self,
        directory: str | os.PathLike | None = None,
        names: list[str] | None = None,
        label: str = "golden",
    ) -> int:
        """Ingest recorded golden trajectories (per-round rows, no re-run needed)."""
        from repro.validation.golden import DEFAULT_GOLDEN_DIR, GoldenStore

        store = GoldenStore(directory if directory is not None else DEFAULT_GOLDEN_DIR)
        added = 0
        for name in names if names is not None else store.names():
            golden = store.load(name)
            added += self.append_rows("rounds", round_rows_from_golden(golden, label=label))
            added += self.append_rows("runs", [run_row_from_golden(golden, label=label)])
        self._log_ingest(label, "golden", added)
        self._save_manifest()
        return added

    def ingest_metrics(self, snapshot, label: str = "metrics") -> int:
        """Ingest a telemetry metrics snapshot into the ``metrics`` table.

        ``snapshot`` is a snapshot payload dict, a bare entry list
        (:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`) or a path to a
        snapshot file written by :func:`repro.telemetry.exporter.write_snapshot`.
        Rows are keyed by (label, ts, name, labels), so re-ingesting the same
        snapshot file is idempotent.
        """
        if isinstance(snapshot, (str, os.PathLike)):
            snapshot = telemetry.read_snapshot(snapshot)
        added = self.append_rows("metrics", metrics_rows_from_snapshot(snapshot, label=label))
        self._log_ingest(label, "metrics", added)
        self._save_manifest()
        return added

    def ingest_bench_record(self, record: dict) -> int:
        """Register one bench record (the ``repro bench`` write-time hook)."""
        added = self.append_rows("bench", bench_rows_from_record(record))
        self._log_ingest(str(record.get("benchmark", "bench")), "bench", added)
        self._save_manifest()
        return added

    def ingest_bench_files(self, root: str | os.PathLike = ".") -> int:
        """Ingest every ``BENCH_*.json`` record under ``root`` (or one named file)."""
        root = Path(root)
        paths = [root] if root.is_file() else sorted(root.glob(BENCH_GLOB))
        added = 0
        for path in paths:
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except ValueError as exc:
                warnings.warn(
                    f"skipping unparseable bench record {path}: {exc}", stacklevel=2
                )
                continue
            added += self.ingest_bench_record(record)
        return added

    # ------------------------------------------------------------------ reporting
    def describe(self) -> dict:
        """Row counts, backend and labels — the ``ingest`` command's receipt."""
        return {
            "root": str(self.root),
            "backend": self.backend.name,
            "tables": {name: self.num_rows(name) for name in TABLES},
            "labels": self.labels(),
        }
