"""Filter + group-by aggregation over warehouse tables, as vectorised numpy ops.

The query model is deliberately small — it is the shape every paper figure needs:

* **filter**: equality predicates over any column, OR within one column's value
  list, AND across columns (``policy=autofl preset=fleet-1k,flaky-fleet``);
* **group by**: any set of string columns (``preset,policy``);
* **aggregate**: ``mean``/``p50``/``p95``/``sum``/``min``/``max``/``count`` of any
  numeric columns, computed NaN-aware so missing cells never poison a group.

Execution is columnar: one boolean mask per query, one :func:`numpy.unique` for the
grouping, and one reduction per (group, metric, agg) over contiguous float64 slices —
no per-row Python objects, so millions of rounds aggregate in milliseconds.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.analytics.schema import column_kinds
from repro.analytics.warehouse import Warehouse
from repro.exceptions import AnalyticsError

#: Supported aggregation names, in their rendered column order.
AGGREGATIONS: tuple[str, ...] = ("mean", "p50", "p95", "sum", "min", "max", "count")

#: Default metric columns per table (what ``repro query`` aggregates when unasked).
DEFAULT_METRICS: dict[str, tuple[str, ...]] = {
    "rounds": (
        "round_time_s",
        "participant_energy_j",
        "global_energy_j",
        "accuracy",
        "num_dropped",
        "num_failed",
    ),
    "runs": (
        "final_accuracy",
        "rounds_executed",
        "total_time_s",
        "participant_energy_j",
        "global_energy_j",
    ),
    "bench": ("scalar_rounds_per_s", "batch_rounds_per_s", "speedup"),
    "metrics": ("value", "count", "sum", "p50", "p95", "p99"),
}

#: Default grouping per table.
DEFAULT_GROUP_BY: dict[str, tuple[str, ...]] = {
    "rounds": ("label", "preset", "policy"),
    "runs": ("label", "preset", "policy"),
    "bench": ("benchmark", "git_sha", "num_devices"),
    "metrics": ("label", "name", "kind"),
}


def parse_where(terms: Iterable[str]) -> dict[str, tuple[str, ...]]:
    """Parse CLI filter terms ``column=v1[,v2…]`` into a predicate mapping."""
    where: dict[str, tuple[str, ...]] = {}
    for term in terms:
        name, sep, raw = term.partition("=")
        name = name.strip().replace("-", "_")
        values = tuple(value.strip() for value in raw.split(",") if value.strip())
        if not sep or not name or not values:
            raise AnalyticsError(
                f"invalid filter {term!r}; expected the form column=value1,value2,…"
            )
        if name in where:
            raise AnalyticsError(f"filter column {name!r} given twice")
        where[name] = values
    return where


def _check_columns(table: str, names: Iterable[str], role: str) -> dict[str, str]:
    kinds = column_kinds(table)
    for name in names:
        if name not in kinds:
            raise AnalyticsError(
                f"unknown {role} column {name!r} for table {table!r}; "
                f"expected one of {sorted(kinds)}"
            )
    return kinds


def filter_mask(
    table: str, columns: dict[str, np.ndarray], where: dict[str, Sequence[str]]
) -> np.ndarray:
    """The boolean row mask of a predicate mapping (AND of per-column OR lists)."""
    size = next(iter(columns.values())).shape[0]
    mask = np.ones(size, dtype=bool)
    kinds = _check_columns(table, where, "filter")
    for name, values in where.items():
        column = columns[name]
        if kinds[name] == "str":
            mask &= np.isin(column.astype(str), np.array([str(v) for v in values]))
        else:
            try:
                numeric = np.array([float(v) for v in values], dtype=np.float64)
            except ValueError:
                raise AnalyticsError(
                    f"filter column {name!r} is numeric; got values {list(values)!r}"
                ) from None
            mask &= np.isin(column, numeric)
    return mask


def _group_rows(
    columns: dict[str, np.ndarray], group_by: Sequence[str], mask: np.ndarray
) -> list[tuple[tuple[str, ...], np.ndarray]]:
    """(group key, row indices) pairs, keys in sorted order."""
    index = np.flatnonzero(mask)
    if not group_by:
        return [((), index)]
    stacked = np.stack([columns[name][index].astype(str) for name in group_by], axis=1)
    unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    bounds = np.searchsorted(inverse[order], np.arange(len(unique) + 1))
    return [
        (tuple(unique[g]), index[order[bounds[g] : bounds[g + 1]]])
        for g in range(len(unique))
    ]


def _aggregate(values: np.ndarray, agg: str) -> float:
    """One NaN-aware reduction; empty or all-NaN slices reduce to NaN (count to 0)."""
    finite = values[~np.isnan(values)]
    if agg == "count":
        return float(finite.size)
    if finite.size == 0:
        return float("nan")
    if agg == "mean":
        return float(np.mean(finite))
    if agg == "p50":
        return float(np.percentile(finite, 50))
    if agg == "p95":
        return float(np.percentile(finite, 95))
    if agg == "sum":
        return float(np.sum(finite))
    if agg == "min":
        return float(np.min(finite))
    if agg == "max":
        return float(np.max(finite))
    raise AnalyticsError(
        f"unknown aggregation {agg!r}; expected one of {list(AGGREGATIONS)}"
    )


@dataclass(frozen=True)
class QueryResult:
    """A finished query: its parameters plus the rendered-ready header/row grid."""

    table: str
    where: dict[str, tuple[str, ...]]
    group_by: tuple[str, ...]
    metrics: tuple[str, ...]
    aggs: tuple[str, ...]
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    matched_rows: int = 0
    total_rows: int = 0
    warnings: tuple[str, ...] = field(default=())

    def to_dict(self) -> dict:
        """JSON-serialisable payload of the query and its result grid."""
        return {
            "table": self.table,
            "where": {name: list(values) for name, values in self.where.items()},
            "group_by": list(self.group_by),
            "metrics": list(self.metrics),
            "aggs": list(self.aggs),
            "matched_rows": self.matched_rows,
            "total_rows": self.total_rows,
            "groups": [dict(zip(self.headers, row)) for row in self.rows],
        }


def run_query(
    warehouse: Warehouse,
    table: str = "rounds",
    where: dict[str, Sequence[str]] | None = None,
    group_by: Sequence[str] | None = None,
    metrics: Sequence[str] | None = None,
    aggs: Sequence[str] = ("mean",),
) -> QueryResult:
    """Execute one filter/group/aggregate query against a warehouse table."""
    where = dict(where or {})
    group_by = tuple(group_by if group_by is not None else DEFAULT_GROUP_BY[table])
    metrics = tuple(metrics if metrics is not None else DEFAULT_METRICS[table])
    aggs = tuple(aggs)
    kinds = _check_columns(table, group_by, "group-by")
    _check_columns(table, metrics, "metric")
    for metric in metrics:
        if kinds[metric] != "num":
            raise AnalyticsError(f"metric column {metric!r} of {table!r} is not numeric")
    for agg in aggs:
        if agg not in AGGREGATIONS:
            raise AnalyticsError(
                f"unknown aggregation {agg!r}; expected one of {list(AGGREGATIONS)}"
            )
    with telemetry.get_tracer().span("query", category="warehouse", table=table):
        columns = warehouse.table(table)
        total = warehouse.num_rows(table)
        mask = (
            filter_mask(table, columns, where) if where else np.ones(total, dtype=bool)
        )
        groups = _group_rows(columns, group_by, mask)
        headers = group_by + tuple(
            f"{metric}:{agg}" for metric in metrics for agg in aggs
        )
        rows = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # All-NaN slices -> NaN.
            for key, index in groups:
                cells: list[object] = list(key)
                for metric in metrics:
                    values = columns[metric][index]
                    cells.extend(_aggregate(values, agg) for agg in aggs)
                rows.append(tuple(cells))
    return QueryResult(
        table=table,
        where={name: tuple(values) for name, values in where.items()},
        group_by=group_by,
        metrics=metrics,
        aggs=aggs,
        headers=headers,
        rows=tuple(rows),
        matched_rows=int(np.sum(mask)),
        total_rows=total,
    )
