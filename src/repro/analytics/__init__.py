"""Results warehouse: columnar analytics, repro queries and regression evals.

The analytics subsystem answers questions the stores cannot — "how does AutoFL's PPW
compare to the oracle across 10k scenarios?" rather than "is this spec hash cached?":

* :mod:`repro.analytics.schema` — the flat per-round/per-run/bench column schemas and
  the row builders that flatten :class:`~repro.sim.results.SimulationResult`
  trajectories, store payloads, golden files and ``BENCH_*.json`` records into them;
* :mod:`repro.analytics.warehouse` — the columnar :class:`Warehouse` (Parquet via
  ``pyarrow`` when installed, a pure-numpy ``.npz`` fallback otherwise) with
  idempotent ingest from every existing result source;
* :mod:`repro.analytics.query` — vectorised filter + group-by aggregation
  (mean/p50/p95/…) executed as numpy column ops;
* :mod:`repro.analytics.evals` — cross-run comparison reports and the regression
  eval that diffs a candidate ingest against a named baseline with pass/fail
  thresholds.

The CLI front-ends are ``python -m repro {ingest,query,report,eval}``.
"""

from repro.analytics.evals import (
    BENCH_FLOOR_HEADERS,
    DEFAULT_THRESHOLDS,
    EVAL_HEADERS,
    REPORT_HEADERS,
    BenchFloor,
    BenchFloorReport,
    EvalReport,
    FloorCheck,
    MetricComparison,
    Threshold,
    build_comparison_report,
    parse_bench_floor,
    parse_threshold,
    relative_delta,
    run_bench_floor_eval,
    run_regression_eval,
)
from repro.analytics.query import (
    AGGREGATIONS,
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    QueryResult,
    filter_mask,
    parse_where,
    run_query,
)
from repro.analytics.schema import (
    TABLES,
    WAREHOUSE_SCHEMA_VERSION,
    bench_rows_from_record,
    metrics_rows_from_snapshot,
    round_rows_from_golden,
    round_rows_from_result,
    run_row_from_golden,
    run_row_from_result,
    run_rows_from_experiment,
    table_schema,
)
from repro.analytics.warehouse import (
    BACKENDS,
    DEFAULT_WAREHOUSE_ROOT,
    NumpyBackend,
    ParquetBackend,
    Warehouse,
    get_backend,
    have_pyarrow,
)

__all__ = [
    "AGGREGATIONS",
    "BACKENDS",
    "BENCH_FLOOR_HEADERS",
    "BenchFloor",
    "BenchFloorReport",
    "DEFAULT_GROUP_BY",
    "DEFAULT_METRICS",
    "DEFAULT_THRESHOLDS",
    "DEFAULT_WAREHOUSE_ROOT",
    "EVAL_HEADERS",
    "EvalReport",
    "FloorCheck",
    "MetricComparison",
    "NumpyBackend",
    "ParquetBackend",
    "QueryResult",
    "REPORT_HEADERS",
    "TABLES",
    "Threshold",
    "WAREHOUSE_SCHEMA_VERSION",
    "Warehouse",
    "bench_rows_from_record",
    "build_comparison_report",
    "filter_mask",
    "get_backend",
    "have_pyarrow",
    "metrics_rows_from_snapshot",
    "parse_bench_floor",
    "parse_threshold",
    "parse_where",
    "relative_delta",
    "round_rows_from_golden",
    "round_rows_from_result",
    "run_bench_floor_eval",
    "run_query",
    "run_regression_eval",
    "run_row_from_golden",
    "run_row_from_result",
    "run_rows_from_experiment",
    "table_schema",
]
