"""Flat columnar schemas of the results warehouse, and the row builders that feed them.

The warehouse holds three tables, each a set of equally-long columns:

``rounds``
    One row per executed aggregation round of an ingested trajectory — the flattened
    form of :meth:`repro.sim.results.RoundRecord.to_dict` plus the run identity
    (spec hash, preset, policy, workload, seed, …).  This is the table the paper's
    cross-policy figures aggregate over.
``runs``
    One row per seed replica of an ingested run — the flattened
    :class:`~repro.fl.metrics.EfficiencySummary` plus the same identity columns.
    Store ingests (which keep summaries, not trajectories) land only here.
``bench``
    One row per measurement of a ``BENCH_*.json`` record (one fleet size of the
    round-engine bench, one backend of the store bench), carrying the recorded
    provenance (``git_sha``, numpy, platform) so perf trajectories are queryable
    across commits.

Columns are either strings or float64 numbers; missing values are ``""`` and ``NaN``
respectively, so every backend (Parquet or the ``.npz`` fallback) stores the same
shapes and the query layer can stay pure-numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.exceptions import AnalyticsError

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.experiments.runner import ExperimentResult
    from repro.experiments.spec import ExperimentSpec
    from repro.sim.results import SimulationResult
    from repro.validation.golden import GoldenTrajectory

#: Bumped whenever a table's column set changes, so stale warehouses fail loudly.
#: v3 added the ``metrics`` table (telemetry snapshot ingest).
WAREHOUSE_SCHEMA_VERSION = 3

#: Sentinel for a missing string cell.
NULL_STR = ""


@dataclass(frozen=True)
class Column:
    """One column of a warehouse table: a name and a kind (``str`` or ``num``)."""

    name: str
    kind: str  # "str" | "num"

    def null(self) -> object:
        """The missing-value sentinel of this column."""
        return NULL_STR if self.kind == "str" else float("nan")


def _columns(*specs: tuple[str, str]) -> tuple[Column, ...]:
    return tuple(Column(name, kind) for name, kind in specs)


#: Identity columns shared by the ``rounds`` and ``runs`` tables: which run a row
#: belongs to, and the scenario axes it can be filtered/grouped by.
IDENTITY_COLUMNS: tuple[Column, ...] = _columns(
    ("label", "str"),  # ingest label; evals diff two labels
    ("source", "str"),  # run | store | golden
    ("spec_hash", "str"),
    ("spec_schema", "num"),
    ("preset", "str"),
    ("policy", "str"),
    ("workload", "str"),
    ("setting", "str"),
    ("interference", "str"),
    ("network", "str"),
    ("data_distribution", "str"),
    ("availability", "str"),
    ("num_devices", "num"),
    ("seed", "num"),
)

ROUNDS_COLUMNS: tuple[Column, ...] = IDENTITY_COLUMNS + _columns(
    ("round_index", "num"),
    ("num_selected", "num"),
    ("num_dropped", "num"),
    ("num_failed", "num"),
    ("num_aggregated", "num"),
    ("num_online", "num"),
    ("round_time_s", "num"),
    ("participant_energy_j", "num"),
    ("global_energy_j", "num"),
    ("accuracy", "num"),
    ("accuracy_improvement", "num"),
)

RUNS_COLUMNS: tuple[Column, ...] = IDENTITY_COLUMNS + _columns(
    ("converged", "num"),
    ("rounds_executed", "num"),
    ("convergence_round", "num"),
    ("convergence_time_s", "num"),
    ("total_time_s", "num"),
    ("final_accuracy", "num"),
    ("participant_energy_j", "num"),
    ("global_energy_j", "num"),
    ("total_straggler_drops", "num"),
    ("total_fault_failures", "num"),
)

BENCH_COLUMNS: tuple[Column, ...] = _columns(
    ("benchmark", "str"),
    ("timestamp", "str"),
    ("git_sha", "str"),
    ("python_version", "str"),
    ("numpy_version", "str"),
    ("platform", "str"),
    ("machine", "str"),
    ("workload", "str"),
    ("interference", "str"),
    ("network", "str"),
    ("seed", "num"),
    # Round-engine suite measurements (one row per fleet size).
    ("num_devices", "num"),
    ("num_participants", "num"),
    ("scalar_rounds_per_s", "num"),
    ("batch_rounds_per_s", "num"),
    ("speedup", "num"),
    ("control_plane_round_s", "num"),
    ("energy_math_round_s", "num"),
    # Seed-replication measurement (one row per record, benchmark
    # "roundengine-replication").
    ("replicates", "num"),
    ("rounds", "num"),
    ("serial_wall_s", "num"),
    ("replicated_wall_s", "num"),
    # Store suite measurements (one row per backend).
    ("backend", "str"),
    ("entries", "num"),
    ("inserts_per_s", "num"),
    ("lookups_per_s", "num"),
    ("cold_open_s", "num"),
)

#: One row per metric series of an ingested telemetry snapshot
#: (:func:`repro.telemetry.exporter.snapshot_payload`).  Counters and gauges fill
#: ``value``; histograms fill ``count``/``sum`` and the bucket-rule quantiles.
METRICS_COLUMNS: tuple[Column, ...] = _columns(
    ("label", "str"),  # ingest label, like rounds/runs
    ("ts", "num"),  # snapshot wall-clock timestamp
    ("name", "str"),  # metric name, e.g. repro_round_time_s
    ("kind", "str"),  # counter | gauge | histogram
    ("labels", "str"),  # canonical "k=v,k=v" series labels
    ("value", "num"),
    ("count", "num"),
    ("sum", "num"),
    ("p50", "num"),
    ("p95", "num"),
    ("p99", "num"),
)

#: The warehouse tables by name.
TABLES: dict[str, tuple[Column, ...]] = {
    "rounds": ROUNDS_COLUMNS,
    "runs": RUNS_COLUMNS,
    "bench": BENCH_COLUMNS,
    "metrics": METRICS_COLUMNS,
}

#: Columns whose values identify a run, used to deduplicate re-ingests.
TABLE_KEYS: dict[str, tuple[str, ...]] = {
    "rounds": ("label", "source", "spec_hash", "seed"),
    "runs": ("label", "source", "spec_hash", "seed"),
    "bench": ("benchmark", "timestamp", "num_devices", "backend"),
    "metrics": ("label", "ts", "name", "labels"),
}


def table_schema(name: str) -> tuple[Column, ...]:
    """The column set of one table, with a did-you-mean error on unknown names."""
    try:
        return TABLES[name]
    except KeyError:
        raise AnalyticsError(
            f"unknown warehouse table {name!r}; expected one of {sorted(TABLES)}"
        ) from None


def column_kinds(name: str) -> dict[str, str]:
    """Column name -> kind mapping of one table."""
    return {column.name: column.kind for column in table_schema(name)}


# ---------------------------------------------------------------------- row builders
def identity_row(
    spec: "ExperimentSpec", label: str, source: str, preset: str | None
) -> dict:
    """The identity cells shared by every row a run contributes."""
    scenario = spec.scenario
    return {
        "label": label,
        "source": source,
        "spec_hash": spec.spec_hash(),
        "spec_schema": float(spec.to_dict()["schema"]),
        "preset": preset if preset else NULL_STR,
        "policy": spec.policy,
        "workload": scenario.workload,
        "setting": scenario.setting,
        "interference": scenario.interference,
        "network": scenario.network,
        "data_distribution": scenario.data_distribution,
        "availability": scenario.availability,
        "num_devices": float(scenario.num_devices),
        "seed": float(scenario.seed),
    }


def _num(value: object) -> float:
    return float("nan") if value is None else float(value)


def round_rows_from_result(
    result: "SimulationResult",
    spec: "ExperimentSpec",
    label: str = "default",
    source: str = "run",
    preset: str | None = None,
) -> list[dict]:
    """Flatten every :class:`~repro.sim.results.RoundRecord` of one trajectory."""
    identity = identity_row(spec, label, source, preset)
    rows = []
    for record in result.records:
        rows.append(
            {
                **identity,
                "round_index": float(record.round_index),
                "num_selected": float(len(record.selected_ids)),
                "num_dropped": float(len(record.dropped_ids)),
                "num_failed": float(len(record.failed_ids)),
                "num_aggregated": float(record.num_aggregated),
                "num_online": _num(record.num_online),
                "round_time_s": record.round_time_s,
                "participant_energy_j": record.participant_energy_j,
                "global_energy_j": record.global_energy_j,
                "accuracy": record.accuracy,
                "accuracy_improvement": record.accuracy_improvement,
            }
        )
    return rows


def run_row_from_result(
    result: "SimulationResult",
    spec: "ExperimentSpec",
    label: str = "default",
    source: str = "run",
    preset: str | None = None,
) -> dict:
    """One ``runs`` row summarising a full trajectory."""
    identity = identity_row(spec, label, source, preset)
    return {
        **identity,
        "converged": float(result.converged_round is not None),
        "rounds_executed": float(result.num_rounds),
        "convergence_round": _num(result.converged_round),
        "convergence_time_s": float(
            sum(
                record.round_time_s
                for record in result.records
                if result.converged_round is None
                or record.round_index <= result.converged_round
            )
        ),
        "total_time_s": float(result.total_time_s),
        "final_accuracy": float(result.final_accuracy),
        "participant_energy_j": float(result.total_participant_energy_j),
        "global_energy_j": float(result.total_global_energy_j),
        "total_straggler_drops": float(result.total_straggler_drops),
        "total_fault_failures": float(result.total_fault_failures),
    }


def round_rows_from_golden(golden: "GoldenTrajectory", label: str = "golden") -> list[dict]:
    """Flatten a recorded golden trajectory's per-round rows (no re-run needed).

    Golden rows carry the same per-round metrics as :func:`round_rows_from_result`
    (they are snapshots of the same :class:`~repro.sim.results.RoundRecord` fields),
    so a golden ingest and a fresh run of the same spec produce identical columns.
    """
    identity = identity_row(golden.spec, label, "golden", golden.name)
    rows = []
    for row in golden.rows:
        num_selected = float(row["num_selected"])
        num_dropped = float(row["num_dropped"])
        num_failed = float(row["num_failed"])
        rows.append(
            {
                **identity,
                "round_index": float(row["round"]),
                "num_selected": num_selected,
                "num_dropped": num_dropped,
                "num_failed": num_failed,
                "num_aggregated": num_selected - num_dropped - num_failed,
                "num_online": _num(row["num_online"]),
                "round_time_s": row["round_time_s"],
                "participant_energy_j": row["participant_energy_j"],
                "global_energy_j": row["global_energy_j"],
                "accuracy": row["accuracy"],
                "accuracy_improvement": row["accuracy_improvement"],
            }
        )
    return rows


def run_row_from_golden(golden: "GoldenTrajectory", label: str = "golden") -> dict:
    """One ``runs`` row summarising a recorded golden trajectory."""
    identity = identity_row(golden.spec, label, "golden", golden.name)
    rows = golden.rows
    return {
        **identity,
        "converged": float("nan"),  # Goldens record with stop_at_convergence=False.
        "rounds_executed": float(len(rows)),
        "convergence_round": float("nan"),
        "convergence_time_s": float("nan"),
        "total_time_s": float(sum(row["round_time_s"] for row in rows)),
        "final_accuracy": float(rows[-1]["accuracy"]) if rows else float("nan"),
        "participant_energy_j": float(sum(row["participant_energy_j"] for row in rows)),
        "global_energy_j": float(sum(row["global_energy_j"] for row in rows)),
        "total_straggler_drops": float(sum(row["num_dropped"] for row in rows)),
        "total_fault_failures": float(sum(row["num_failed"] for row in rows)),
    }


def run_rows_from_experiment(
    result: "ExperimentResult",
    label: str = "default",
    source: str = "store",
    preset: str | None = None,
) -> list[dict]:
    """One ``runs`` row per seed replica of a cached :class:`ExperimentResult`.

    Store payloads keep per-seed :class:`~repro.fl.metrics.EfficiencySummary` objects,
    not trajectories, so store ingests contribute ``runs`` rows only; the per-round
    failure totals are unknown and land as ``NaN``.
    """
    rows = []
    for unit, summary in zip(result.spec.seed_specs(), result.summaries):
        identity = identity_row(unit, label, source, preset)
        rows.append(
            {
                **identity,
                "converged": float(summary.converged),
                "rounds_executed": float(summary.rounds_executed),
                "convergence_round": _num(summary.convergence_round),
                "convergence_time_s": float(summary.convergence_time_s),
                "total_time_s": float(summary.total_time_s),
                "final_accuracy": float(summary.final_accuracy),
                "participant_energy_j": float(summary.participant_energy_j),
                "global_energy_j": float(summary.global_energy_j),
                "total_straggler_drops": float("nan"),
                "total_fault_failures": float("nan"),
            }
        )
    return rows


def bench_rows_from_record(record: Mapping) -> list[dict]:
    """Flatten one ``BENCH_*.json`` record into ``bench`` rows.

    The round-engine suite contributes one row per timed fleet size; the store suite
    one row per backend.  Unknown record shapes raise instead of silently ingesting
    unqueryable rows.
    """
    provenance = record.get("provenance", {}) or {}
    base = {
        "benchmark": str(record.get("benchmark", NULL_STR)),
        "timestamp": str(record.get("timestamp", NULL_STR)),
        "git_sha": str(provenance.get("git_sha") or NULL_STR),
        "python_version": str(provenance.get("python") or NULL_STR),
        "numpy_version": str(provenance.get("numpy") or NULL_STR),
        "platform": str(provenance.get("platform") or NULL_STR),
        "machine": str(provenance.get("machine") or NULL_STR),
        "workload": str(record.get("workload") or NULL_STR),
        "interference": str(record.get("interference") or NULL_STR),
        "network": str(record.get("network") or NULL_STR),
        "seed": _num(record.get("seed")),
    }
    benchmark = record.get("benchmark")
    if benchmark == "roundengine":
        rows = [
            {
                **base,
                "num_devices": _num(row.get("num_devices")),
                "num_participants": _num(row.get("num_participants")),
                "scalar_rounds_per_s": _num(row.get("scalar_rounds_per_s")),
                "batch_rounds_per_s": _num(row.get("batch_rounds_per_s")),
                "speedup": _num(row.get("speedup")),
                "control_plane_round_s": _num(row.get("control_plane_round_s")),
                "energy_math_round_s": _num(row.get("energy_math_round_s")),
            }
            for row in record.get("results", ())
        ]
        replication = record.get("replication")
        if replication:
            # A distinct benchmark name keys the replication measurement, so it never
            # collides with a fleet-size row of the same record in the dedup keys.
            rows.append(
                {
                    **base,
                    "benchmark": "roundengine-replication",
                    "num_devices": _num(replication.get("num_devices")),
                    "num_participants": _num(replication.get("num_participants")),
                    "replicates": _num(replication.get("replicates")),
                    "rounds": _num(replication.get("rounds")),
                    "serial_wall_s": _num(replication.get("serial_wall_s")),
                    "replicated_wall_s": _num(replication.get("replicated_wall_s")),
                    "speedup": _num(replication.get("speedup")),
                }
            )
        return rows
    if benchmark == "store":
        results = record.get("results", {})
        return [
            {
                **base,
                "backend": backend,
                "entries": _num(results[backend].get("entries")),
                "inserts_per_s": _num(results[backend].get("inserts_per_s")),
                "lookups_per_s": _num(results[backend].get("lookups_per_s")),
                "cold_open_s": _num(results[backend].get("cold_open_s")),
            }
            for backend in ("jsonl", "sqlite")
            if backend in results
        ]
    raise AnalyticsError(
        f"unknown bench record kind {benchmark!r}; expected 'roundengine' or 'store'"
    )


def metrics_rows_from_snapshot(
    snapshot: Mapping | list, label: str = "metrics"
) -> list[dict]:
    """Flatten a telemetry snapshot payload into ``metrics`` rows.

    Accepts the payload shape written by
    :func:`repro.telemetry.exporter.write_snapshot` (``{"schema", "ts", "metrics"}``)
    or a bare entry list as returned by
    :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`.
    """
    if isinstance(snapshot, Mapping):
        entries = snapshot.get("metrics", ())
        ts = _num(snapshot.get("ts"))
    else:
        entries = snapshot
        ts = float("nan")
    rows = []
    for entry in entries:
        labels = entry.get("labels", {})
        row = {
            "label": label,
            "ts": ts,
            "name": str(entry["name"]),
            "kind": str(entry["kind"]),
            "labels": ",".join(f"{k}={v}" for k, v in sorted(labels.items())),
        }
        if entry["kind"] == "histogram":
            row.update(
                count=float(entry["count"]),
                sum=float(entry["sum"]),
                p50=_num(entry.get("p50")),
                p95=_num(entry.get("p95")),
                p99=_num(entry.get("p99")),
            )
        else:
            row["value"] = float(entry["value"])
        rows.append(row)
    return rows


def rows_to_columns(table: str, rows: list[dict]) -> dict[str, np.ndarray]:
    """Materialise row dicts as schema-ordered numpy columns (missing cells -> null)."""
    schema = table_schema(table)
    columns: dict[str, np.ndarray] = {}
    for column in schema:
        cells = [row.get(column.name, column.null()) for row in rows]
        if column.kind == "str":
            columns[column.name] = np.array(
                [NULL_STR if cell is None else str(cell) for cell in cells], dtype=str
            )
        else:
            columns[column.name] = np.array(
                [_num(cell) for cell in cells], dtype=np.float64
            )
    return columns


def empty_columns(table: str) -> dict[str, np.ndarray]:
    """An empty (zero-row) column set of one table."""
    return rows_to_columns(table, [])
