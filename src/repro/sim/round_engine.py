"""Round execution engine: per-device compute/communication time, energy and stragglers.

Two execution paths share the same physical models:

* the scalar path (:meth:`RoundEngine.estimate_device` / :meth:`RoundEngine.execute`)
  walks :class:`~repro.devices.device.MobileDevice` objects one at a time and is kept as
  the readable reference implementation;
* the vectorised path (:meth:`RoundEngine.estimate_batch` /
  :meth:`RoundEngine.execute_batch`) evaluates the whole selection as numpy array
  expressions over the environment's :class:`~repro.devices.fleet_arrays.FleetArrays`
  snapshot, which is what makes thousand-device fleets simulate in constant Python time.

Equivalence tests pin the batched path to the scalar reference within 1e-9.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields

import numpy as np

from repro import telemetry
from repro.devices.device import ExecutionTarget, MobileDevice, RoundConditions
from repro.devices.energy import DeviceEnergy, RoundEnergyAccount
from repro.devices.fleet_arrays import (
    PROC_CPU,
    PROC_GPU,
    PROCESSOR_CODES,
    RoundConditionsArrays,
)
from repro.devices.performance import (
    ACHIEVABLE_BANDWIDTH_FRACTION,
    ACHIEVABLE_COMPUTE_FRACTION,
    ComputeWorkload,
)
from repro.devices.power import (
    DVFS_POWER_EXPONENT,
    STATIC_POWER_FRACTION,
    busy_power_at_frequency,
)
from repro.dynamics.faults import DeviceFault, FaultDraw
from repro.exceptions import SimulationError
from repro.sim.context import SelectionDecision
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.results import BatchRoundExecution, DeviceRoundOutcome, RoundExecution

#: A selected device whose round time exceeds this multiple of the median participant's
#: round time is treated as a severe straggler and excluded from the aggregation, mirroring
#: the FedAvg deployment behaviour the paper describes (Sections 2.2 and 6.2).
STRAGGLER_CUTOFF_FACTOR = 2.5

#: Additional sustained power (W) contributed by a fully busy co-runner, fed into the
#: thermal throttling model alongside the training power draw.
CO_RUNNER_POWER_WATT = 1.5

#: Histogram buckets for selection sizes (device counts, up to the 1M stretch goal).
SELECTION_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
    10000, 20000, 50000, 100000, 200000, 500000, 1000000,
)


def straggler_deadline(times: np.ndarray, cutoff: float) -> float:
    """Round deadline implied by the straggler cutoff for the given outcome times.

    The deadline is ``cutoff`` times the median participant time.  When the median is
    zero the cutoff is undefined: if some participants still take time, the slowest one
    sets the deadline (nobody is dropped); if *every* outcome time is zero — empty
    shards and instant links — there is no straggler structure at all, so the deadline
    is infinite rather than the degenerate ``0.0`` that would truncate by ``0/0``.
    """
    median_time = float(np.median(times))
    if median_time > 0:
        return cutoff * median_time
    max_time = float(times.max())
    if max_time > 0:
        return max_time
    return math.inf


@dataclass(frozen=True)
class BatchEstimates:
    """Vectorised per-participant round estimates (aligned on the selection order)."""

    compute_time_s: np.ndarray
    communication_time_s: np.ndarray
    compute_j: np.ndarray
    communication_j: np.ndarray
    utilization: np.ndarray

    @property
    def total_time_s(self) -> np.ndarray:
        """Compute plus communication time per participant."""
        return self.compute_time_s + self.communication_time_s


@dataclass(frozen=True)
class _StaticInputs:
    """Condition-independent per-participant gathers for one selection.

    Everything the estimate math needs from a :class:`FleetArrays` snapshot, gathered
    once per selection.  All fields are aligned on the selection order; stacking several
    replicates' gathers along a leading axis (:meth:`stack`) yields the
    ``[replicates, devices]`` layout the replicated executor feeds through the exact
    same math, so per-replicate results are bitwise identical to solo execution.
    """

    gpu_mask: np.ndarray
    num_samples: np.ndarray
    capability: np.ndarray
    peak_gflops: np.ndarray
    mem_bandwidth: np.ndarray
    saturation: np.ndarray
    rel_f: np.ndarray
    peak_power: np.ndarray
    power_scale: np.ndarray
    awake_power: np.ndarray

    @classmethod
    def gather(
        cls, arrays, rows: np.ndarray, processors: np.ndarray, vf_steps: np.ndarray
    ) -> "_StaticInputs":
        return cls(
            gpu_mask=processors == PROC_GPU,
            num_samples=arrays.num_samples[rows],
            capability=arrays.cpu_capability_gflops[rows],
            peak_gflops=arrays.peak_gflops[processors, rows],
            mem_bandwidth=arrays.mem_bandwidth_gbs[processors, rows],
            saturation=arrays.saturation_batch[processors, rows],
            rel_f=arrays.relative_frequency(processors, vf_steps, rows),
            peak_power=arrays.peak_power_watt[processors, rows],
            power_scale=arrays.training_power_scale[rows],
            awake_power=arrays.awake_power_watt[rows],
        )

    @classmethod
    def stack(cls, inputs: Sequence["_StaticInputs"]) -> "_StaticInputs":
        return cls(
            **{
                spec.name: np.stack([getattr(item, spec.name) for item in inputs])
                for spec in fields(cls)
            }
        )


@dataclass(frozen=True)
class _ResolvedRound:
    """Straggler/fault/waiting resolution of one (or a stack of) executed round(s).

    Per-participant arrays have the shape of the estimates they came from (``[K]`` or
    ``[replicates, K]``); ``round_time`` keeps a trailing length-1 axis so it broadcasts
    against them.
    """

    compute_time_s: np.ndarray
    communication_time_s: np.ndarray
    compute_j: np.ndarray
    communication_j: np.ndarray
    waiting_j: np.ndarray
    dropped: np.ndarray
    round_time: np.ndarray


class RoundEngine:
    """Executes the system side of one aggregation round for a given selection decision."""

    def __init__(
        self, environment: EdgeCloudEnvironment, straggler_cutoff: float = STRAGGLER_CUTOFF_FACTOR
    ) -> None:
        if straggler_cutoff <= 1.0:
            raise SimulationError("straggler_cutoff must be > 1.0")
        self._env = environment
        self._straggler_cutoff = straggler_cutoff

    # ------------------------------------------------------------------ estimation
    def device_round_workload(self, device: MobileDevice) -> ComputeWorkload:
        """Local-training computational demand of one device for the current job."""
        params = self._env.global_params
        return ComputeWorkload.for_round(
            flops_per_sample=self._env.workload.flops_per_sample,
            bytes_per_sample=self._env.workload.bytes_per_sample,
            num_samples=device.num_local_samples,
            batch_size=params.batch_size,
            local_epochs=params.local_epochs,
        )

    def estimate_device(
        self,
        device: MobileDevice,
        target: ExecutionTarget,
        conditions: RoundConditions,
    ) -> DeviceRoundOutcome:
        """Predict one selected device's time and energy for the round.

        Interference from co-running applications slows the selected processor, sustained
        power above the thermal budget adds throttling, and the sampled bandwidth determines
        communication time and radio energy.  This is the scalar reference implementation;
        :meth:`estimate_batch` computes the same quantities for a whole selection at once.
        """
        workload = self.device_round_workload(device)
        slowdown = self._env.slowdown
        capability = device.spec.processor("cpu").peak_gflops
        compute_slowdown = slowdown.compute_slowdown(
            conditions.co_cpu_util, conditions.co_mem_util, target.processor, capability
        )
        memory_slowdown = slowdown.memory_slowdown(
            conditions.co_cpu_util, conditions.co_mem_util, target.processor, capability
        )
        estimate = device.estimate_compute(workload, target, compute_slowdown, memory_slowdown)

        # Thermal throttling: sustained power above the chassis budget slows the CPU further.
        if target.processor == "cpu" and estimate.time_s > 0:
            spec = device.spec.processor(target.processor)
            sustained_power = busy_power_at_frequency(
                spec, target.vf_step, estimate.utilization, device.spec.training_power_scale
            ) + CO_RUNNER_POWER_WATT * conditions.co_cpu_util
            throttle = self._env.thermal.throttle_slowdown(sustained_power)
            if throttle > 1.0:
                estimate = device.estimate_compute(
                    workload, target, compute_slowdown * throttle, memory_slowdown
                )

        communication = self._env.communication.estimate(
            model_size_mb=self._env.workload.model_size_mb,
            bandwidth_mbps=conditions.bandwidth_mbps,
        )
        # The radio front-end and modem of lower-tier platforms draw proportionally less
        # power, mirroring the tier-level platform power calibration of the compute side.
        communication_energy = communication.energy_j * device.spec.training_power_scale
        energy = DeviceEnergy(
            compute_j=estimate.energy_j,
            communication_j=communication_energy,
            idle_j=0.0,
        )
        return DeviceRoundOutcome(
            device_id=device.device_id,
            target=target,
            compute_time_s=estimate.time_s,
            communication_time_s=communication.total_time_s,
            energy=energy,
        )

    def estimate_batch(
        self,
        rows: np.ndarray,
        processors: np.ndarray,
        vf_steps: np.ndarray,
        conditions: RoundConditionsArrays,
    ) -> BatchEstimates:
        """Vectorised :meth:`estimate_device` for one device subset.

        Parameters
        ----------
        rows:
            Fleet rows (indices into the environment's ``fleet_arrays``) to evaluate.
        processors / vf_steps:
            Per-row execution target as processor codes (:data:`PROC_CPU` /
            :data:`PROC_GPU`) and V-F step indices.
        conditions:
            Runtime conditions aligned on ``rows``.
        """
        static = _StaticInputs.gather(self._env.fleet_arrays, rows, processors, vf_steps)
        return self._estimate_math(static, conditions)

    def _estimate_math(
        self, static: _StaticInputs, conditions: RoundConditionsArrays
    ) -> BatchEstimates:
        """The shape-agnostic math half of :meth:`estimate_batch`.

        Operates purely on pre-gathered arrays, so the same expressions evaluate a
        ``[K]`` selection or a stacked ``[replicates, K]`` batch.  Everything is
        elementwise, which keeps each stacked row bitwise identical to evaluating that
        replicate alone.
        """
        workload = self._env.workload
        params = self._env.global_params
        batch_size = params.batch_size

        # Workload aggregation (ComputeWorkload.for_round, vectorised over shard sizes).
        batches_per_epoch = (static.num_samples + batch_size - 1) // batch_size
        processed = batches_per_epoch * batch_size * params.local_epochs
        flops = workload.flops_per_sample * processed
        memory_bytes = workload.bytes_per_sample * processed

        # Interference slowdowns for the selected targets.
        gpu_mask = static.gpu_mask
        compute_slowdown = self._env.slowdown.compute_slowdown_batch(
            conditions.co_cpu_util, conditions.co_mem_util, gpu_mask, static.capability
        )
        memory_slowdown = self._env.slowdown.memory_slowdown_batch(
            conditions.co_cpu_util, conditions.co_mem_util, gpu_mask, static.capability
        )

        # Roofline time model (TrainingTimeModel, vectorised).
        peak_gflops = static.peak_gflops
        mem_bandwidth = static.mem_bandwidth
        saturation = static.saturation
        rel_f = static.rel_f
        efficiency = np.where(
            batch_size >= saturation, 1.0, (batch_size / saturation) ** 0.75
        )
        gflops = (
            ACHIEVABLE_COMPUTE_FRACTION * peak_gflops * rel_f * efficiency / compute_slowdown
        )
        bandwidth = ACHIEVABLE_BANDWIDTH_FRACTION * mem_bandwidth / memory_slowdown
        compute_time = flops / (gflops * 1e9)
        memory_time = memory_bytes / (bandwidth * 1e9)
        time_s = compute_time + memory_time

        # Utilisation and busy power are computed without interference slowdowns,
        # mirroring TrainingTimeModel.utilization and busy_power_at_frequency.
        clean_gflops = ACHIEVABLE_COMPUTE_FRACTION * peak_gflops * rel_f * efficiency
        clean_bandwidth = ACHIEVABLE_BANDWIDTH_FRACTION * mem_bandwidth
        clean_compute_time = flops / (clean_gflops * 1e9)
        clean_memory_time = memory_bytes / (clean_bandwidth * 1e9)
        clean_total = clean_compute_time + clean_memory_time
        utilization = np.where(
            clean_total > 0,
            np.minimum(
                1.0,
                (clean_compute_time + 0.5 * clean_memory_time)
                / np.where(clean_total > 0, clean_total, 1.0),
            ),
            0.0,
        )
        peak_power = static.peak_power
        static_power = STATIC_POWER_FRACTION * peak_power
        dynamic_power = (peak_power - static_power) * rel_f**DVFS_POWER_EXPONENT * utilization
        power_scale = static.power_scale
        power = power_scale * (static_power + dynamic_power)

        # Thermal throttling stretches the compute term of CPU targets whose sustained
        # power (training plus co-runner) exceeds the chassis budget.
        sustained_power = power + CO_RUNNER_POWER_WATT * conditions.co_cpu_util
        throttle = self._env.thermal.throttle_slowdown_batch(sustained_power)
        throttled = (~gpu_mask) & (time_s > 0) & (throttle > 1.0)
        final_compute_slowdown = np.where(throttled, compute_slowdown * throttle, compute_slowdown)
        final_gflops = (
            ACHIEVABLE_COMPUTE_FRACTION * peak_gflops * rel_f * efficiency
            / final_compute_slowdown
        )
        final_compute_time = flops / (final_gflops * 1e9)
        final_time_s = final_compute_time + memory_time
        compute_j = power * final_time_s

        # Communication time and radio energy, scaled by the tier power calibration.
        upload_time, download_time, radio_energy = self._env.communication.estimate_batch(
            model_size_mb=workload.model_size_mb, bandwidth_mbps=conditions.bandwidth_mbps
        )
        communication_time = upload_time + download_time
        communication_j = radio_energy * power_scale

        return BatchEstimates(
            compute_time_s=final_time_s,
            communication_time_s=communication_time,
            compute_j=compute_j,
            communication_j=communication_j,
            utilization=utilization,
        )

    # ------------------------------------------------------------------ execution
    def _participant_conditions(
        self,
        decision: SelectionDecision,
        conditions: Mapping[int, RoundConditions] | RoundConditionsArrays,
        rows: np.ndarray,
    ) -> RoundConditionsArrays:
        if isinstance(conditions, RoundConditionsArrays):
            if len(conditions) != len(self._env.fleet_arrays):
                raise SimulationError(
                    "fleet-wide condition arrays must cover every device in the fleet"
                )
            return conditions.take(rows)
        return RoundConditionsArrays.from_mapping(decision.participants, conditions)

    def _decision_targets(
        self, decision: SelectionDecision, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        arrays = self._env.fleet_arrays
        if decision.target_processors is not None and decision.target_vf_steps is not None:
            # Policies that already scored targets as arrays hand them over directly,
            # skipping the per-participant dict walk below.
            return (
                np.asarray(decision.target_processors, dtype=np.int64),
                np.asarray(decision.target_vf_steps, dtype=np.int64),
            )
        processors = np.full(len(rows), PROC_CPU, dtype=np.int64)
        vf_steps = arrays.default_vf_steps()[rows]
        if decision.targets:
            for i, device_id in enumerate(decision.participants):
                target = decision.targets.get(device_id)
                if target is not None:
                    processors[i] = PROCESSOR_CODES[target.processor]
                    vf_steps[i] = target.vf_step
        return processors, vf_steps

    def _check_selection_online(self, rows: np.ndarray, online_mask: np.ndarray) -> None:
        if len(online_mask) != len(self._env.fleet_arrays):
            raise SimulationError("online_mask must cover every device in the fleet")
        offline = ~np.asarray(online_mask, dtype=bool)[rows]
        if offline.any():
            arrays = self._env.fleet_arrays
            offline_ids = [int(arrays.device_ids[row]) for row in rows[offline]]
            raise SimulationError(
                f"selected devices {offline_ids[:5]} are offline this round; policies "
                "must select from the online candidates only"
            )

    def execute_batch(
        self,
        decision: SelectionDecision,
        conditions: Mapping[int, RoundConditions] | RoundConditionsArrays,
        faults: FaultDraw | None = None,
        online_mask: np.ndarray | None = None,
    ) -> BatchRoundExecution:
        """Execute the round as array operations over the whole selection.

        Semantically identical to :meth:`execute` — same straggler cutoff, truncation,
        waiting and idle accounting — but returns a :class:`BatchRoundExecution` whose
        per-device quantities stay in numpy arrays.  ``conditions`` may be the usual
        per-device mapping or fleet-wide :class:`RoundConditionsArrays`.

        ``faults`` (aligned on the selection order) injects mid-round failures:
        slow-fail stragglers stretch a participant's compute time and energy before the
        straggler cutoff is applied, and upload failures waste the device's compute
        (capped at the deadline) without ever transmitting — the update is lost, marked
        in ``BatchRoundExecution.failed``.  ``online_mask`` (fleet order) rejects
        selections of offline devices and zeroes the idle energy of devices that are
        out of the population this round.  Both default to the static, fault-free
        behaviour bit-exactly.
        """
        if not decision.participants:
            raise SimulationError("a round needs at least one selected participant")
        arrays = self._env.fleet_arrays
        rows = arrays.rows_for(decision.participants)
        if online_mask is not None:
            self._check_selection_online(rows, online_mask)
        processors, vf_steps = self._decision_targets(decision, rows)
        participant_conditions = self._participant_conditions(decision, conditions, rows)
        static = _StaticInputs.gather(arrays, rows, processors, vf_steps)
        estimates = self._estimate_math(static, participant_conditions)

        fault_slowdown = None
        failed = None
        if faults is not None:
            if len(faults) != len(rows):
                raise SimulationError("fault draw must align with the selection")
            if np.any(faults.compute_slowdown > 1.0):
                fault_slowdown = faults.compute_slowdown
            if faults.upload_failure.any():
                failed = faults.upload_failure

        resolved = self._resolve_round(estimates, static, fault_slowdown, failed)
        round_time = float(resolved.round_time[0])
        idle_j = arrays.idle_power_watt * round_time
        idle_j[rows] = 0.0
        if online_mask is not None:
            # Offline devices are unreachable (or churned away) — they are not idling
            # on behalf of this training job, so the global account excludes them.
            idle_j = np.where(np.asarray(online_mask, dtype=bool), idle_j, 0.0)

        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_engine_batch_rounds_total", help="Vectorised engine round executions."
            ).inc()
            registry.histogram(
                "repro_engine_selection_size",
                help="Participants per executed round.",
                buckets=SELECTION_SIZE_BUCKETS,
            ).observe(float(len(rows)))

        return BatchRoundExecution(
            selected_ids=np.array(decision.participants, dtype=np.int64),
            processors=processors,
            vf_steps=vf_steps,
            compute_time_s=resolved.compute_time_s,
            communication_time_s=resolved.communication_time_s,
            compute_j=resolved.compute_j,
            communication_j=resolved.communication_j,
            waiting_j=resolved.waiting_j,
            dropped=resolved.dropped,
            round_time_s=round_time,
            fleet_device_ids=arrays.device_ids,
            idle_j=idle_j,
            failed=failed,  # BatchRoundExecution defaults None to all-False.
        )

    def _resolve_round(
        self,
        estimates: BatchEstimates,
        static: _StaticInputs,
        fault_slowdown: np.ndarray | None,
        failed: np.ndarray | None,
    ) -> _ResolvedRound:
        """Straggler cutoff, fault truncation and waiting energy for executed estimates.

        Shape-agnostic: reductions run over the trailing (participant) axis with
        ``keepdims``, so a stacked ``[replicates, K]`` batch resolves each replicate row
        exactly as the 1-D solo path would — including the per-replicate deadline,
        retained-set maximum and waiting-time accounting.
        """
        compute_time_est = estimates.compute_time_s
        compute_j_est = estimates.compute_j
        if fault_slowdown is not None:
            # Slow-fail stragglers: the transient condition stretches compute time
            # at unchanged power, so wasted energy grows with the slowdown.
            compute_time_est = compute_time_est * fault_slowdown
            compute_j_est = compute_j_est * fault_slowdown

        times = compute_time_est + estimates.communication_time_s
        # Vectorised straggler_deadline(): cutoff times the median participant time,
        # falling back to the slowest participant and then to +inf per stacked row.
        median_time = np.median(times, axis=-1, keepdims=True)
        max_time = np.max(times, axis=-1, keepdims=True)
        deadline = np.where(
            median_time > 0,
            self._straggler_cutoff * median_time,
            np.where(max_time > 0, max_time, np.inf),
        )
        dropped = times > deadline
        # The server closes the round at the deadline; stragglers abort, so they only
        # spend time and energy up to the deadline (scaled proportionally).
        truncation = np.where(dropped, deadline / np.where(dropped, times, 1.0), 1.0)
        compute_time = compute_time_est * truncation
        communication_time = estimates.communication_time_s * truncation
        compute_j = compute_j_est * truncation
        communication_j = estimates.communication_j * truncation
        if failed is not None:
            # Dropout before upload: local training ran (capped at the deadline) but
            # the update never reached the server — compute is wasted, radio unused.
            capped = np.minimum(compute_time_est, deadline)
            frac = np.divide(
                capped,
                compute_time_est,
                out=np.ones_like(capped),
                where=compute_time_est > 0,
            )
            compute_time = np.where(failed, capped, compute_time)
            compute_j = np.where(failed, compute_j_est * frac, compute_j)
            communication_time = np.where(failed, 0.0, communication_time)
            communication_j = np.where(failed, 0.0, communication_j)
        final_times = compute_time + communication_time

        excluded = dropped if failed is None else dropped | failed
        retained = ~excluded
        has_retained = np.any(retained, axis=-1, keepdims=True)
        retained_max = np.max(np.where(retained, final_times, -np.inf), axis=-1, keepdims=True)
        round_time = np.where(
            has_retained,
            retained_max,
            np.where(
                np.isfinite(deadline),
                deadline,
                # Every participant failed with zero-time outcomes: nothing to wait for.
                np.max(final_times, axis=-1, keepdims=True),
            ),
        )

        # Participants that finish before the round closes stay awake (wakelock, radio
        # connected) waiting for the aggregated model, at awake power.
        waiting_time = np.maximum(0.0, round_time - np.minimum(final_times, round_time))
        waiting_j = static.awake_power * waiting_time
        if failed is not None:
            waiting_j = np.where(failed, 0.0, waiting_j)
        return _ResolvedRound(
            compute_time_s=compute_time,
            communication_time_s=communication_time,
            compute_j=compute_j,
            communication_j=communication_j,
            waiting_j=waiting_j,
            dropped=dropped,
            round_time=round_time,
        )

    def execute(
        self,
        decision: SelectionDecision,
        conditions: Mapping[int, RoundConditions],
        faults: Mapping[int, DeviceFault] | None = None,
        online_mask: np.ndarray | None = None,
    ) -> RoundExecution:
        """Execute the round: evaluate every selected device, apply the straggler cutoff,
        and account idle energy for non-selected devices.

        ``faults`` / ``online_mask`` mirror :meth:`execute_batch`: slow-fail stragglers
        stretch compute before the cutoff, upload failures waste their compute without
        transmitting, and offline devices can neither be selected nor draw idle energy.
        """
        if not decision.participants:
            raise SimulationError("a round needs at least one selected participant")
        if online_mask is not None:
            rows = self._env.fleet_arrays.rows_for(decision.participants)
            self._check_selection_online(rows, online_mask)
        fault_of: Mapping[int, DeviceFault] = faults if faults is not None else {}
        outcomes: dict[int, DeviceRoundOutcome] = {}
        for device_id in decision.participants:
            device = self._env.fleet[device_id]
            target = decision.target_for(device_id, device.default_target())
            try:
                condition = conditions[device_id]
            except KeyError:
                raise SimulationError(
                    f"no round conditions for selected device {device_id}"
                ) from None
            outcome = self.estimate_device(device, target, condition)
            fault = fault_of.get(device_id)
            if fault is not None and fault.compute_slowdown > 1.0:
                outcome = DeviceRoundOutcome(
                    device_id=device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s * fault.compute_slowdown,
                    communication_time_s=outcome.communication_time_s,
                    energy=DeviceEnergy(
                        compute_j=outcome.energy.compute_j * fault.compute_slowdown,
                        communication_j=outcome.energy.communication_j,
                        idle_j=outcome.energy.idle_j,
                    ),
                )
            outcomes[device_id] = outcome

        times = np.array([outcome.total_time_s for outcome in outcomes.values()])
        deadline = straggler_deadline(times, self._straggler_cutoff)

        final_outcomes: dict[int, DeviceRoundOutcome] = {}
        retained_times: list[float] = []
        for device_id, outcome in outcomes.items():
            fault = fault_of.get(device_id)
            failed = bool(fault.upload_failure) if fault is not None else False
            dropped = outcome.total_time_s > deadline
            if failed:
                # Dropout before upload: local training ran (capped at the deadline)
                # but the update never reached the server.
                capped = min(outcome.compute_time_s, deadline)
                frac = capped / outcome.compute_time_s if outcome.compute_time_s > 0 else 1.0
                final_outcomes[device_id] = DeviceRoundOutcome(
                    device_id=device_id,
                    target=outcome.target,
                    compute_time_s=capped,
                    communication_time_s=0.0,
                    energy=DeviceEnergy(
                        compute_j=outcome.energy.compute_j * frac,
                        communication_j=0.0,
                        idle_j=outcome.energy.idle_j,
                    ),
                    dropped=dropped,
                    failed=True,
                )
            elif dropped:
                # The server closes the round at the deadline; the straggler aborts, so it
                # only spends energy up to the deadline (scaled proportionally).
                truncation = deadline / outcome.total_time_s
                final_outcomes[device_id] = DeviceRoundOutcome(
                    device_id=device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s * truncation,
                    communication_time_s=outcome.communication_time_s * truncation,
                    energy=DeviceEnergy(
                        compute_j=outcome.energy.compute_j * truncation,
                        communication_j=outcome.energy.communication_j * truncation,
                        idle_j=outcome.energy.idle_j,
                    ),
                    dropped=True,
                )
            else:
                final_outcomes[device_id] = outcome
                retained_times.append(outcome.total_time_s)

        if retained_times:
            round_time = max(retained_times)
        elif math.isfinite(deadline):
            round_time = deadline
        else:  # Every participant failed with zero-time outcomes: nothing to wait for.
            round_time = max(outcome.total_time_s for outcome in final_outcomes.values())

        energy_account = RoundEnergyAccount()
        selected_ids = set(decision.participants)
        online = (
            None if online_mask is None else np.asarray(online_mask, dtype=bool)
        )
        for row, device in enumerate(self._env.fleet):
            if device.device_id in selected_ids:
                outcome = final_outcomes[device.device_id]
                # Participants that finish before the round closes stay awake (wakelock,
                # radio connected) waiting for the aggregated model, at awake power.
                # Mid-round failures are dead — they wait for nothing.
                waiting_time = (
                    0.0
                    if outcome.failed
                    else max(0.0, round_time - min(outcome.total_time_s, round_time))
                )
                energy_with_wait = DeviceEnergy(
                    compute_j=outcome.energy.compute_j,
                    communication_j=outcome.energy.communication_j,
                    idle_j=device.awake_power() * waiting_time,
                )
                final_outcomes[device.device_id] = DeviceRoundOutcome(
                    device_id=outcome.device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s,
                    communication_time_s=outcome.communication_time_s,
                    energy=energy_with_wait,
                    dropped=outcome.dropped,
                    failed=outcome.failed,
                )
                energy_account.record(device.device_id, energy_with_wait)
            else:
                idle_j = (
                    0.0
                    if online is not None and not online[row]
                    else device.idle_power() * round_time
                )
                energy_account.record(device.device_id, DeviceEnergy(idle_j=idle_j))
        return RoundExecution(
            outcomes=final_outcomes, round_time_s=round_time, energy=energy_account
        )


def execute_batch_replicated(
    engines: Sequence[RoundEngine],
    decisions: Sequence[SelectionDecision],
    conditions: Sequence[Mapping[int, RoundConditions] | RoundConditionsArrays],
    faults: Sequence[FaultDraw | None] | None = None,
    online_masks: Sequence[np.ndarray | None] | None = None,
) -> list[BatchRoundExecution]:
    """Execute one round of N seed-replicates of the same scenario in one stacked pass.

    Each replicate ``i`` is described by its own engine (over its own seed's
    environment), selection decision, conditions and optional fault draw / online mask.
    Replicates whose selections have the same size are stacked into ``[replicates, K]``
    arrays and resolved by a single :meth:`RoundEngine._estimate_math` /
    :meth:`RoundEngine._resolve_round` evaluation, so the per-round Python cost is paid
    once per selection size instead of once per replicate.

    Every per-replicate result is **bitwise identical** to calling
    ``engines[i].execute_batch(...)`` alone: the math is elementwise, reductions run per
    stacked row, fault-free replicates ride along under identity masks (slowdown 1.0,
    ``failed`` all-False), and idle accounting uses each replicate's own fleet arrays.

    Replicates must come from the same scenario (same workload, interference, network
    and straggler models) — only the seed may differ.  A light compatibility check
    rejects mixed workloads; mixing scenarios with different physics constants is
    undefined.
    """
    n = len(engines)
    if not (len(decisions) == len(conditions) == n):
        raise SimulationError("replicated execution requires aligned per-replicate inputs")
    if faults is not None and len(faults) != n:
        raise SimulationError("replicated execution requires aligned per-replicate inputs")
    if online_masks is not None and len(online_masks) != n:
        raise SimulationError("replicated execution requires aligned per-replicate inputs")
    if n == 0:
        return []
    first = engines[0]
    for engine in engines[1:]:
        workload, first_workload = engine._env.workload, first._env.workload
        params, first_params = engine._env.global_params, first._env.global_params
        if (
            engine._straggler_cutoff != first._straggler_cutoff
            or workload.flops_per_sample != first_workload.flops_per_sample
            or workload.bytes_per_sample != first_workload.bytes_per_sample
            or workload.model_size_mb != first_workload.model_size_mb
            or params.batch_size != first_params.batch_size
            or params.local_epochs != first_params.local_epochs
        ):
            raise SimulationError(
                "replicated execution requires same-scenario replicates (only the seed "
                "may differ between replicates)"
            )

    prepared = []
    for i in range(n):
        engine, decision = engines[i], decisions[i]
        if not decision.participants:
            raise SimulationError("a round needs at least one selected participant")
        arrays = engine._env.fleet_arrays
        rows = arrays.rows_for(decision.participants)
        online_mask = None if online_masks is None else online_masks[i]
        if online_mask is not None:
            engine._check_selection_online(rows, online_mask)
        processors, vf_steps = engine._decision_targets(decision, rows)
        taken = engine._participant_conditions(decision, conditions[i], rows)
        fault = None if faults is None else faults[i]
        fault_slowdown = None
        upload_failure = None
        if fault is not None:
            if len(fault) != len(rows):
                raise SimulationError("fault draw must align with the selection")
            if np.any(fault.compute_slowdown > 1.0):
                fault_slowdown = fault.compute_slowdown
            if fault.upload_failure.any():
                upload_failure = fault.upload_failure
        static = _StaticInputs.gather(arrays, rows, processors, vf_steps)
        prepared.append(
            (rows, processors, vf_steps, static, taken, fault_slowdown, upload_failure)
        )

    # Selections of different sizes cannot share one rectangular stack (padding would
    # change each row's median/max reductions), so replicates group by selection size.
    groups: dict[int, list[int]] = {}
    for i, item in enumerate(prepared):
        groups.setdefault(len(item[0]), []).append(i)

    registry = telemetry.get_registry()
    if registry.enabled:
        registry.counter(
            "repro_engine_replicated_rounds_total",
            help="Replicate-rounds executed through the stacked batch path.",
        ).inc(n)

    results: list[BatchRoundExecution | None] = [None] * n
    for members in groups.values():
        static = _StaticInputs.stack([prepared[i][3] for i in members])
        stacked_conditions = RoundConditionsArrays(
            co_cpu_util=np.stack([prepared[i][4].co_cpu_util for i in members]),
            co_mem_util=np.stack([prepared[i][4].co_mem_util for i in members]),
            bandwidth_mbps=np.stack([prepared[i][4].bandwidth_mbps for i in members]),
        )
        # Fault-free replicates ride along under identity masks: multiplying by an
        # all-1.0 slowdown and masking with an all-False ``failed`` row reproduce the
        # fault-less dataflow bit-for-bit.
        fault_slowdown = None
        if any(prepared[i][5] is not None for i in members):
            fault_slowdown = np.stack(
                [
                    prepared[i][5]
                    if prepared[i][5] is not None
                    else np.ones(len(prepared[i][0]), dtype=np.float64)
                    for i in members
                ]
            )
        failed = None
        if any(prepared[i][6] is not None for i in members):
            failed = np.stack(
                [
                    prepared[i][6]
                    if prepared[i][6] is not None
                    else np.zeros(len(prepared[i][0]), dtype=bool)
                    for i in members
                ]
            )
        estimates = first._estimate_math(static, stacked_conditions)
        resolved = first._resolve_round(estimates, static, fault_slowdown, failed)

        for g, i in enumerate(members):
            rows, processors, vf_steps = prepared[i][0], prepared[i][1], prepared[i][2]
            engine, decision = engines[i], decisions[i]
            arrays = engine._env.fleet_arrays
            round_time = float(resolved.round_time[g, 0])
            idle_j = arrays.idle_power_watt * round_time
            idle_j[rows] = 0.0
            online_mask = None if online_masks is None else online_masks[i]
            if online_mask is not None:
                idle_j = np.where(np.asarray(online_mask, dtype=bool), idle_j, 0.0)
            results[i] = BatchRoundExecution(
                selected_ids=np.array(decision.participants, dtype=np.int64),
                processors=processors,
                vf_steps=vf_steps,
                compute_time_s=resolved.compute_time_s[g],
                communication_time_s=resolved.communication_time_s[g],
                compute_j=resolved.compute_j[g],
                communication_j=resolved.communication_j[g],
                waiting_j=resolved.waiting_j[g],
                dropped=resolved.dropped[g],
                round_time_s=round_time,
                fleet_device_ids=arrays.device_ids,
                idle_j=idle_j,
                failed=None if failed is None else failed[g],
            )
    return [result for result in results if result is not None]
