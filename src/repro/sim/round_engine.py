"""Round execution engine: per-device compute/communication time, energy and stragglers."""

from __future__ import annotations

import numpy as np

from repro.devices.device import ExecutionTarget, MobileDevice, RoundConditions
from repro.devices.energy import DeviceEnergy, RoundEnergyAccount
from repro.devices.performance import ComputeWorkload
from repro.devices.power import busy_power_at_frequency
from repro.exceptions import SimulationError
from repro.sim.context import SelectionDecision
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.results import DeviceRoundOutcome, RoundExecution

#: A selected device whose round time exceeds this multiple of the median participant's
#: round time is treated as a severe straggler and excluded from the aggregation, mirroring
#: the FedAvg deployment behaviour the paper describes (Sections 2.2 and 6.2).
STRAGGLER_CUTOFF_FACTOR = 2.5


class RoundEngine:
    """Executes the system side of one aggregation round for a given selection decision."""

    def __init__(
        self, environment: EdgeCloudEnvironment, straggler_cutoff: float = STRAGGLER_CUTOFF_FACTOR
    ) -> None:
        if straggler_cutoff <= 1.0:
            raise SimulationError("straggler_cutoff must be > 1.0")
        self._env = environment
        self._straggler_cutoff = straggler_cutoff

    # ------------------------------------------------------------------ estimation
    def device_round_workload(self, device: MobileDevice) -> ComputeWorkload:
        """Local-training computational demand of one device for the current job."""
        params = self._env.global_params
        return ComputeWorkload.for_round(
            flops_per_sample=self._env.workload.flops_per_sample,
            bytes_per_sample=self._env.workload.bytes_per_sample,
            num_samples=device.num_local_samples,
            batch_size=params.batch_size,
            local_epochs=params.local_epochs,
        )

    def estimate_device(
        self,
        device: MobileDevice,
        target: ExecutionTarget,
        conditions: RoundConditions,
    ) -> DeviceRoundOutcome:
        """Predict one selected device's time and energy for the round.

        Interference from co-running applications slows the selected processor, sustained
        power above the thermal budget adds throttling, and the sampled bandwidth determines
        communication time and radio energy.
        """
        workload = self.device_round_workload(device)
        slowdown = self._env.slowdown
        capability = device.spec.processor("cpu").peak_gflops
        compute_slowdown = slowdown.compute_slowdown(
            conditions.co_cpu_util, conditions.co_mem_util, target.processor, capability
        )
        memory_slowdown = slowdown.memory_slowdown(
            conditions.co_cpu_util, conditions.co_mem_util, target.processor, capability
        )
        estimate = device.estimate_compute(workload, target, compute_slowdown, memory_slowdown)

        # Thermal throttling: sustained power above the chassis budget slows the CPU further.
        if target.processor == "cpu" and estimate.time_s > 0:
            spec = device.spec.processor(target.processor)
            sustained_power = busy_power_at_frequency(
                spec, target.vf_step, estimate.utilization, device.spec.training_power_scale
            ) + 1.5 * conditions.co_cpu_util
            throttle = self._env.thermal.throttle_slowdown(sustained_power)
            if throttle > 1.0:
                estimate = device.estimate_compute(
                    workload, target, compute_slowdown * throttle, memory_slowdown
                )

        communication = self._env.communication.estimate(
            model_size_mb=self._env.workload.model_size_mb,
            bandwidth_mbps=conditions.bandwidth_mbps,
        )
        # The radio front-end and modem of lower-tier platforms draw proportionally less
        # power, mirroring the tier-level platform power calibration of the compute side.
        communication_energy = communication.energy_j * device.spec.training_power_scale
        energy = DeviceEnergy(
            compute_j=estimate.energy_j,
            communication_j=communication_energy,
            idle_j=0.0,
        )
        return DeviceRoundOutcome(
            device_id=device.device_id,
            target=target,
            compute_time_s=estimate.time_s,
            communication_time_s=communication.total_time_s,
            energy=energy,
        )

    # ------------------------------------------------------------------ execution
    def execute(
        self, decision: SelectionDecision, conditions: dict[int, RoundConditions]
    ) -> RoundExecution:
        """Execute the round: evaluate every selected device, apply the straggler cutoff,
        and account idle energy for non-selected devices."""
        if not decision.participants:
            raise SimulationError("a round needs at least one selected participant")
        outcomes: dict[int, DeviceRoundOutcome] = {}
        for device_id in decision.participants:
            device = self._env.fleet[device_id]
            target = decision.target_for(device_id, device.default_target())
            condition = conditions.get(device_id, RoundConditions())
            outcomes[device_id] = self.estimate_device(device, target, condition)

        times = np.array([outcome.total_time_s for outcome in outcomes.values()])
        median_time = float(np.median(times))
        deadline = self._straggler_cutoff * median_time if median_time > 0 else float(times.max())

        final_outcomes: dict[int, DeviceRoundOutcome] = {}
        retained_times: list[float] = []
        for device_id, outcome in outcomes.items():
            dropped = outcome.total_time_s > deadline
            if dropped:
                # The server closes the round at the deadline; the straggler aborts, so it
                # only spends energy up to the deadline (scaled proportionally).
                truncation = deadline / outcome.total_time_s
                final_outcomes[device_id] = DeviceRoundOutcome(
                    device_id=device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s * truncation,
                    communication_time_s=outcome.communication_time_s * truncation,
                    energy=DeviceEnergy(
                        compute_j=outcome.energy.compute_j * truncation,
                        communication_j=outcome.energy.communication_j * truncation,
                        idle_j=outcome.energy.idle_j,
                    ),
                    dropped=True,
                )
            else:
                final_outcomes[device_id] = outcome
                retained_times.append(outcome.total_time_s)

        round_time = max(retained_times) if retained_times else deadline

        energy_account = RoundEnergyAccount()
        selected_ids = set(decision.participants)
        for device in self._env.fleet:
            if device.device_id in selected_ids:
                outcome = final_outcomes[device.device_id]
                # Participants that finish before the round closes stay awake (wakelock,
                # radio connected) waiting for the aggregated model, at awake power.
                waiting_time = max(0.0, round_time - min(outcome.total_time_s, round_time))
                energy_with_wait = DeviceEnergy(
                    compute_j=outcome.energy.compute_j,
                    communication_j=outcome.energy.communication_j,
                    idle_j=device.awake_power() * waiting_time,
                )
                final_outcomes[device.device_id] = DeviceRoundOutcome(
                    device_id=outcome.device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s,
                    communication_time_s=outcome.communication_time_s,
                    energy=energy_with_wait,
                    dropped=outcome.dropped,
                )
                energy_account.record(device.device_id, energy_with_wait)
            else:
                energy_account.record(
                    device.device_id,
                    DeviceEnergy(idle_j=device.idle_power() * round_time),
                )
        return RoundExecution(
            outcomes=final_outcomes, round_time_s=round_time, energy=energy_account
        )
