"""Round execution engine: per-device compute/communication time, energy and stragglers.

Two execution paths share the same physical models:

* the scalar path (:meth:`RoundEngine.estimate_device` / :meth:`RoundEngine.execute`)
  walks :class:`~repro.devices.device.MobileDevice` objects one at a time and is kept as
  the readable reference implementation;
* the vectorised path (:meth:`RoundEngine.estimate_batch` /
  :meth:`RoundEngine.execute_batch`) evaluates the whole selection as numpy array
  expressions over the environment's :class:`~repro.devices.fleet_arrays.FleetArrays`
  snapshot, which is what makes thousand-device fleets simulate in constant Python time.

Equivalence tests pin the batched path to the scalar reference within 1e-9.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.devices.device import ExecutionTarget, MobileDevice, RoundConditions
from repro.devices.energy import DeviceEnergy, RoundEnergyAccount
from repro.devices.fleet_arrays import (
    PROC_CPU,
    PROC_GPU,
    PROCESSOR_CODES,
    RoundConditionsArrays,
)
from repro.devices.performance import (
    ACHIEVABLE_BANDWIDTH_FRACTION,
    ACHIEVABLE_COMPUTE_FRACTION,
    ComputeWorkload,
)
from repro.devices.power import (
    DVFS_POWER_EXPONENT,
    STATIC_POWER_FRACTION,
    busy_power_at_frequency,
)
from repro.dynamics.faults import DeviceFault, FaultDraw
from repro.exceptions import SimulationError
from repro.sim.context import SelectionDecision
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.results import BatchRoundExecution, DeviceRoundOutcome, RoundExecution

#: A selected device whose round time exceeds this multiple of the median participant's
#: round time is treated as a severe straggler and excluded from the aggregation, mirroring
#: the FedAvg deployment behaviour the paper describes (Sections 2.2 and 6.2).
STRAGGLER_CUTOFF_FACTOR = 2.5

#: Additional sustained power (W) contributed by a fully busy co-runner, fed into the
#: thermal throttling model alongside the training power draw.
CO_RUNNER_POWER_WATT = 1.5


def straggler_deadline(times: np.ndarray, cutoff: float) -> float:
    """Round deadline implied by the straggler cutoff for the given outcome times.

    The deadline is ``cutoff`` times the median participant time.  When the median is
    zero the cutoff is undefined: if some participants still take time, the slowest one
    sets the deadline (nobody is dropped); if *every* outcome time is zero — empty
    shards and instant links — there is no straggler structure at all, so the deadline
    is infinite rather than the degenerate ``0.0`` that would truncate by ``0/0``.
    """
    median_time = float(np.median(times))
    if median_time > 0:
        return cutoff * median_time
    max_time = float(times.max())
    if max_time > 0:
        return max_time
    return math.inf


@dataclass(frozen=True)
class BatchEstimates:
    """Vectorised per-participant round estimates (aligned on the selection order)."""

    compute_time_s: np.ndarray
    communication_time_s: np.ndarray
    compute_j: np.ndarray
    communication_j: np.ndarray
    utilization: np.ndarray

    @property
    def total_time_s(self) -> np.ndarray:
        """Compute plus communication time per participant."""
        return self.compute_time_s + self.communication_time_s


class RoundEngine:
    """Executes the system side of one aggregation round for a given selection decision."""

    def __init__(
        self, environment: EdgeCloudEnvironment, straggler_cutoff: float = STRAGGLER_CUTOFF_FACTOR
    ) -> None:
        if straggler_cutoff <= 1.0:
            raise SimulationError("straggler_cutoff must be > 1.0")
        self._env = environment
        self._straggler_cutoff = straggler_cutoff

    # ------------------------------------------------------------------ estimation
    def device_round_workload(self, device: MobileDevice) -> ComputeWorkload:
        """Local-training computational demand of one device for the current job."""
        params = self._env.global_params
        return ComputeWorkload.for_round(
            flops_per_sample=self._env.workload.flops_per_sample,
            bytes_per_sample=self._env.workload.bytes_per_sample,
            num_samples=device.num_local_samples,
            batch_size=params.batch_size,
            local_epochs=params.local_epochs,
        )

    def estimate_device(
        self,
        device: MobileDevice,
        target: ExecutionTarget,
        conditions: RoundConditions,
    ) -> DeviceRoundOutcome:
        """Predict one selected device's time and energy for the round.

        Interference from co-running applications slows the selected processor, sustained
        power above the thermal budget adds throttling, and the sampled bandwidth determines
        communication time and radio energy.  This is the scalar reference implementation;
        :meth:`estimate_batch` computes the same quantities for a whole selection at once.
        """
        workload = self.device_round_workload(device)
        slowdown = self._env.slowdown
        capability = device.spec.processor("cpu").peak_gflops
        compute_slowdown = slowdown.compute_slowdown(
            conditions.co_cpu_util, conditions.co_mem_util, target.processor, capability
        )
        memory_slowdown = slowdown.memory_slowdown(
            conditions.co_cpu_util, conditions.co_mem_util, target.processor, capability
        )
        estimate = device.estimate_compute(workload, target, compute_slowdown, memory_slowdown)

        # Thermal throttling: sustained power above the chassis budget slows the CPU further.
        if target.processor == "cpu" and estimate.time_s > 0:
            spec = device.spec.processor(target.processor)
            sustained_power = busy_power_at_frequency(
                spec, target.vf_step, estimate.utilization, device.spec.training_power_scale
            ) + CO_RUNNER_POWER_WATT * conditions.co_cpu_util
            throttle = self._env.thermal.throttle_slowdown(sustained_power)
            if throttle > 1.0:
                estimate = device.estimate_compute(
                    workload, target, compute_slowdown * throttle, memory_slowdown
                )

        communication = self._env.communication.estimate(
            model_size_mb=self._env.workload.model_size_mb,
            bandwidth_mbps=conditions.bandwidth_mbps,
        )
        # The radio front-end and modem of lower-tier platforms draw proportionally less
        # power, mirroring the tier-level platform power calibration of the compute side.
        communication_energy = communication.energy_j * device.spec.training_power_scale
        energy = DeviceEnergy(
            compute_j=estimate.energy_j,
            communication_j=communication_energy,
            idle_j=0.0,
        )
        return DeviceRoundOutcome(
            device_id=device.device_id,
            target=target,
            compute_time_s=estimate.time_s,
            communication_time_s=communication.total_time_s,
            energy=energy,
        )

    def estimate_batch(
        self,
        rows: np.ndarray,
        processors: np.ndarray,
        vf_steps: np.ndarray,
        conditions: RoundConditionsArrays,
    ) -> BatchEstimates:
        """Vectorised :meth:`estimate_device` for one device subset.

        Parameters
        ----------
        rows:
            Fleet rows (indices into the environment's ``fleet_arrays``) to evaluate.
        processors / vf_steps:
            Per-row execution target as processor codes (:data:`PROC_CPU` /
            :data:`PROC_GPU`) and V-F step indices.
        conditions:
            Runtime conditions aligned on ``rows``.
        """
        arrays = self._env.fleet_arrays
        workload = self._env.workload
        params = self._env.global_params
        batch_size = params.batch_size

        # Workload aggregation (ComputeWorkload.for_round, vectorised over shard sizes).
        num_samples = arrays.num_samples[rows]
        batches_per_epoch = (num_samples + batch_size - 1) // batch_size
        processed = batches_per_epoch * batch_size * params.local_epochs
        flops = workload.flops_per_sample * processed
        memory_bytes = workload.bytes_per_sample * processed

        # Interference slowdowns for the selected targets.
        gpu_mask = processors == PROC_GPU
        capability = arrays.cpu_capability_gflops[rows]
        compute_slowdown = self._env.slowdown.compute_slowdown_batch(
            conditions.co_cpu_util, conditions.co_mem_util, gpu_mask, capability
        )
        memory_slowdown = self._env.slowdown.memory_slowdown_batch(
            conditions.co_cpu_util, conditions.co_mem_util, gpu_mask, capability
        )

        # Roofline time model (TrainingTimeModel, vectorised).
        peak_gflops = arrays.peak_gflops[processors, rows]
        mem_bandwidth = arrays.mem_bandwidth_gbs[processors, rows]
        saturation = arrays.saturation_batch[processors, rows]
        rel_f = arrays.relative_frequency(processors, vf_steps, rows)
        efficiency = np.where(
            batch_size >= saturation, 1.0, (batch_size / saturation) ** 0.75
        )
        gflops = (
            ACHIEVABLE_COMPUTE_FRACTION * peak_gflops * rel_f * efficiency / compute_slowdown
        )
        bandwidth = ACHIEVABLE_BANDWIDTH_FRACTION * mem_bandwidth / memory_slowdown
        compute_time = flops / (gflops * 1e9)
        memory_time = memory_bytes / (bandwidth * 1e9)
        time_s = compute_time + memory_time

        # Utilisation and busy power are computed without interference slowdowns,
        # mirroring TrainingTimeModel.utilization and busy_power_at_frequency.
        clean_gflops = ACHIEVABLE_COMPUTE_FRACTION * peak_gflops * rel_f * efficiency
        clean_bandwidth = ACHIEVABLE_BANDWIDTH_FRACTION * mem_bandwidth
        clean_compute_time = flops / (clean_gflops * 1e9)
        clean_memory_time = memory_bytes / (clean_bandwidth * 1e9)
        clean_total = clean_compute_time + clean_memory_time
        utilization = np.where(
            clean_total > 0,
            np.minimum(
                1.0,
                (clean_compute_time + 0.5 * clean_memory_time)
                / np.where(clean_total > 0, clean_total, 1.0),
            ),
            0.0,
        )
        peak_power = arrays.peak_power_watt[processors, rows]
        static_power = STATIC_POWER_FRACTION * peak_power
        dynamic_power = (peak_power - static_power) * rel_f**DVFS_POWER_EXPONENT * utilization
        power_scale = arrays.training_power_scale[rows]
        power = power_scale * (static_power + dynamic_power)

        # Thermal throttling stretches the compute term of CPU targets whose sustained
        # power (training plus co-runner) exceeds the chassis budget.
        sustained_power = power + CO_RUNNER_POWER_WATT * conditions.co_cpu_util
        throttle = self._env.thermal.throttle_slowdown_batch(sustained_power)
        throttled = (~gpu_mask) & (time_s > 0) & (throttle > 1.0)
        final_compute_slowdown = np.where(throttled, compute_slowdown * throttle, compute_slowdown)
        final_gflops = (
            ACHIEVABLE_COMPUTE_FRACTION * peak_gflops * rel_f * efficiency
            / final_compute_slowdown
        )
        final_compute_time = flops / (final_gflops * 1e9)
        final_time_s = final_compute_time + memory_time
        compute_j = power * final_time_s

        # Communication time and radio energy, scaled by the tier power calibration.
        upload_time, download_time, radio_energy = self._env.communication.estimate_batch(
            model_size_mb=workload.model_size_mb, bandwidth_mbps=conditions.bandwidth_mbps
        )
        communication_time = upload_time + download_time
        communication_j = radio_energy * power_scale

        return BatchEstimates(
            compute_time_s=final_time_s,
            communication_time_s=communication_time,
            compute_j=compute_j,
            communication_j=communication_j,
            utilization=utilization,
        )

    # ------------------------------------------------------------------ execution
    def _participant_conditions(
        self,
        decision: SelectionDecision,
        conditions: Mapping[int, RoundConditions] | RoundConditionsArrays,
        rows: np.ndarray,
    ) -> RoundConditionsArrays:
        if isinstance(conditions, RoundConditionsArrays):
            if len(conditions) != len(self._env.fleet_arrays):
                raise SimulationError(
                    "fleet-wide condition arrays must cover every device in the fleet"
                )
            return conditions.take(rows)
        return RoundConditionsArrays.from_mapping(decision.participants, conditions)

    def _decision_targets(
        self, decision: SelectionDecision, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        arrays = self._env.fleet_arrays
        processors = np.full(len(rows), PROC_CPU, dtype=np.int64)
        vf_steps = arrays.default_vf_steps()[rows].copy()
        if decision.targets:
            for i, device_id in enumerate(decision.participants):
                target = decision.targets.get(device_id)
                if target is not None:
                    processors[i] = PROCESSOR_CODES[target.processor]
                    vf_steps[i] = target.vf_step
        return processors, vf_steps

    def _check_selection_online(self, rows: np.ndarray, online_mask: np.ndarray) -> None:
        if len(online_mask) != len(self._env.fleet_arrays):
            raise SimulationError("online_mask must cover every device in the fleet")
        offline = ~np.asarray(online_mask, dtype=bool)[rows]
        if offline.any():
            arrays = self._env.fleet_arrays
            offline_ids = [int(arrays.device_ids[row]) for row in rows[offline]]
            raise SimulationError(
                f"selected devices {offline_ids[:5]} are offline this round; policies "
                "must select from the online candidates only"
            )

    def execute_batch(
        self,
        decision: SelectionDecision,
        conditions: Mapping[int, RoundConditions] | RoundConditionsArrays,
        faults: FaultDraw | None = None,
        online_mask: np.ndarray | None = None,
    ) -> BatchRoundExecution:
        """Execute the round as array operations over the whole selection.

        Semantically identical to :meth:`execute` — same straggler cutoff, truncation,
        waiting and idle accounting — but returns a :class:`BatchRoundExecution` whose
        per-device quantities stay in numpy arrays.  ``conditions`` may be the usual
        per-device mapping or fleet-wide :class:`RoundConditionsArrays`.

        ``faults`` (aligned on the selection order) injects mid-round failures:
        slow-fail stragglers stretch a participant's compute time and energy before the
        straggler cutoff is applied, and upload failures waste the device's compute
        (capped at the deadline) without ever transmitting — the update is lost, marked
        in ``BatchRoundExecution.failed``.  ``online_mask`` (fleet order) rejects
        selections of offline devices and zeroes the idle energy of devices that are
        out of the population this round.  Both default to the static, fault-free
        behaviour bit-exactly.
        """
        if not decision.participants:
            raise SimulationError("a round needs at least one selected participant")
        arrays = self._env.fleet_arrays
        rows = arrays.rows_for(decision.participants)
        if online_mask is not None:
            self._check_selection_online(rows, online_mask)
        processors, vf_steps = self._decision_targets(decision, rows)
        participant_conditions = self._participant_conditions(decision, conditions, rows)
        estimates = self.estimate_batch(rows, processors, vf_steps, participant_conditions)

        compute_time_est = estimates.compute_time_s
        compute_j_est = estimates.compute_j
        failed = None
        if faults is not None:
            if len(faults) != len(rows):
                raise SimulationError("fault draw must align with the selection")
            if np.any(faults.compute_slowdown > 1.0):
                # Slow-fail stragglers: the transient condition stretches compute time
                # at unchanged power, so wasted energy grows with the slowdown.
                compute_time_est = compute_time_est * faults.compute_slowdown
                compute_j_est = compute_j_est * faults.compute_slowdown
            if faults.upload_failure.any():
                failed = faults.upload_failure

        times = compute_time_est + estimates.communication_time_s
        deadline = straggler_deadline(times, self._straggler_cutoff)
        dropped = times > deadline
        # The server closes the round at the deadline; stragglers abort, so they only
        # spend time and energy up to the deadline (scaled proportionally).
        truncation = np.where(dropped, deadline / np.where(dropped, times, 1.0), 1.0)
        compute_time = compute_time_est * truncation
        communication_time = estimates.communication_time_s * truncation
        compute_j = compute_j_est * truncation
        communication_j = estimates.communication_j * truncation
        if failed is not None:
            # Dropout before upload: local training ran (capped at the deadline) but
            # the update never reached the server — compute is wasted, radio unused.
            capped = np.minimum(compute_time_est, deadline)
            frac = np.divide(
                capped,
                compute_time_est,
                out=np.ones_like(capped),
                where=compute_time_est > 0,
            )
            compute_time = np.where(failed, capped, compute_time)
            compute_j = np.where(failed, compute_j_est * frac, compute_j)
            communication_time = np.where(failed, 0.0, communication_time)
            communication_j = np.where(failed, 0.0, communication_j)
        final_times = compute_time + communication_time

        excluded = dropped if failed is None else dropped | failed
        retained = ~excluded
        if retained.any():
            round_time = float(final_times[retained].max())
        elif math.isfinite(deadline):
            round_time = deadline
        else:  # Every participant failed with zero-time outcomes: nothing to wait for.
            round_time = float(final_times.max())

        # Participants that finish before the round closes stay awake (wakelock, radio
        # connected) waiting for the aggregated model, at awake power.
        waiting_time = np.maximum(0.0, round_time - np.minimum(final_times, round_time))
        waiting_j = arrays.awake_power_watt[rows] * waiting_time
        if failed is not None:
            waiting_j = np.where(failed, 0.0, waiting_j)
        idle_j = arrays.idle_power_watt * round_time
        idle_j[rows] = 0.0
        if online_mask is not None:
            # Offline devices are unreachable (or churned away) — they are not idling
            # on behalf of this training job, so the global account excludes them.
            idle_j = np.where(np.asarray(online_mask, dtype=bool), idle_j, 0.0)

        return BatchRoundExecution(
            selected_ids=np.array(decision.participants, dtype=np.int64),
            processors=processors,
            vf_steps=vf_steps,
            compute_time_s=compute_time,
            communication_time_s=communication_time,
            compute_j=compute_j,
            communication_j=communication_j,
            waiting_j=waiting_j,
            dropped=dropped,
            round_time_s=round_time,
            fleet_device_ids=arrays.device_ids,
            idle_j=idle_j,
            failed=failed,  # BatchRoundExecution defaults None to all-False.
        )

    def execute(
        self,
        decision: SelectionDecision,
        conditions: Mapping[int, RoundConditions],
        faults: Mapping[int, DeviceFault] | None = None,
        online_mask: np.ndarray | None = None,
    ) -> RoundExecution:
        """Execute the round: evaluate every selected device, apply the straggler cutoff,
        and account idle energy for non-selected devices.

        ``faults`` / ``online_mask`` mirror :meth:`execute_batch`: slow-fail stragglers
        stretch compute before the cutoff, upload failures waste their compute without
        transmitting, and offline devices can neither be selected nor draw idle energy.
        """
        if not decision.participants:
            raise SimulationError("a round needs at least one selected participant")
        if online_mask is not None:
            rows = self._env.fleet_arrays.rows_for(decision.participants)
            self._check_selection_online(rows, online_mask)
        fault_of: Mapping[int, DeviceFault] = faults if faults is not None else {}
        outcomes: dict[int, DeviceRoundOutcome] = {}
        for device_id in decision.participants:
            device = self._env.fleet[device_id]
            target = decision.target_for(device_id, device.default_target())
            try:
                condition = conditions[device_id]
            except KeyError:
                raise SimulationError(
                    f"no round conditions for selected device {device_id}"
                ) from None
            outcome = self.estimate_device(device, target, condition)
            fault = fault_of.get(device_id)
            if fault is not None and fault.compute_slowdown > 1.0:
                outcome = DeviceRoundOutcome(
                    device_id=device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s * fault.compute_slowdown,
                    communication_time_s=outcome.communication_time_s,
                    energy=DeviceEnergy(
                        compute_j=outcome.energy.compute_j * fault.compute_slowdown,
                        communication_j=outcome.energy.communication_j,
                        idle_j=outcome.energy.idle_j,
                    ),
                )
            outcomes[device_id] = outcome

        times = np.array([outcome.total_time_s for outcome in outcomes.values()])
        deadline = straggler_deadline(times, self._straggler_cutoff)

        final_outcomes: dict[int, DeviceRoundOutcome] = {}
        retained_times: list[float] = []
        for device_id, outcome in outcomes.items():
            fault = fault_of.get(device_id)
            failed = bool(fault.upload_failure) if fault is not None else False
            dropped = outcome.total_time_s > deadline
            if failed:
                # Dropout before upload: local training ran (capped at the deadline)
                # but the update never reached the server.
                capped = min(outcome.compute_time_s, deadline)
                frac = capped / outcome.compute_time_s if outcome.compute_time_s > 0 else 1.0
                final_outcomes[device_id] = DeviceRoundOutcome(
                    device_id=device_id,
                    target=outcome.target,
                    compute_time_s=capped,
                    communication_time_s=0.0,
                    energy=DeviceEnergy(
                        compute_j=outcome.energy.compute_j * frac,
                        communication_j=0.0,
                        idle_j=outcome.energy.idle_j,
                    ),
                    dropped=dropped,
                    failed=True,
                )
            elif dropped:
                # The server closes the round at the deadline; the straggler aborts, so it
                # only spends energy up to the deadline (scaled proportionally).
                truncation = deadline / outcome.total_time_s
                final_outcomes[device_id] = DeviceRoundOutcome(
                    device_id=device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s * truncation,
                    communication_time_s=outcome.communication_time_s * truncation,
                    energy=DeviceEnergy(
                        compute_j=outcome.energy.compute_j * truncation,
                        communication_j=outcome.energy.communication_j * truncation,
                        idle_j=outcome.energy.idle_j,
                    ),
                    dropped=True,
                )
            else:
                final_outcomes[device_id] = outcome
                retained_times.append(outcome.total_time_s)

        if retained_times:
            round_time = max(retained_times)
        elif math.isfinite(deadline):
            round_time = deadline
        else:  # Every participant failed with zero-time outcomes: nothing to wait for.
            round_time = max(outcome.total_time_s for outcome in final_outcomes.values())

        energy_account = RoundEnergyAccount()
        selected_ids = set(decision.participants)
        online = (
            None if online_mask is None else np.asarray(online_mask, dtype=bool)
        )
        for row, device in enumerate(self._env.fleet):
            if device.device_id in selected_ids:
                outcome = final_outcomes[device.device_id]
                # Participants that finish before the round closes stay awake (wakelock,
                # radio connected) waiting for the aggregated model, at awake power.
                # Mid-round failures are dead — they wait for nothing.
                waiting_time = (
                    0.0
                    if outcome.failed
                    else max(0.0, round_time - min(outcome.total_time_s, round_time))
                )
                energy_with_wait = DeviceEnergy(
                    compute_j=outcome.energy.compute_j,
                    communication_j=outcome.energy.communication_j,
                    idle_j=device.awake_power() * waiting_time,
                )
                final_outcomes[device.device_id] = DeviceRoundOutcome(
                    device_id=outcome.device_id,
                    target=outcome.target,
                    compute_time_s=outcome.compute_time_s,
                    communication_time_s=outcome.communication_time_s,
                    energy=energy_with_wait,
                    dropped=outcome.dropped,
                    failed=outcome.failed,
                )
                energy_account.record(device.device_id, energy_with_wait)
            else:
                idle_j = (
                    0.0
                    if online is not None and not online[row]
                    else device.idle_power() * round_time
                )
                energy_account.record(device.device_id, DeviceEnergy(idle_j=idle_j))
        return RoundExecution(
            outcomes=final_outcomes, round_time_s=round_time, energy=energy_account
        )
