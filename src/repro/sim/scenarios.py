"""Scenario builders: one-call construction of evaluation environments and backends.

The paper's evaluation sweeps four axes — workload, FL global parameters (S1-S4), runtime
variance (no variance / on-device interference / weak network), and data heterogeneity
(Ideal IID / Non-IID(M %)).  A :class:`ScenarioSpec` names a point in that space and
:func:`build_environment` turns it into a ready-to-run
:class:`~repro.sim.environment.EdgeCloudEnvironment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import GlobalParams, SimulationConfig
from repro.data.partition import DataDistribution
from repro.fl.aggregation import get_aggregator
from repro.fl.server import SurrogateTrainingBackend, TrainingBackend
from repro.interference.corunner import InterferenceGenerator, InterferenceScenario
from repro.network.bandwidth import BandwidthModel, NetworkScenario
from repro.sim.environment import EdgeCloudEnvironment


@dataclass(frozen=True)
class ScenarioSpec:
    """A named point in the paper's evaluation space."""

    workload: str = "cnn-mnist"
    setting: str = "S3"
    interference: str = "none"
    network: str = "stable"
    data_distribution: str = "iid"
    num_devices: int = 200
    max_rounds: int = 200
    seed: int = 0
    aggregator: str = "fedavg"
    tier_counts: dict[str, int] | None = field(default=None)

    def simulation_config(self) -> SimulationConfig:
        """Build the :class:`SimulationConfig` for this scenario."""
        if self.tier_counts is not None:
            return SimulationConfig(
                num_devices=self.num_devices,
                tier_counts=dict(self.tier_counts),
                max_rounds=self.max_rounds,
                seed=self.seed,
            )
        if self.num_devices == 200:
            return SimulationConfig(max_rounds=self.max_rounds, seed=self.seed)
        config = SimulationConfig.small(num_devices=self.num_devices, seed=self.seed)
        return SimulationConfig(
            num_devices=config.num_devices,
            tier_counts=config.tier_counts,
            max_rounds=self.max_rounds,
            seed=self.seed,
        )

    def global_params(self) -> GlobalParams:
        """Build the FL global parameters for this scenario."""
        return GlobalParams.from_setting(self.setting)


def build_environment(spec: ScenarioSpec) -> EdgeCloudEnvironment:
    """Construct the edge-cloud environment described by ``spec``."""
    config = spec.simulation_config()
    return EdgeCloudEnvironment(
        config=config,
        global_params=spec.global_params(),
        workload=spec.workload,
        data_distribution=DataDistribution.from_name(spec.data_distribution),
        interference=InterferenceGenerator(InterferenceScenario.from_name(spec.interference)),
        bandwidth=BandwidthModel(NetworkScenario.from_name(spec.network)),
        rng=np.random.default_rng(spec.seed),
    )


def build_surrogate_backend(
    environment: EdgeCloudEnvironment, aggregator: str = "fedavg", seed: int | None = None
) -> TrainingBackend:
    """Construct the surrogate training backend for an environment."""
    rng_seed = seed if seed is not None else environment.config.seed + 1
    return SurrogateTrainingBackend(
        workload=environment.workload,
        data_profiles=environment.data_profiles,
        aggregator=get_aggregator(aggregator),
        global_params=environment.global_params,
        rng=np.random.default_rng(rng_seed),
    )
