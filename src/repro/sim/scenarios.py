"""Scenario builders: one-call construction of evaluation environments and backends.

The paper's evaluation sweeps four axes — workload, FL global parameters (S1-S4), runtime
variance (no variance / on-device interference / weak network), and data heterogeneity
(Ideal IID / Non-IID(M %)).  A :class:`ScenarioSpec` names a point in that space and
:func:`build_environment` turns it into a ready-to-run
:class:`~repro.sim.environment.EdgeCloudEnvironment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import GlobalParams, SimulationConfig
from repro.data.partition import DataDistribution
from repro.dynamics import DynamicsSpec
from repro.fl.aggregation import get_aggregator
from repro.fl.server import SurrogateTrainingBackend, TrainingBackend
from repro.interference.corunner import InterferenceGenerator, InterferenceScenario
from repro.network.bandwidth import BandwidthModel, NetworkScenario
from repro.registry import SCENARIOS
from repro.sim.environment import EdgeCloudEnvironment


@dataclass(frozen=True)
class ScenarioSpec:
    """A named point in the paper's evaluation space."""

    workload: str = "cnn-mnist"
    setting: str = "S3"
    interference: str = "none"
    network: str = "stable"
    data_distribution: str = "iid"
    num_devices: int = 200
    max_rounds: int = 200
    seed: int = 0
    aggregator: str = "fedavg"
    tier_counts: dict[str, int] | None = field(default=None)
    #: Draw round conditions with the fleet-wide vectorised samplers.  Same distribution
    #: as the scalar samplers but a different RNG stream, so seeded trajectories are not
    #: comparable across the two modes; large-fleet presets enable it because scalar
    #: sampling cost grows linearly with the fleet.
    vectorized_sampling: bool = False
    # ------------------------------------------------------------------ fleet dynamics
    #: Availability process name (``repro.registry.AVAILABILITY``): ``always-on``,
    #: ``bernoulli``, ``markov``, ``diurnal`` or ``trace``.
    availability: str = "always-on"
    #: Per-round probability of an enrolled device leaving the population (churn).
    churn_rate: float = 0.0
    #: Per-round probability of a departed device re-enrolling.
    rejoin_rate: float = 0.5
    #: Per-round probability of a selected participant failing before upload.
    dropout_rate: float = 0.0
    #: Per-round probability of a selected participant slow-failing (straggler fault).
    slow_fault_rate: float = 0.0
    #: Compute-time stretch applied to slow-failing participants.
    slow_fault_factor: float = 4.0
    #: Per-tier overrides of ``dropout_rate`` (e.g. ``{"low": 0.2}``).
    tier_dropout_rates: dict[str, float] | None = field(default=None)

    def dynamics_spec(self) -> DynamicsSpec:
        """The declarative fleet-dynamics configuration of this scenario."""
        return DynamicsSpec(
            availability=self.availability,
            churn_rate=self.churn_rate,
            rejoin_rate=self.rejoin_rate,
            dropout_rate=self.dropout_rate,
            slow_fault_rate=self.slow_fault_rate,
            slow_fault_factor=self.slow_fault_factor,
            tier_dropout_rates=(
                dict(self.tier_dropout_rates) if self.tier_dropout_rates else None
            ),
        )

    def simulation_config(self) -> SimulationConfig:
        """Build the :class:`SimulationConfig` for this scenario."""
        if self.tier_counts is not None:
            return SimulationConfig(
                num_devices=self.num_devices,
                tier_counts=dict(self.tier_counts),
                max_rounds=self.max_rounds,
                seed=self.seed,
            )
        if self.num_devices == 200:
            return SimulationConfig(max_rounds=self.max_rounds, seed=self.seed)
        config = SimulationConfig.small(num_devices=self.num_devices, seed=self.seed)
        return SimulationConfig(
            num_devices=config.num_devices,
            tier_counts=config.tier_counts,
            max_rounds=self.max_rounds,
            seed=self.seed,
        )

    def global_params(self) -> GlobalParams:
        """Build the FL global parameters for this scenario."""
        return GlobalParams.from_setting(self.setting)


def build_environment(spec: ScenarioSpec) -> EdgeCloudEnvironment:
    """Construct the edge-cloud environment described by ``spec``."""
    config = spec.simulation_config()
    return EdgeCloudEnvironment(
        config=config,
        global_params=spec.global_params(),
        workload=spec.workload,
        data_distribution=DataDistribution.from_name(spec.data_distribution),
        interference=InterferenceGenerator(InterferenceScenario.from_name(spec.interference)),
        bandwidth=BandwidthModel(NetworkScenario.from_name(spec.network)),
        rng=np.random.default_rng(spec.seed),
        vectorized_sampling=spec.vectorized_sampling,
        # None for the trivial (always-on, fault-free) spec, keeping the static-fleet
        # fast path and its seeded trajectories untouched.
        dynamics=spec.dynamics_spec().build(),
    )


def get_scenario_preset(name: str) -> ScenarioSpec:
    """Resolve a registered scenario preset into its :class:`ScenarioSpec`."""
    return SCENARIOS.create(name)  # type: ignore[return-value]


SCENARIOS.add(
    "paper-200",
    lambda: ScenarioSpec(),
    aliases=("paper",),
    summary="The paper's 200-device testbed (30/70/100 high/mid/low, S3, no variance).",
)
SCENARIOS.add(
    "fleet-1k",
    lambda: ScenarioSpec(
        num_devices=1_000,
        interference="moderate",
        network="variable",
        vectorized_sampling=True,
    ),
    aliases=("1k",),
    summary=(
        "Large-fleet preset: 1,000 devices under moderate interference and variable "
        "network, with fleet-wide vectorised condition sampling."
    ),
)
SCENARIOS.add(
    "fleet-10k",
    lambda: ScenarioSpec(
        num_devices=10_000,
        interference="moderate",
        network="variable",
        vectorized_sampling=True,
    ),
    aliases=("10k",),
    summary=(
        "Large-fleet preset: 10,000 devices under moderate interference and variable "
        "network, with fleet-wide vectorised condition sampling."
    ),
)
SCENARIOS.add(
    "diurnal-1k",
    lambda: ScenarioSpec(
        num_devices=1_000,
        interference="moderate",
        network="variable",
        vectorized_sampling=True,
        availability="diurnal",
    ),
    aliases=("diurnal",),
    summary=(
        "1,000 devices whose availability follows a day/night sine wave with "
        "per-device phase offsets; selection policies see only the online fleet."
    ),
)
SCENARIOS.add(
    "flaky-fleet",
    lambda: ScenarioSpec(
        interference="moderate",
        network="variable",
        availability="bernoulli",
        dropout_rate=0.08,
        slow_fault_rate=0.05,
        tier_dropout_rates={"low": 0.15},
    ),
    aliases=("flaky",),
    summary=(
        "The paper's 200-device testbed made unreliable: Bernoulli availability plus "
        "mid-round upload failures (8 %, 15 % on low-end) and slow-fail stragglers."
    ),
)
SCENARIOS.add(
    "churn-heavy",
    lambda: ScenarioSpec(
        churn_rate=0.04,
        rejoin_rate=0.3,
        dropout_rate=0.02,
    ),
    aliases=("churn",),
    summary=(
        "200 devices with heavy enrolment churn (4 % leave, 30 % rejoin per round) "
        "and light mid-round dropout."
    ),
)


def build_surrogate_backend(
    environment: EdgeCloudEnvironment, aggregator: str = "fedavg", seed: int | None = None
) -> TrainingBackend:
    """Construct the surrogate training backend for an environment."""
    rng_seed = seed if seed is not None else environment.config.seed + 1
    return SurrogateTrainingBackend(
        workload=environment.workload,
        data_profiles=environment.data_profiles,
        aggregator=get_aggregator(aggregator),
        global_params=environment.global_params,
        rng=np.random.default_rng(rng_seed),
    )
