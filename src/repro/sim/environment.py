"""The edge-cloud execution environment: fleet + network + interference + data."""

from __future__ import annotations

import numpy as np

from repro.config import GlobalParams, SimulationConfig
from repro.data.partition import DataDistribution
from repro.data.profiles import DeviceDataProfile, synthesize_data_profiles
from repro.devices.device import RoundConditions
from repro.devices.fleet import Fleet, build_fleet
from repro.devices.fleet_arrays import TIER_ORDER, FleetArrays, RoundConditionsArrays
from repro.dynamics import DYNAMICS_SEED_OFFSET, FleetDynamics
from repro.dynamics.faults import FaultDraw
from repro.exceptions import SimulationError
from repro.interference.corunner import InterferenceGenerator, InterferenceScenario
from repro.interference.slowdown import SlowdownModel
from repro.interference.thermal import ThermalModel
from repro.network.bandwidth import BandwidthModel, NetworkScenario
from repro.network.channel import CommunicationModel
from repro.nn.workloads import WorkloadProfile, get_workload_profile


class EdgeCloudEnvironment:
    """All state shared by a federated-learning training job in the emulated edge cloud."""

    def __init__(
        self,
        config: SimulationConfig,
        global_params: GlobalParams,
        workload: WorkloadProfile | str,
        fleet: Fleet | None = None,
        data_profiles: dict[int, DeviceDataProfile] | None = None,
        data_distribution: DataDistribution | str = DataDistribution.IID,
        interference: InterferenceGenerator | None = None,
        bandwidth: BandwidthModel | None = None,
        slowdown: SlowdownModel | None = None,
        thermal: ThermalModel | None = None,
        communication: CommunicationModel | None = None,
        rng: np.random.Generator | None = None,
        vectorized_sampling: bool = False,
        dynamics: FleetDynamics | None = None,
    ) -> None:
        self.config = config
        self.global_params = global_params
        self.vectorized_sampling = vectorized_sampling
        self.workload = get_workload_profile(workload)
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.fleet = fleet if fleet is not None else build_fleet(config, self.rng)
        self.data_distribution = DataDistribution.from_name(data_distribution)
        if data_profiles is None:
            num_classes = self.workload.num_classes
            if num_classes is None:
                raise SimulationError(
                    f"workload {self.workload.name!r} does not declare num_classes; "
                    "set WorkloadProfile.num_classes (required to synthesise data "
                    "profiles) or pass explicit data_profiles"
                )
            data_profiles = synthesize_data_profiles(
                device_ids=self.fleet.device_ids,
                distribution=self.data_distribution,
                num_classes=num_classes,
                samples_per_device=self.workload.samples_per_device,
                rng=self.rng,
            )
        missing = set(self.fleet.device_ids) - set(data_profiles)
        if missing:
            raise SimulationError(f"data profiles missing for devices {sorted(missing)[:5]}...")
        self.data_profiles = data_profiles
        for device in self.fleet:
            device.assign_samples(self.data_profiles[device.device_id].num_samples)
        self.interference = interference or InterferenceGenerator(InterferenceScenario.NONE)
        self.bandwidth = bandwidth or BandwidthModel(NetworkScenario.STABLE)
        self.slowdown = slowdown or SlowdownModel()
        self.thermal = thermal or ThermalModel()
        self.communication = communication or CommunicationModel()
        self._fleet_arrays: FleetArrays | None = None
        self._data_quality_array: np.ndarray | None = None
        self._data_samples_array: np.ndarray | None = None
        self._class_fraction_array: np.ndarray | None = None
        if global_params.num_participants > len(self.fleet):
            raise SimulationError(
                f"K={global_params.num_participants} exceeds fleet size {len(self.fleet)}"
            )
        # The dynamics RNG stream is dedicated (seed + DYNAMICS_SEED_OFFSET) so that
        # enabling availability/churn/faults never perturbs the condition-sampling
        # stream above — static-fleet seeded trajectories stay bit-exact.
        self.dynamics = dynamics
        if dynamics is not None:
            tier_index = {tier: code for code, tier in enumerate(TIER_ORDER)}
            dynamics.bind(
                num_devices=len(self.fleet),
                tier_codes=np.array(
                    [tier_index[device.tier] for device in self.fleet], dtype=np.int64
                ),
                device_ids=np.array(self.fleet.device_ids, dtype=np.int64),
                seed=config.seed + DYNAMICS_SEED_OFFSET,
            )

    @property
    def fleet_arrays(self) -> FleetArrays:
        """Struct-of-arrays snapshot of the fleet, built lazily after shard assignment.

        The snapshot backs the vectorised round engine; it is taken on first access so
        that the data partitioner has already assigned per-device sample counts.
        """
        if self._fleet_arrays is None:
            self._fleet_arrays = FleetArrays.from_fleet(self.fleet)
        return self._fleet_arrays

    @property
    def data_quality_array(self) -> np.ndarray:
        """Per-device ``data_quality`` in fleet order (profiles are fixed per job)."""
        if self._data_quality_array is None:
            self._data_quality_array = np.array(
                [self.data_profiles[device_id].data_quality for device_id in self.fleet.device_ids],
                dtype=np.float64,
            )
        return self._data_quality_array

    @property
    def data_samples_array(self) -> np.ndarray:
        """Per-device profile sample counts in fleet order."""
        if self._data_samples_array is None:
            self._data_samples_array = np.array(
                [self.data_profiles[device_id].num_samples for device_id in self.fleet.device_ids],
                dtype=np.int64,
            )
        return self._data_samples_array

    @property
    def class_fraction_array(self) -> np.ndarray:
        """Per-device class-coverage fractions in fleet order (fixed per job).

        Backs the vectorised AutoFL state encoder, which bins data coverage for the
        whole fleet in one array op instead of touching profile objects per round.
        """
        if self._class_fraction_array is None:
            self._class_fraction_array = np.array(
                [
                    self.data_profiles[device_id].class_fraction
                    for device_id in self.fleet.device_ids
                ],
                dtype=np.float64,
            )
        return self._class_fraction_array

    def data_profile(self, device_id: int) -> DeviceDataProfile:
        """Data profile of one device."""
        try:
            return self.data_profiles[device_id]
        except KeyError as exc:
            raise SimulationError(f"no data profile for device {device_id}") from exc

    def sample_condition_arrays(self) -> RoundConditionsArrays:
        """Sample every device's runtime conditions for one round, fleet-wide.

        Co-runner activity and network bandwidth are redrawn every round, which is the
        stochastic runtime variance the paper emphasises (Section 2.2).  With
        ``vectorized_sampling`` enabled the draws are single array operations whose cost
        is independent of Python-level fleet size (the stream differs from the scalar
        sampler, so seeded trajectories are not comparable across the two modes); the
        default scalar sampler preserves the per-device draw order of seeded experiments.
        """
        num_devices = len(self.fleet)
        if self.vectorized_sampling:
            co_cpu_util, co_mem_util = self.interference.sample_arrays(self.rng, num_devices)
            bandwidths = self.bandwidth.sample(self.rng, num_devices)
            return RoundConditionsArrays(
                co_cpu_util=co_cpu_util, co_mem_util=co_mem_util, bandwidth_mbps=bandwidths
            )
        interference_samples = self.interference.sample(self.rng, num_devices)
        bandwidths = self.bandwidth.sample(self.rng, num_devices)
        return RoundConditionsArrays(
            co_cpu_util=np.array(
                [sample.co_cpu_util for sample in interference_samples], dtype=np.float64
            ),
            co_mem_util=np.array(
                [sample.co_mem_util for sample in interference_samples], dtype=np.float64
            ),
            bandwidth_mbps=bandwidths,
        )

    def sample_round_conditions(self) -> dict[int, RoundConditions]:
        """Sample one round's conditions as the per-device mapping policies observe."""
        return self.sample_condition_arrays().to_mapping(self.fleet.device_ids)

    # ------------------------------------------------------------------ fleet dynamics
    def round_online_mask(self, round_index: int) -> np.ndarray | None:
        """The round's online-device mask in fleet order (``None`` for a static fleet).

        Must be called once per round in round order — the availability and churn
        processes behind it are stateful.
        """
        if self.dynamics is None:
            return None
        return self.dynamics.online_mask(round_index)

    def sample_faults(self, participants: list[int], round_index: int) -> FaultDraw | None:
        """Draw mid-round faults for a selection (``None`` when faults are disabled)."""
        if self.dynamics is None or not self.dynamics.has_faults:
            return None
        rows = self.fleet_arrays.rows_for(participants)
        return self.dynamics.sample_faults(round_index, rows)
