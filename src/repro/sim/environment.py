"""The edge-cloud execution environment: fleet + network + interference + data."""

from __future__ import annotations

import numpy as np

from repro.config import GlobalParams, SimulationConfig
from repro.data.partition import DataDistribution
from repro.data.profiles import DeviceDataProfile, synthesize_data_profiles
from repro.devices.device import RoundConditions
from repro.devices.fleet import Fleet, build_fleet
from repro.exceptions import SimulationError
from repro.interference.corunner import InterferenceGenerator, InterferenceScenario
from repro.interference.slowdown import SlowdownModel
from repro.interference.thermal import ThermalModel
from repro.network.bandwidth import BandwidthModel, NetworkScenario
from repro.network.channel import CommunicationModel
from repro.nn.workloads import WorkloadProfile, get_workload_profile

#: Number of classes assumed per workload when synthesising data profiles.
_WORKLOAD_NUM_CLASSES: dict[str, int] = {
    "cnn-mnist": 10,
    "lstm-shakespeare": 40,
    "mobilenet-imagenet": 100,
}


class EdgeCloudEnvironment:
    """All state shared by a federated-learning training job in the emulated edge cloud."""

    def __init__(
        self,
        config: SimulationConfig,
        global_params: GlobalParams,
        workload: WorkloadProfile | str,
        fleet: Fleet | None = None,
        data_profiles: dict[int, DeviceDataProfile] | None = None,
        data_distribution: DataDistribution | str = DataDistribution.IID,
        interference: InterferenceGenerator | None = None,
        bandwidth: BandwidthModel | None = None,
        slowdown: SlowdownModel | None = None,
        thermal: ThermalModel | None = None,
        communication: CommunicationModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config
        self.global_params = global_params
        self.workload = get_workload_profile(workload)
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.fleet = fleet if fleet is not None else build_fleet(config, self.rng)
        self.data_distribution = DataDistribution.from_name(data_distribution)
        if data_profiles is None:
            num_classes = _WORKLOAD_NUM_CLASSES.get(self.workload.name, 10)
            data_profiles = synthesize_data_profiles(
                device_ids=self.fleet.device_ids,
                distribution=self.data_distribution,
                num_classes=num_classes,
                samples_per_device=self.workload.samples_per_device,
                rng=self.rng,
            )
        missing = set(self.fleet.device_ids) - set(data_profiles)
        if missing:
            raise SimulationError(f"data profiles missing for devices {sorted(missing)[:5]}...")
        self.data_profiles = data_profiles
        for device in self.fleet:
            device.assign_samples(self.data_profiles[device.device_id].num_samples)
        self.interference = interference or InterferenceGenerator(InterferenceScenario.NONE)
        self.bandwidth = bandwidth or BandwidthModel(NetworkScenario.STABLE)
        self.slowdown = slowdown or SlowdownModel()
        self.thermal = thermal or ThermalModel()
        self.communication = communication or CommunicationModel()
        if global_params.num_participants > len(self.fleet):
            raise SimulationError(
                f"K={global_params.num_participants} exceeds fleet size {len(self.fleet)}"
            )

    def data_profile(self, device_id: int) -> DeviceDataProfile:
        """Data profile of one device."""
        try:
            return self.data_profiles[device_id]
        except KeyError as exc:
            raise SimulationError(f"no data profile for device {device_id}") from exc

    def sample_round_conditions(self) -> dict[int, RoundConditions]:
        """Sample every device's runtime conditions for one aggregation round.

        Co-runner activity and network bandwidth are redrawn every round, which is the
        stochastic runtime variance the paper emphasises (Section 2.2).
        """
        device_ids = self.fleet.device_ids
        interference_samples = self.interference.sample(self.rng, len(device_ids))
        bandwidths = self.bandwidth.sample(self.rng, len(device_ids))
        return {
            device_id: RoundConditions(
                co_cpu_util=sample.co_cpu_util,
                co_mem_util=sample.co_mem_util,
                bandwidth_mbps=float(bandwidth),
            )
            for device_id, sample, bandwidth in zip(device_ids, interference_samples, bandwidths)
        }
