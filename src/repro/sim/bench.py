"""Round-engine throughput benchmark backing ``python -m repro bench``.

The benchmark pits the scalar reference path (:meth:`RoundEngine.execute`) against the
vectorised path (:meth:`RoundEngine.execute_batch`) on identical selections and
conditions at several fleet sizes, reports rounds/sec for both, and writes the
measurements to a JSON file so the speedup of every perf change lands in the recorded
trajectory of the repository.
"""

from __future__ import annotations

import json
import math
import platform
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.config import GlobalParams, SimulationConfig
from repro.exceptions import ConfigurationError
from repro.interference.corunner import InterferenceGenerator, InterferenceScenario
from repro.network.bandwidth import BandwidthModel, NetworkScenario
from repro.sim.context import SelectionDecision
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.round_engine import RoundEngine

#: Default fleet sizes timed by ``python -m repro bench``.
DEFAULT_BENCH_SIZES: tuple[int, ...] = (200, 1_000, 10_000)

#: Default output path of the benchmark record.
DEFAULT_BENCH_OUTPUT = "BENCH_roundengine.json"


@dataclass(frozen=True)
class BenchSizeResult:
    """Timed comparison of the two engine paths at one fleet size."""

    num_devices: int
    num_participants: int
    scalar_rounds_per_s: float
    batch_rounds_per_s: float
    speedup: float
    scalar_repeats: int
    batch_repeats: int


def _git(*args: str) -> str | None:
    try:
        result = subprocess.run(
            ["git", "-C", str(Path(__file__).resolve().parent), *args],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return result.stdout.strip() if result.returncode == 0 else None


def _git_sha() -> str | None:
    """The repository HEAD commit (``-dirty`` suffixed when the tree has local
    changes, so bench numbers are never attributed to code that did not run), or
    ``None`` outside a git checkout."""
    sha = _git("rev-parse", "HEAD")
    if not sha:
        return None
    status = _git("status", "--porcelain")
    return f"{sha}-dirty" if status else sha


def bench_provenance() -> dict:
    """Interpreter, library and machine provenance recorded with every bench run.

    Throughput numbers are only comparable between records whose provenance matches;
    the trajectory file keeps it so regressions are never chased across machines.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": _git_sha(),
    }


def _participants_for(num_devices: int) -> int:
    """Selection size K used at a fleet size (10 % of the fleet, at least the paper's 20)."""
    return max(20, num_devices // 10)


def _build_environment(
    num_devices: int, seed: int, workload: str, interference: str, network: str
) -> EdgeCloudEnvironment:
    config = SimulationConfig.small(num_devices=num_devices, seed=seed)
    return EdgeCloudEnvironment(
        config=config,
        global_params=GlobalParams(
            batch_size=16, local_epochs=5, num_participants=_participants_for(num_devices)
        ),
        workload=workload,
        interference=InterferenceGenerator(InterferenceScenario.from_name(interference)),
        bandwidth=BandwidthModel(NetworkScenario.from_name(network)),
        rng=np.random.default_rng(seed),
        vectorized_sampling=True,
    )


def _time_rounds(
    run_round: Callable[[], object], repeats: int | None, target_seconds: float = 0.4
) -> tuple[float, int]:
    """Time ``run_round`` and return (rounds per second, rounds timed).

    Each round is timed individually and the *fastest* round is reported — the same
    convention as ``timeit`` — because the minimum is the measurement least polluted by
    scheduler preemption and cache eviction noise.  With ``repeats=None`` the round
    count is calibrated from one warm-up call so the whole measurement lasts roughly
    ``target_seconds`` regardless of fleet size.
    """
    if repeats is not None and repeats < 1:
        raise ConfigurationError("bench repeats must be >= 1")
    start = time.perf_counter()
    run_round()  # Warm-up: first call pays lazy snapshot/cache construction.
    warmup_elapsed = time.perf_counter() - start
    if repeats is None:
        repeats = int(np.clip(target_seconds / max(warmup_elapsed, 1e-6), 5, 1_000))
    best_elapsed = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        run_round()
        best_elapsed = min(best_elapsed, time.perf_counter() - start)
    return 1.0 / max(best_elapsed, 1e-9), repeats


def bench_fleet_size(
    num_devices: int,
    seed: int = 0,
    workload: str = "cnn-mnist",
    interference: str = "moderate",
    network: str = "variable",
    repeats: int | None = None,
) -> BenchSizeResult:
    """Time scalar vs batched round execution at one fleet size.

    Both paths execute the same selection under the same sampled conditions, so the
    comparison isolates the engine implementation.
    """
    if num_devices < 20:
        raise ConfigurationError("bench fleet sizes below 20 devices are not meaningful")
    environment = _build_environment(num_devices, seed, workload, interference, network)
    engine = RoundEngine(environment)
    condition_arrays = environment.sample_condition_arrays()
    conditions = condition_arrays.to_mapping(environment.fleet.device_ids)
    decision = SelectionDecision(
        participants=environment.fleet.device_ids[: _participants_for(num_devices)]
    )
    # The scalar path calibrates the repeat count and the batch path reuses it, so both
    # minima are drawn from the same number of samples and the speedup ratio is unbiased.
    scalar_rps, scalar_repeats = _time_rounds(
        lambda: engine.execute(decision, conditions), repeats
    )
    batch_rps, batch_repeats = _time_rounds(
        lambda: engine.execute_batch(decision, condition_arrays), scalar_repeats
    )
    return BenchSizeResult(
        num_devices=num_devices,
        num_participants=_participants_for(num_devices),
        scalar_rounds_per_s=scalar_rps,
        batch_rounds_per_s=batch_rps,
        speedup=batch_rps / scalar_rps,
        scalar_repeats=scalar_repeats,
        batch_repeats=batch_repeats,
    )


def run_roundengine_bench(
    sizes: tuple[int, ...] = DEFAULT_BENCH_SIZES,
    seed: int = 0,
    workload: str = "cnn-mnist",
    interference: str = "moderate",
    network: str = "variable",
    repeats: int | None = None,
    output: str | Path | None = DEFAULT_BENCH_OUTPUT,
) -> dict:
    """Run the round-engine benchmark over ``sizes`` and write the JSON record."""
    if not sizes:
        raise ConfigurationError("bench needs at least one fleet size")
    results = [
        bench_fleet_size(
            num_devices=size,
            seed=seed,
            workload=workload,
            interference=interference,
            network=network,
            repeats=repeats,
        )
        for size in sizes
    ]
    record = {
        "benchmark": "roundengine",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "provenance": bench_provenance(),
        "workload": workload,
        "interference": interference,
        "network": network,
        "seed": seed,
        "results": [asdict(result) for result in results],
    }
    if output is not None:
        Path(output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return record


def format_bench_record(record: dict) -> str:
    """Human-readable table of a benchmark record for the CLI."""
    header = f"{'devices':>8}  {'K':>5}  {'scalar r/s':>11}  {'batch r/s':>11}  {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for row in record["results"]:
        lines.append(
            f"{row['num_devices']:>8}  {row['num_participants']:>5}  "
            f"{row['scalar_rounds_per_s']:>11.2f}  {row['batch_rounds_per_s']:>11.2f}  "
            f"{row['speedup']:>7.1f}x"
        )
    return "\n".join(lines)
