"""Round-engine throughput benchmark backing ``python -m repro bench``.

The benchmark pits the scalar reference path (:meth:`RoundEngine.execute`) against the
vectorised path (:meth:`RoundEngine.execute_batch`) on identical selections and
conditions at several fleet sizes, reports rounds/sec for both, and writes the
measurements to a JSON file so the speedup of every perf change lands in the recorded
trajectory of the repository.
"""

from __future__ import annotations

import json
import math
import platform
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.config import GlobalParams, SimulationConfig
from repro.core.selection import RandomPolicy
from repro.exceptions import ConfigurationError
from repro.interference.corunner import InterferenceGenerator, InterferenceScenario
from repro.network.bandwidth import BandwidthModel, NetworkScenario
from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.round_engine import RoundEngine

#: Default fleet sizes timed by ``python -m repro bench``.
DEFAULT_BENCH_SIZES: tuple[int, ...] = (200, 1_000, 10_000, 50_000, 100_000)

#: Default replicate count of the seed-replication benchmark (0 disables it).
DEFAULT_BENCH_REPLICATES = 8

#: Default rounds each replicate runs in the seed-replication benchmark.
DEFAULT_REPLICATION_ROUNDS = 40

#: Default fleet size of the seed-replication benchmark.
DEFAULT_REPLICATION_DEVICES = 1_000

#: Default output path of the benchmark record.
DEFAULT_BENCH_OUTPUT = "BENCH_roundengine.json"


@dataclass(frozen=True)
class BenchSizeResult:
    """Timed comparison of the two engine paths at one fleet size.

    ``control_plane_round_s`` is the per-round cost of the control plane (condition
    sampling plus participant selection) and ``energy_math_round_s`` the per-round cost
    of the batched energy/latency math, so regressions are attributable to a phase
    instead of just a total.
    """

    num_devices: int
    num_participants: int
    scalar_rounds_per_s: float
    batch_rounds_per_s: float
    speedup: float
    scalar_repeats: int
    batch_repeats: int
    control_plane_round_s: float
    energy_math_round_s: float


@dataclass(frozen=True)
class ReplicationBenchResult:
    """Wall-clock comparison of N serial seed runs vs one replicated run."""

    num_devices: int
    num_participants: int
    replicates: int
    rounds: int
    serial_wall_s: float
    replicated_wall_s: float
    speedup: float


def _git(*args: str) -> str | None:
    try:
        result = subprocess.run(
            ["git", "-C", str(Path(__file__).resolve().parent), *args],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return result.stdout.strip() if result.returncode == 0 else None


def _git_sha() -> str | None:
    """The repository HEAD commit (``-dirty`` suffixed when the tree has local
    changes, so bench numbers are never attributed to code that did not run), or
    ``None`` outside a git checkout."""
    sha = _git("rev-parse", "HEAD")
    if not sha:
        return None
    status = _git("status", "--porcelain")
    return f"{sha}-dirty" if status else sha


def bench_provenance() -> dict:
    """Interpreter, library and machine provenance recorded with every bench run.

    Throughput numbers are only comparable between records whose provenance matches;
    the trajectory file keeps it so regressions are never chased across machines.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": _git_sha(),
    }


def _participants_for(num_devices: int) -> int:
    """Selection size K used at a fleet size.

    10 % of the fleet, floored at the paper's 20 and capped at 100: deployed FL keeps K
    roughly constant while the population grows, so capping isolates how the engine
    scales with *fleet* size instead of conflating it with a growing selection.
    """
    return min(100, max(20, num_devices // 10))


def _build_environment(
    num_devices: int, seed: int, workload: str, interference: str, network: str
) -> EdgeCloudEnvironment:
    config = SimulationConfig.small(num_devices=num_devices, seed=seed)
    return EdgeCloudEnvironment(
        config=config,
        global_params=GlobalParams(
            batch_size=16, local_epochs=5, num_participants=_participants_for(num_devices)
        ),
        workload=workload,
        interference=InterferenceGenerator(InterferenceScenario.from_name(interference)),
        bandwidth=BandwidthModel(NetworkScenario.from_name(network)),
        rng=np.random.default_rng(seed),
        vectorized_sampling=True,
    )


def _time_rounds(
    run_round: Callable[[], object], repeats: int | None, target_seconds: float = 0.4
) -> tuple[float, int]:
    """Time ``run_round`` and return (rounds per second, rounds timed).

    Each round is timed individually and the *fastest* round is reported — the same
    convention as ``timeit`` — because the minimum is the measurement least polluted by
    scheduler preemption and cache eviction noise.  With ``repeats=None`` the round
    count is calibrated from one warm-up call so the whole measurement lasts roughly
    ``target_seconds`` regardless of fleet size.
    """
    if repeats is not None and repeats < 1:
        raise ConfigurationError("bench repeats must be >= 1")
    start = time.perf_counter()
    run_round()  # Warm-up: first call pays lazy snapshot/cache construction.
    warmup_elapsed = time.perf_counter() - start
    if repeats is None:
        repeats = int(np.clip(target_seconds / max(warmup_elapsed, 1e-6), 5, 1_000))
    best_elapsed = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        run_round()
        best_elapsed = min(best_elapsed, time.perf_counter() - start)
    return 1.0 / max(best_elapsed, 1e-9), repeats


def bench_fleet_size(
    num_devices: int,
    seed: int = 0,
    workload: str = "cnn-mnist",
    interference: str = "moderate",
    network: str = "variable",
    repeats: int | None = None,
) -> BenchSizeResult:
    """Time scalar vs batched round execution at one fleet size.

    Both paths execute the same selection under the same sampled conditions, so the
    comparison isolates the engine implementation.
    """
    if num_devices < 20:
        raise ConfigurationError("bench fleet sizes below 20 devices are not meaningful")
    environment = _build_environment(num_devices, seed, workload, interference, network)
    engine = RoundEngine(environment)
    condition_arrays = environment.sample_condition_arrays()
    conditions = condition_arrays.to_mapping(environment.fleet.device_ids)
    decision = SelectionDecision(
        participants=environment.fleet.device_ids[: _participants_for(num_devices)]
    )
    # Each path calibrates its own repeat count (unless pinned): at large fleets the
    # scalar path affords only a handful of samples per time budget, and reusing that
    # count would leave the sub-millisecond batch minimum under-sampled and noisy.
    scalar_rps, scalar_repeats = _time_rounds(
        lambda: engine.execute(decision, conditions), repeats
    )
    batch_rps, batch_repeats = _time_rounds(
        lambda: engine.execute_batch(decision, condition_arrays), repeats
    )
    # Phase profile: the control plane (condition sampling + selection) timed against
    # the batched energy math, so a regression names its phase.
    policy = RandomPolicy(rng=np.random.default_rng(seed + 10_000))

    def control_plane_round() -> None:
        arrays = environment.sample_condition_arrays()
        ctx = RoundContext(
            round_index=0,
            environment=environment,
            conditions=arrays.lazy_mapping(environment.fleet.device_ids),
            accuracy=0.5,
            condition_arrays=arrays,
            online_mask=None,
        )
        policy.select(ctx)

    control_rps, _ = _time_rounds(control_plane_round, repeats)
    return BenchSizeResult(
        num_devices=num_devices,
        num_participants=_participants_for(num_devices),
        scalar_rounds_per_s=scalar_rps,
        batch_rounds_per_s=batch_rps,
        speedup=batch_rps / scalar_rps,
        scalar_repeats=scalar_repeats,
        batch_repeats=batch_repeats,
        control_plane_round_s=1.0 / control_rps,
        energy_math_round_s=1.0 / batch_rps,
    )


def bench_replication(
    num_devices: int = DEFAULT_REPLICATION_DEVICES,
    replicates: int = DEFAULT_BENCH_REPLICATES,
    rounds: int = DEFAULT_REPLICATION_ROUNDS,
    seed: int = 0,
    workload: str = "cnn-mnist",
) -> ReplicationBenchResult:
    """Time N serial seed runs against one replicated run of the same scenario.

    Both paths produce byte-identical trajectories (that equivalence is pinned by the
    validation tests); this measures only the wall-clock win of executing the round
    physics as one stacked ``[replicates, participants]`` engine call.
    """
    if replicates < 2:
        raise ConfigurationError("replication bench needs at least 2 replicates")
    if rounds < 1:
        raise ConfigurationError("replication bench needs at least 1 round")
    # Local import: the scenario/runner layer sits above the engine this module times.
    from repro.sim.runner import FLSimulation
    from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend

    def build(replica_seed: int) -> FLSimulation:
        spec = ScenarioSpec(
            workload=workload,
            num_devices=num_devices,
            max_rounds=rounds,
            seed=replica_seed,
            # Array-native condition draws on both paths, like the fleet-size bench;
            # the scalar per-device sampler would otherwise dominate both timings.
            vectorized_sampling=True,
        )
        env = build_environment(spec)
        # Materialise the environment's one-time array snapshot up front: it is part
        # of scenario construction (excluded from both timings), not round execution.
        env.fleet_arrays
        backend = build_surrogate_backend(env, aggregator=spec.aggregator)
        policy = RandomPolicy(rng=np.random.default_rng(replica_seed + 10_000))
        return FLSimulation(
            env, policy, backend, max_rounds=rounds, stop_at_convergence=False
        )

    # Environment construction is excluded from both timings: it is identical work on
    # both paths and is paid once per seed either way.
    serial_sims = [build(seed + index) for index in range(replicates)]
    start = time.perf_counter()
    for sim in serial_sims:
        sim.run()
    serial_wall = time.perf_counter() - start
    replicated_sims = [build(seed + index) for index in range(replicates)]
    start = time.perf_counter()
    FLSimulation.run_replicated(replicated_sims)
    replicated_wall = time.perf_counter() - start
    return ReplicationBenchResult(
        num_devices=num_devices,
        num_participants=serial_sims[0].environment.global_params.num_participants,
        replicates=replicates,
        rounds=rounds,
        serial_wall_s=serial_wall,
        replicated_wall_s=replicated_wall,
        speedup=serial_wall / max(replicated_wall, 1e-9),
    )


def run_roundengine_bench(
    sizes: tuple[int, ...] = DEFAULT_BENCH_SIZES,
    seed: int = 0,
    workload: str = "cnn-mnist",
    interference: str = "moderate",
    network: str = "variable",
    repeats: int | None = None,
    output: str | Path | None = DEFAULT_BENCH_OUTPUT,
    replicates: int = DEFAULT_BENCH_REPLICATES,
    replication_rounds: int = DEFAULT_REPLICATION_ROUNDS,
) -> dict:
    """Run the round-engine benchmark over ``sizes`` and write the JSON record.

    With ``replicates >= 2`` the record also carries the seed-replication measurement
    (N serial runs vs one replicated run); ``replicates=0`` skips it.
    """
    if not sizes:
        raise ConfigurationError("bench needs at least one fleet size")
    results = [
        bench_fleet_size(
            num_devices=size,
            seed=seed,
            workload=workload,
            interference=interference,
            network=network,
            repeats=repeats,
        )
        for size in sizes
    ]
    record = {
        "benchmark": "roundengine",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "provenance": bench_provenance(),
        "workload": workload,
        "interference": interference,
        "network": network,
        "seed": seed,
        "results": [asdict(result) for result in results],
    }
    if replicates:
        record["replication"] = asdict(
            bench_replication(
                replicates=replicates,
                rounds=replication_rounds,
                seed=seed,
                workload=workload,
            )
        )
    if output is not None:
        Path(output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return record


def format_bench_record(record: dict) -> str:
    """Human-readable table of a benchmark record for the CLI."""
    header = (
        f"{'devices':>8}  {'K':>5}  {'scalar r/s':>11}  {'batch r/s':>11}  {'speedup':>8}"
        f"  {'ctrl ms/rd':>10}  {'math ms/rd':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in record["results"]:
        control_ms = row.get("control_plane_round_s")
        math_ms = row.get("energy_math_round_s")
        lines.append(
            f"{row['num_devices']:>8}  {row['num_participants']:>5}  "
            f"{row['scalar_rounds_per_s']:>11.2f}  {row['batch_rounds_per_s']:>11.2f}  "
            f"{row['speedup']:>7.1f}x  "
            f"{'' if control_ms is None else format(control_ms * 1e3, '10.3f')}  "
            f"{'' if math_ms is None else format(math_ms * 1e3, '10.3f')}"
        )
    replication = record.get("replication")
    if replication:
        lines.append(
            f"\nreplication @ {replication['num_devices']} devices: "
            f"{replication['replicates']} seeds x {replication['rounds']} rounds — "
            f"serial {replication['serial_wall_s']:.2f}s, "
            f"replicated {replication['replicated_wall_s']:.2f}s "
            f"({replication['speedup']:.1f}x)"
        )
    return "\n".join(lines)
