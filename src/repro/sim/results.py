"""Result containers for round execution and full simulations."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.devices.device import ExecutionTarget
from repro.devices.energy import DeviceEnergy, RoundEnergyAccount
from repro.devices.fleet_arrays import PROCESSOR_NAMES
from repro.exceptions import SimulationError
from repro.fl.metrics import EfficiencySummary


@dataclass(frozen=True)
class DeviceRoundOutcome:
    """What one selected device did during one aggregation round."""

    device_id: int
    target: ExecutionTarget
    compute_time_s: float
    communication_time_s: float
    energy: DeviceEnergy
    dropped: bool = False
    #: True when the device failed mid-round (fault injection) rather than merely
    #: exceeding the straggler deadline; its compute energy was spent for nothing.
    failed: bool = False

    @property
    def total_time_s(self) -> float:
        """Compute plus communication time of the device."""
        return self.compute_time_s + self.communication_time_s


@dataclass
class RoundExecution:
    """System-level outcome of one aggregation round (before model aggregation)."""

    outcomes: dict[int, DeviceRoundOutcome]
    round_time_s: float
    energy: RoundEnergyAccount

    @property
    def participant_ids(self) -> list[int]:
        """Devices whose updates made it into the aggregation (stragglers and
        mid-round failures excluded)."""
        return sorted(
            device_id
            for device_id, outcome in self.outcomes.items()
            if not outcome.dropped and not outcome.failed
        )

    @property
    def dropped_ids(self) -> list[int]:
        """Selected devices whose updates were dropped as stragglers (failures aside)."""
        return sorted(
            device_id
            for device_id, outcome in self.outcomes.items()
            if outcome.dropped and not outcome.failed
        )

    @property
    def failed_ids(self) -> list[int]:
        """Selected devices that failed mid-round (dropout before upload)."""
        return sorted(
            device_id for device_id, outcome in self.outcomes.items() if outcome.failed
        )

    @property
    def participant_energy_j(self) -> float:
        """Energy drawn by the selected devices this round (compute, radio and waiting)."""
        return sum(outcome.energy.total_j for outcome in self.outcomes.values())


@dataclass
class BatchRoundExecution:
    """Array-based outcome of one aggregation round from the vectorised engine.

    Every per-participant array is aligned on the selection order of the decision that
    produced it; ``idle_j`` is fleet-length (fleet order) and zero at participant rows.
    The container exposes the same aggregate quantities as :class:`RoundExecution`
    without materialising per-device Python objects — :meth:`to_execution` converts to
    the scalar representation when a consumer (e.g. a learning policy's feedback hook)
    needs one.
    """

    selected_ids: np.ndarray
    processors: np.ndarray
    vf_steps: np.ndarray
    compute_time_s: np.ndarray
    communication_time_s: np.ndarray
    compute_j: np.ndarray
    communication_j: np.ndarray
    waiting_j: np.ndarray
    dropped: np.ndarray
    round_time_s: float
    fleet_device_ids: np.ndarray
    idle_j: np.ndarray
    #: Mid-round failures (fault injection); defaults to all-False for static fleets.
    failed: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.failed is None:
            self.failed = np.zeros(len(self.selected_ids), dtype=bool)

    @property
    def total_time_s(self) -> np.ndarray:
        """Per-participant compute plus communication time (truncated for stragglers)."""
        return self.compute_time_s + self.communication_time_s

    @property
    def participant_ids(self) -> list[int]:
        """Devices whose updates made it into the aggregation (stragglers and
        mid-round failures excluded)."""
        return sorted(
            int(device_id) for device_id in self.selected_ids[~(self.dropped | self.failed)]
        )

    @property
    def dropped_ids(self) -> list[int]:
        """Selected devices whose updates were dropped as stragglers (failures aside)."""
        return sorted(
            int(device_id) for device_id in self.selected_ids[self.dropped & ~self.failed]
        )

    @property
    def failed_ids(self) -> list[int]:
        """Selected devices that failed mid-round (dropout before upload)."""
        return sorted(int(device_id) for device_id in self.selected_ids[self.failed])

    @property
    def participant_energy_j(self) -> float:
        """Energy drawn by the selected devices this round (compute, radio and waiting)."""
        return float(np.sum(self.compute_j + self.communication_j + self.waiting_j))

    @property
    def idle_energy_j(self) -> float:
        """Total idle energy of the non-selected devices."""
        return float(np.sum(self.idle_j))

    @property
    def global_energy_j(self) -> float:
        """Population-wide energy of the round (participants plus idling devices)."""
        return self.participant_energy_j + self.idle_energy_j

    def to_execution(self) -> "RoundExecution":
        """Materialise the scalar :class:`RoundExecution` equivalent of this round."""
        outcomes: dict[int, DeviceRoundOutcome] = {}
        for i, device_id in enumerate(self.selected_ids):
            device_id = int(device_id)
            energy = DeviceEnergy(
                compute_j=float(self.compute_j[i]),
                communication_j=float(self.communication_j[i]),
                idle_j=float(self.waiting_j[i]),
            )
            outcomes[device_id] = DeviceRoundOutcome(
                device_id=device_id,
                target=ExecutionTarget(
                    processor=PROCESSOR_NAMES[int(self.processors[i])],
                    vf_step=int(self.vf_steps[i]),
                ),
                compute_time_s=float(self.compute_time_s[i]),
                communication_time_s=float(self.communication_time_s[i]),
                energy=energy,
                dropped=bool(self.dropped[i]),
                failed=bool(self.failed[i]),
            )
        account = RoundEnergyAccount()
        for row, device_id in enumerate(self.fleet_device_ids):
            device_id = int(device_id)
            if device_id in outcomes:
                account.record(device_id, outcomes[device_id].energy)
            else:
                account.record(device_id, DeviceEnergy(idle_j=float(self.idle_j[row])))
        return RoundExecution(
            outcomes=outcomes, round_time_s=self.round_time_s, energy=account
        )


@dataclass(frozen=True)
class RoundRecord:
    """Full record of one aggregation round: selection, execution and training outcome."""

    round_index: int
    selected_ids: tuple[int, ...]
    dropped_ids: tuple[int, ...]
    targets: dict[int, ExecutionTarget]
    round_time_s: float
    participant_energy_j: float
    global_energy_j: float
    accuracy: float
    accuracy_improvement: float
    #: Selected devices that failed mid-round (fault injection; disjoint from
    #: ``dropped_ids``, which holds the straggler drops).
    failed_ids: tuple[int, ...] = ()
    #: Devices online when the round started (``None`` for a static fleet).
    num_online: int | None = None

    @property
    def num_aggregated(self) -> int:
        """Updates that made it into the aggregation this round."""
        return len(self.selected_ids) - len(self.dropped_ids) - len(self.failed_ids)

    def to_dict(self) -> dict:
        """JSON-serialisable payload of the record (execution targets flattened)."""
        payload = asdict(self)
        payload["targets"] = {
            str(device_id): asdict(target) for device_id, target in self.targets.items()
        }
        return payload


@dataclass
class SimulationResult:
    """Outcome of a complete simulated FL training job."""

    policy_name: str
    workload_name: str
    target_accuracy: float
    records: list[RoundRecord] = field(default_factory=list)
    converged_round: int | None = None

    def append(self, record: RoundRecord) -> None:
        """Append one round's record."""
        self.records.append(record)

    @property
    def num_rounds(self) -> int:
        """Number of executed rounds."""
        return len(self.records)

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last executed round."""
        if not self.records:
            raise SimulationError("simulation produced no rounds")
        return self.records[-1].accuracy

    @property
    def accuracy_history(self) -> list[float]:
        """Accuracy after every round."""
        return [record.accuracy for record in self.records]

    @property
    def total_time_s(self) -> float:
        """Wall-clock time of all executed rounds."""
        return sum(record.round_time_s for record in self.records)

    @property
    def total_participant_energy_j(self) -> float:
        """Total active energy of participants over all executed rounds."""
        return sum(record.participant_energy_j for record in self.records)

    @property
    def total_global_energy_j(self) -> float:
        """Total population-wide energy over all executed rounds."""
        return sum(record.global_energy_j for record in self.records)

    @property
    def mean_round_time_s(self) -> float:
        """Mean per-round time."""
        if not self.records:
            raise SimulationError("simulation produced no rounds")
        return float(np.mean([record.round_time_s for record in self.records]))

    # ------------------------------------------------------------------ fleet dynamics
    @property
    def total_straggler_drops(self) -> int:
        """Selected devices dropped at the straggler deadline, over all rounds."""
        return sum(len(record.dropped_ids) for record in self.records)

    @property
    def total_fault_failures(self) -> int:
        """Selected devices lost to mid-round failure injection, over all rounds."""
        return sum(len(record.failed_ids) for record in self.records)

    @property
    def online_history(self) -> list[int | None]:
        """Per-round online-device counts (``None`` entries for static-fleet rounds)."""
        return [record.num_online for record in self.records]

    @property
    def mean_num_online(self) -> float | None:
        """Mean online-device count over the rounds that recorded one."""
        counts = [record.num_online for record in self.records if record.num_online is not None]
        if not counts:
            return None
        return float(np.mean(counts))

    def _until_convergence(self) -> list[RoundRecord]:
        if self.converged_round is None:
            return self.records
        return [record for record in self.records if record.round_index <= self.converged_round]

    def summary(self) -> EfficiencySummary:
        """Aggregate efficiency metrics, computed up to the convergence round when reached."""
        if not self.records:
            raise SimulationError("simulation produced no rounds")
        effective = self._until_convergence()
        convergence_time = sum(record.round_time_s for record in effective)
        return EfficiencySummary(
            converged=self.converged_round is not None,
            rounds_executed=self.num_rounds,
            convergence_round=self.converged_round,
            convergence_time_s=convergence_time,
            total_time_s=self.total_time_s,
            final_accuracy=self.final_accuracy,
            participant_energy_j=sum(record.participant_energy_j for record in effective),
            global_energy_j=sum(record.global_energy_j for record in effective),
        )

    def selection_history(self) -> list[tuple[int, ...]]:
        """The selected device ids of every round (used for prediction-accuracy analysis)."""
        return [record.selected_ids for record in self.records]

    # ------------------------------------------------------------------ serialisation
    def to_dict(self) -> dict:
        """JSON-serialisable payload of the full trajectory (every round record)."""
        return {
            "policy_name": self.policy_name,
            "workload_name": self.workload_name,
            "target_accuracy": self.target_accuracy,
            "converged_round": self.converged_round,
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self) -> str:
        """Canonical JSON serialisation: key-sorted and whitespace-free, so two runs of
        the same seeded scenario are byte-identical exactly when their trajectories are."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
