"""Simulation runner: drives complete FL training jobs end to end."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

import numpy as np

from repro import telemetry
from repro.exceptions import SimulationError
from repro.fl.metrics import ConvergenceTracker
from repro.fl.server import RoundTrainingResult, TrainingBackend
from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.results import (
    BatchRoundExecution,
    RoundExecution,
    RoundRecord,
    SimulationResult,
)
from repro.sim.round_engine import RoundEngine


class SelectionPolicy(Protocol):
    """Structural interface every participant-selection policy implements.

    Policies live in :mod:`repro.core`; the simulator only relies on this protocol so that
    the simulator layer stays free of any dependency on the AutoFL implementation.
    """

    name: str

    def select(self, ctx: RoundContext) -> SelectionDecision:
        """Choose the round's participants and their execution targets."""
        ...

    def feedback(
        self,
        ctx: RoundContext,
        decision: SelectionDecision,
        execution: RoundExecution,
        training: RoundTrainingResult,
    ) -> None:
        """Receive the measured outcome of the round (used by learning policies)."""
        ...


class RoundObserver(Protocol):
    """Structural interface of a per-round observer hook.

    Observers receive every executed round *after* its record is assembled but before
    the simulation moves on — :mod:`repro.validation` plugs its invariant auditors in
    here, so any consumer (fuzzer, ``BatchRunner`` self-checks, ad-hoc debugging) can
    audit the raw :class:`BatchRoundExecution` without re-running the engine.
    """

    def __call__(
        self,
        round_index: int,
        batch: BatchRoundExecution,
        execution: RoundExecution,
        record: RoundRecord,
        online_mask: np.ndarray | None,
    ) -> None:
        """Observe one executed round."""
        ...


class FLSimulation:
    """One federated-learning training job under a given selection policy."""

    def __init__(
        self,
        environment: EdgeCloudEnvironment,
        policy: SelectionPolicy,
        backend: TrainingBackend,
        max_rounds: int | None = None,
        target_accuracy: float | None = None,
        stop_at_convergence: bool = True,
        round_observer: RoundObserver | None = None,
    ) -> None:
        self._env = environment
        self._policy = policy
        self._backend = backend
        self._round_observer = round_observer
        self._engine = RoundEngine(environment)
        self._max_rounds = max_rounds if max_rounds is not None else environment.config.max_rounds
        if self._max_rounds <= 0:
            raise SimulationError("max_rounds must be positive")
        target = (
            target_accuracy
            if target_accuracy is not None
            else min(environment.workload.target_accuracy, environment.config.target_accuracy)
        )
        self._tracker = ConvergenceTracker(target)
        self._stop_at_convergence = stop_at_convergence

    @property
    def environment(self) -> EdgeCloudEnvironment:
        """The environment this simulation runs in."""
        return self._env

    @property
    def policy(self) -> SelectionPolicy:
        """The participant-selection policy driving this simulation."""
        return self._policy

    @property
    def backend(self) -> TrainingBackend:
        """The training backend providing per-round accuracy."""
        return self._backend

    @property
    def replication_supported(self) -> bool:
        """Whether this job can ride the replicate axis of the batch engine.

        The replicated path skips the per-round feedback call and the observer hook,
        so it only applies to non-learning policies without a round observer.  Unknown
        policies (no ``uses_feedback`` attribute) are conservatively treated as
        learning.
        """
        return (
            not getattr(self._policy, "uses_feedback", True)
            and self._round_observer is None
        )

    @property
    def target_accuracy(self) -> float:
        """The accuracy threshold used to declare convergence."""
        return self._tracker.target_accuracy

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute a single aggregation round and return its record."""
        # The three spans mirror the bench phase names (control_plane / energy_math /
        # feedback) so trace profiles line up with BENCH_roundengine.json numbers.
        tracer = telemetry.get_tracer()
        with tracer.span("control_plane", category="engine", round=round_index):
            # Fleet dynamics first: who is reachable this round (None = static fleet).
            online_mask = self._env.round_online_mask(round_index)
            condition_arrays = self._env.sample_condition_arrays()
            # Lazy view: scalar policies see the usual per-device mapping, vectorised
            # ones read the arrays and never pay the O(N) object construction.
            conditions = condition_arrays.lazy_mapping(self._env.fleet.device_ids)
            ctx = RoundContext(
                round_index=round_index,
                environment=self._env,
                conditions=conditions,
                accuracy=self._backend.accuracy,
                condition_arrays=condition_arrays,
                online_mask=online_mask,
            )
            decision = self._policy.select(ctx)
        if not decision.participants:
            raise SimulationError(f"policy {self._policy.name!r} selected no participants")
        with tracer.span("energy_math", category="engine", round=round_index):
            # Mid-round faults are drawn after selection (the failure of a device that
            # was never picked is unobservable) from the dedicated dynamics RNG stream.
            faults = self._env.sample_faults(decision.participants, round_index)
            # The hot path is the vectorised engine; the scalar RoundExecution view is
            # materialised once per round for the policy feedback hooks and the record.
            batch = self._engine.execute_batch(
                decision, condition_arrays, faults=faults, online_mask=online_mask
            )
            execution = batch.to_execution()
        with tracer.span("feedback", category="engine", round=round_index):
            training = self._backend.run_round(execution.participant_ids)
            # Offer the outcome in array form first; policies with a vectorised
            # learning path (autofl-fast) handle it there and skip the scalar loop.
            feedback_batch = getattr(self._policy, "feedback_batch", None)
            handled = (
                bool(feedback_batch(ctx, decision, batch, training))
                if feedback_batch is not None
                else False
            )
            if not handled:
                self._policy.feedback(ctx, decision, execution, training)
        record = RoundRecord(
            round_index=round_index,
            selected_ids=tuple(sorted(decision.participants)),
            dropped_ids=tuple(execution.dropped_ids),
            targets=dict(decision.targets),
            round_time_s=execution.round_time_s,
            participant_energy_j=execution.participant_energy_j,
            global_energy_j=execution.energy.global_j,
            accuracy=training.accuracy,
            accuracy_improvement=training.accuracy_improvement,
            failed_ids=tuple(execution.failed_ids),
            num_online=None if online_mask is None else int(online_mask.sum()),
        )
        registry = telemetry.get_registry()
        if registry.enabled:
            policy_name = self._policy.name
            registry.counter(
                "repro_rounds_total", help="Aggregation rounds executed."
            ).inc(policy=policy_name)
            registry.counter(
                "repro_selected_devices_total", help="Devices selected across rounds."
            ).inc(len(record.selected_ids))
            registry.counter(
                "repro_straggler_drops_total", help="Devices dropped as stragglers."
            ).inc(len(record.dropped_ids))
            registry.counter(
                "repro_fault_failures_total", help="Mid-round device failures."
            ).inc(len(record.failed_ids))
            registry.histogram(
                "repro_round_time_s", help="Simulated wall-clock time per round."
            ).observe(record.round_time_s, policy=policy_name)
            registry.histogram(
                "repro_round_energy_j", help="Simulated global energy per round."
            ).observe(record.global_energy_j, policy=policy_name)
        if self._round_observer is not None:
            self._round_observer(
                round_index=round_index,
                batch=batch,
                execution=execution,
                record=record,
                online_mask=online_mask,
            )
        return record

    def run(self) -> SimulationResult:
        """Run rounds until convergence (or the round budget) and return the full result."""
        result = SimulationResult(
            policy_name=self._policy.name,
            workload_name=self._env.workload.name,
            target_accuracy=self._tracker.target_accuracy,
        )
        with telemetry.get_tracer().span(
            "simulation",
            category="engine",
            policy=self._policy.name,
            workload=self._env.workload.name,
        ):
            for round_index in range(self._max_rounds):
                record = self.run_round(round_index)
                result.append(record)
                if self._tracker.update(round_index, record.accuracy):
                    result.converged_round = self._tracker.converged_round
                    if self._stop_at_convergence:
                        break
        return result

    @classmethod
    def run_replicated(cls, simulations: Sequence["FLSimulation"]) -> list[SimulationResult]:
        """Run same-scenario, different-seed simulations through the replicate axis.

        Each replicate's result is byte-identical to running it alone via :meth:`run`;
        the per-round physics of all replicates executes as one stacked engine call.
        Every simulation must satisfy :attr:`replication_supported`.
        """
        from repro.sim.replicated import ReplicatedSimulation

        return ReplicatedSimulation(simulations).run()
