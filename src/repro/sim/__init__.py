"""Edge-cloud FL simulator: environment, round execution engine, runner and scenarios.

This subpackage replaces the paper's EC2-emulated 200-device testbed.  It combines the
device, network, interference and data substrates into an
:class:`~repro.sim.environment.EdgeCloudEnvironment`, executes aggregation rounds with the
:class:`~repro.sim.round_engine.RoundEngine` (per-device compute/communication time and
energy, straggler handling) and drives complete training jobs with
:class:`~repro.sim.runner.FLSimulation`.
"""

from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.results import (
    BatchRoundExecution,
    DeviceRoundOutcome,
    RoundExecution,
    RoundRecord,
    SimulationResult,
)
from repro.sim.round_engine import BatchEstimates, RoundEngine
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec, build_environment

__all__ = [
    "BatchEstimates",
    "BatchRoundExecution",
    "DeviceRoundOutcome",
    "EdgeCloudEnvironment",
    "FLSimulation",
    "RoundContext",
    "RoundEngine",
    "RoundExecution",
    "RoundRecord",
    "ScenarioSpec",
    "SelectionDecision",
    "SimulationResult",
    "build_environment",
]
