"""Round context and selection decision: the interface between simulator and policies."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.devices.device import ExecutionTarget, RoundConditions
from repro.devices.fleet_arrays import RoundConditionsArrays
from repro.exceptions import PolicyError

if TYPE_CHECKING:  # pragma: no cover - import only used for typing
    from repro.sim.environment import EdgeCloudEnvironment


@dataclass(frozen=True)
class RoundContext:
    """Everything a selection policy may observe at the start of an aggregation round.

    This mirrors the information AutoFL's server-side agent observes (paper Figure 7): the
    FL global configuration and workload (through ``environment``), the per-device runtime
    conditions collected by the FL protocol, and the current global-model accuracy.
    """

    round_index: int
    environment: "EdgeCloudEnvironment"
    conditions: Mapping[int, RoundConditions]
    accuracy: float
    #: Optional fleet-order array view of ``conditions`` — populated by the simulation
    #: runner so vectorised policies skip an O(N) per-round re-gather of the mapping.
    condition_arrays: RoundConditionsArrays | None = None
    #: Fleet-order boolean mask of the devices reachable this round, populated when the
    #: environment has fleet dynamics.  ``None`` means a static fleet (everyone online).
    #: Policies must select participants from the online candidates only.
    online_mask: np.ndarray | None = None

    @cached_property
    def _online_id_set(self) -> frozenset[int]:
        return frozenset(self.candidate_ids())

    def candidate_ids(self) -> list[int]:
        """Device ids a policy may select this round, in fleet order."""
        device_ids = self.environment.fleet.device_ids
        if self.online_mask is None:
            return device_ids
        return [
            device_id for device_id, online in zip(device_ids, self.online_mask) if online
        ]

    @cached_property
    def _candidate_id_array(self) -> np.ndarray:
        device_ids = self.environment.fleet_arrays.device_ids
        if self.online_mask is None:
            return device_ids
        return device_ids[np.asarray(self.online_mask, dtype=bool)]

    def candidate_id_array(self) -> np.ndarray:
        """Array view of :meth:`candidate_ids` (same ids, same fleet order).

        Cached per round and shared — callers must treat it as read-only.  Policies that
        draw with ``rng.choice`` get identical streams from the array and the list form,
        so switching is trajectory-neutral.
        """
        return self._candidate_id_array

    @property
    def num_candidates(self) -> int:
        """Number of selectable (online) devices this round."""
        if self.online_mask is None:
            return len(self.environment.fleet)
        return int(np.count_nonzero(self.online_mask))

    def is_online(self, device_id: int) -> bool:
        """Whether a device is reachable (and therefore selectable) this round."""
        if self.online_mask is None:
            return True
        return device_id in self._online_id_set

    def condition(self, device_id: int) -> RoundConditions:
        """Runtime conditions observed for one device this round."""
        try:
            return self.conditions[device_id]
        except KeyError as exc:
            raise PolicyError(f"no round conditions for device {device_id}") from exc

    def conditions_as_arrays(self) -> RoundConditionsArrays:
        """The round conditions as fleet-order arrays, building them if not supplied."""
        if self.condition_arrays is not None:
            return self.condition_arrays
        return RoundConditionsArrays.from_mapping(
            self.environment.fleet.device_ids, self.conditions
        )


@dataclass
class SelectionDecision:
    """A policy's decision for one round: which devices participate and on which targets."""

    participants: list[int]
    targets: dict[int, ExecutionTarget] = field(default_factory=dict)
    #: Optional array form of ``targets`` aligned on ``participants`` (processor codes
    #: and V-F step indices).  Policies that score targets as arrays populate both
    #: representations; the round engine then skips the per-participant dict walk.
    target_processors: np.ndarray | None = None
    target_vf_steps: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(set(self.participants)) != len(self.participants):
            raise PolicyError("participant ids must be unique")
        unknown = set(self.targets) - set(self.participants)
        if unknown:
            raise PolicyError(f"targets specified for non-participants: {sorted(unknown)}")
        if (self.target_processors is None) != (self.target_vf_steps is None):
            raise PolicyError("target_processors and target_vf_steps must be set together")
        if self.target_processors is not None and (
            len(self.target_processors) != len(self.participants)
            or len(self.target_vf_steps) != len(self.participants)
        ):
            raise PolicyError("target arrays must align with the participant list")

    def target_for(self, device_id: int, default: ExecutionTarget) -> ExecutionTarget:
        """The execution target for a participant, falling back to ``default``."""
        return self.targets.get(device_id, default)
