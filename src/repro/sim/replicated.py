"""Replicated simulation driver: N seeds of one scenario through one engine call.

Seed replication re-runs the *same* scenario under different RNG seeds to average out
run-to-run noise.  The physics of the replicates is embarrassingly parallel, so instead of
N serial :meth:`~repro.sim.runner.FLSimulation.run` loops this driver advances all
replicates round by round and executes each round's device physics as a single stacked
``[replicates, participants]`` engine call
(:func:`~repro.sim.round_engine.execute_batch_replicated`).

The control plane stays per-replicate and follows the exact per-round call order of the
solo runner — online mask, condition sampling, selection, fault draw — on each replicate's
own RNG streams, and the round records are assembled with the same floating-point
summation order the scalar path uses.  Every replicate's :class:`SimulationResult` is
therefore byte-identical (``to_json``) to running that seed alone.

The path applies only to non-learning policies (``uses_feedback`` False) without a round
observer: it skips the per-round feedback call and scalar-execution materialisation
entirely, which is where the speed-up comes from.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import telemetry
from repro.exceptions import SimulationError
from repro.sim.context import RoundContext
from repro.sim.results import BatchRoundExecution, RoundRecord, SimulationResult
from repro.sim.round_engine import execute_batch_replicated
from repro.sim.runner import FLSimulation


def _record_from_batch(
    round_index: int,
    decision,
    batch: BatchRoundExecution,
    training,
    online_mask: np.ndarray | None,
    rows: np.ndarray,
) -> RoundRecord:
    """Assemble a round record from the batch arrays, bit-matching the scalar path.

    The scalar runner sums device energies as Python floats in selection order
    (participants) and fleet order (global); both sums are reproduced here from the
    batch arrays via ``tolist()`` so the stored floats are identical.  ``rows`` maps
    the selection order onto fleet rows.
    """
    participant_totals = (batch.compute_j + batch.communication_j) + batch.waiting_j
    fleet_totals = batch.idle_j.copy()
    fleet_totals[rows] = participant_totals
    return RoundRecord(
        round_index=round_index,
        selected_ids=tuple(sorted(decision.participants)),
        dropped_ids=tuple(batch.dropped_ids),
        targets=dict(decision.targets),
        round_time_s=batch.round_time_s,
        participant_energy_j=sum(participant_totals.tolist()),
        global_energy_j=sum(fleet_totals.tolist()),
        accuracy=training.accuracy,
        accuracy_improvement=training.accuracy_improvement,
        failed_ids=tuple(batch.failed_ids),
        num_online=None if online_mask is None else int(online_mask.sum()),
    )


class ReplicatedSimulation:
    """Drives same-scenario, different-seed simulations through the replicate axis."""

    def __init__(self, simulations: Sequence[FLSimulation]) -> None:
        if not simulations:
            raise SimulationError("replicated execution needs at least one simulation")
        for sim in simulations:
            if not sim.replication_supported:
                raise SimulationError(
                    f"policy {sim.policy.name!r} (or a round observer) requires per-round "
                    "feedback; run its seeds serially instead of replicated"
                )
        self._sims = list(simulations)

    def run(self) -> list[SimulationResult]:
        """Run every replicate to convergence (or its round budget) and return results."""
        sims = self._sims
        results = [
            SimulationResult(
                policy_name=sim.policy.name,
                workload_name=sim.environment.workload.name,
                target_accuracy=sim.target_accuracy,
            )
            for sim in sims
        ]
        done = [False] * len(sims)
        round_index = 0
        while True:
            active = [
                i
                for i, sim in enumerate(sims)
                if not done[i] and round_index < sim._max_rounds
            ]
            if not active:
                break
            # Control plane per replicate, in the solo runner's exact call order so each
            # replicate consumes its RNG streams identically to a standalone run.
            contexts, decisions, faults, masks = [], [], [], []
            for i in active:
                env = sims[i].environment
                online_mask = env.round_online_mask(round_index)
                condition_arrays = env.sample_condition_arrays()
                ctx = RoundContext(
                    round_index=round_index,
                    environment=env,
                    conditions=condition_arrays.lazy_mapping(env.fleet.device_ids),
                    accuracy=sims[i].backend.accuracy,
                    condition_arrays=condition_arrays,
                    online_mask=online_mask,
                )
                decision = sims[i].policy.select(ctx)
                if not decision.participants:
                    raise SimulationError(
                        f"policy {sims[i].policy.name!r} selected no participants"
                    )
                contexts.append(ctx)
                decisions.append(decision)
                faults.append(env.sample_faults(decision.participants, round_index))
                masks.append(online_mask)
            # One stacked engine call for the whole round's physics.
            with telemetry.get_tracer().span(
                "replicated_round",
                category="engine",
                round=round_index,
                replicates=len(active),
            ):
                batches = execute_batch_replicated(
                    [sims[i]._engine for i in active],
                    decisions,
                    [ctx.condition_arrays for ctx in contexts],
                    faults=faults,
                    online_masks=masks,
                )
            for pos, i in enumerate(active):
                batch = batches[pos]
                training = sims[i].backend.run_round(batch.participant_ids)
                rows = sims[i].environment.fleet_arrays.rows_for(batch.selected_ids)
                record = _record_from_batch(
                    round_index, decisions[pos], batch, training, masks[pos], rows
                )
                results[i].append(record)
                if sims[i]._tracker.update(round_index, record.accuracy):
                    results[i].converged_round = sims[i]._tracker.converged_round
                    if sims[i]._stop_at_convergence:
                        done[i] = True
            round_index += 1
        return results
