"""Store benchmark backing ``python -m repro bench --suite store``.

Pits the legacy flat JSONL :class:`~repro.experiments.runner.ResultStore` against the
SQLite :class:`~repro.service.store.ArtifactStore` on the operations the orchestration
service leans on — inserts, spec-hash lookups (hits and misses) and a cold open — at
cache sizes where the difference matters (10k cached specs by default).  The record is
written to ``BENCH_store.json`` with the same provenance fields as
``BENCH_roundengine.json`` so both trajectories stay machine-comparable.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.runner import ExperimentResult, ResultStore
from repro.experiments.spec import ExperimentSpec
from repro.fl.metrics import EfficiencySummary
from repro.service.store import ArtifactStore
from repro.sim.scenarios import ScenarioSpec

#: Default number of cached specs the stores are loaded with.
DEFAULT_STORE_BENCH_ENTRIES = 10_000

#: Default number of timed lookups (half hits, half misses).
DEFAULT_STORE_BENCH_LOOKUPS = 2_000

#: Default output path of the store benchmark record.
DEFAULT_STORE_BENCH_OUTPUT = "BENCH_store.json"


def _fabricate_results(entries: int, seed: int) -> list[ExperimentResult]:
    """Synthesise ``entries`` distinct cached results (distinct seeds → distinct hashes).

    The store benchmark measures storage, not simulation, so the summaries are cheap
    fabrications with plausible magnitudes rather than real trajectories.
    """
    rng = np.random.default_rng(seed)
    base = ExperimentSpec(
        scenario=ScenarioSpec(num_devices=200, max_rounds=100), policy="autofl"
    )
    accuracies = rng.uniform(0.6, 0.95, size=entries)
    energies = rng.uniform(1e3, 1e5, size=entries)
    results = []
    for index in range(entries):
        spec = replace(base, scenario=replace(base.scenario, seed=index))
        summary = EfficiencySummary(
            converged=bool(index % 2),
            rounds_executed=100,
            convergence_round=50 if index % 2 else None,
            convergence_time_s=1e4,
            total_time_s=2e4,
            final_accuracy=float(accuracies[index]),
            participant_energy_j=float(energies[index]),
            global_energy_j=float(energies[index]) * 3.0,
        )
        results.append(ExperimentResult(spec=spec, summaries=(summary,), elapsed_s=0.5))
    return results


def _time_store(
    store_factory, results: list[ExperimentResult], lookups: int, seed: int
) -> dict:
    """Measure insert, lookup and cold-open throughput of one store backend."""
    rng = np.random.default_rng(seed)
    store = store_factory()
    start = time.perf_counter()
    for result in results:
        store.put(result)
    insert_elapsed = time.perf_counter() - start

    hashes = [result.spec.spec_hash() for result in results]
    probe_hits = rng.choice(len(hashes), size=lookups // 2, replace=True)
    probes = [hashes[index] for index in probe_hits]
    probes += [f"{'0' * 56}{index:08x}" for index in range(lookups - len(probes))]  # misses
    rng.shuffle(probes)
    start = time.perf_counter()
    found = sum(1 for key in probes if store.get(key) is not None)
    lookup_elapsed = time.perf_counter() - start

    close = getattr(store, "close", None)
    if close is not None:
        close()
    # Cold open: construct a fresh instance and serve one lookup.  This is where the
    # backends differ most — the JSONL store parses every line up front, the SQLite
    # store touches only the index.
    start = time.perf_counter()
    reopened = store_factory()
    reopened.get(hashes[0])
    cold_open_elapsed = time.perf_counter() - start

    return {
        "entries": len(results),
        "inserts_per_s": len(results) / max(insert_elapsed, 1e-9),
        "lookups": lookups,
        "lookup_hits": int(found),
        "lookups_per_s": lookups / max(lookup_elapsed, 1e-9),
        "cold_open_s": cold_open_elapsed,
    }


def run_store_bench(
    entries: int = DEFAULT_STORE_BENCH_ENTRIES,
    lookups: int = DEFAULT_STORE_BENCH_LOOKUPS,
    seed: int = 0,
    output: str | Path | None = DEFAULT_STORE_BENCH_OUTPUT,
) -> dict:
    """Benchmark both store backends at ``entries`` cached specs; write the record."""
    # Local import: sim.bench owns the provenance convention shared by all records.
    from repro.sim.bench import bench_provenance

    if entries < 1:
        raise ConfigurationError(f"store bench needs at least one entry, got {entries}")
    if lookups < 2:
        raise ConfigurationError(f"store bench needs at least two lookups, got {lookups}")
    results = _fabricate_results(entries, seed)
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as scratch:
        scratch_path = Path(scratch)
        jsonl = _time_store(
            lambda: ResultStore(scratch_path / "results.jsonl"), results, lookups, seed
        )
        sqlite = _time_store(
            lambda: ArtifactStore(scratch_path / "results.sqlite"), results, lookups, seed
        )
    record = {
        "benchmark": "store",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "provenance": bench_provenance(),
        "entries": entries,
        "lookups": lookups,
        "seed": seed,
        "results": {
            "jsonl": jsonl,
            "sqlite": sqlite,
            "speedup": {
                "inserts": sqlite["inserts_per_s"] / max(jsonl["inserts_per_s"], 1e-9),
                "lookups": sqlite["lookups_per_s"] / max(jsonl["lookups_per_s"], 1e-9),
                "cold_open": jsonl["cold_open_s"] / max(sqlite["cold_open_s"], 1e-9),
            },
        },
    }
    if output is not None:
        Path(output).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return record


def format_store_bench(record: dict) -> str:
    """Human-readable table of a store benchmark record for the CLI."""
    rows = record["results"]
    header = (
        f"{'backend':>8}  {'inserts/s':>11}  {'lookups/s':>11}  {'cold open':>10}"
    )
    lines = [f"store benchmark: {record['entries']} cached specs", header, "-" * len(header)]
    for name in ("jsonl", "sqlite"):
        row = rows[name]
        lines.append(
            f"{name:>8}  {row['inserts_per_s']:>11.0f}  {row['lookups_per_s']:>11.0f}  "
            f"{row['cold_open_s']:>9.4f}s"
        )
    speedup = rows["speedup"]
    lines.append(
        f"sqlite vs jsonl: {speedup['inserts']:.1f}x inserts, "
        f"{speedup['lookups']:.1f}x lookups, {speedup['cold_open']:.1f}x cold open"
    )
    return "\n".join(lines)
