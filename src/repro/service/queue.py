"""Crash-safe on-disk priority job queue with fair lanes and atomic claim/lease semantics.

The queue is a directory tree — one subdirectory per job state plus a scratch area::

    <root>/
      tmp/        staging for atomic writes (never read)
      queued/     <job_id>.json            jobs waiting to be claimed
      claimed/    <job_id>.json + .lease   jobs a worker is running (lease = liveness)
      done/ failed/ cancelled/             terminal jobs, kept for ``status``

Durability and multi-process safety rest on two POSIX guarantees:

* every file lands via write-to-``tmp``-then-``os.replace`` — a reader never sees a
  half-written job, even if the writer dies mid-write;
* a claim is a single ``os.rename`` of ``queued/<id>.json`` into ``claimed/`` — rename
  is atomic within one filesystem, so when several workers race for the same job
  exactly one rename succeeds and the losers get ``FileNotFoundError`` and move on.

**Fair lanes.** Every job carries a ``lane`` (hashed from its submitter unless set
explicitly) and an integer ``weight``.  :meth:`JobQueue.claim` does not drain the
queue in one global priority order; it runs smooth weighted round-robin *across the
currently non-empty lanes* and only then applies priority/FIFO *within* the chosen
lane.  A submitter flooding one lane with thousands of jobs therefore delays another
lane's next claim by at most its weight share, no matter how deep its backlog is.

Liveness is lease-based: a claiming worker stages ``claimed/<id>.lease`` with an
expiry timestamp *before* the claim rename (so a claimed body is never visible
without a lease) and renews it while the job runs.  If the worker crashes, the lease
expires and :meth:`JobQueue.release_expired` (called by every worker's poll loop)
either requeues the job — consuming one retry, a crash and a failure spend the same
budget — or marks it failed when the budget is exhausted.  Cancellation of a
*running* job is cooperative: ``cancel`` drops a ``.cancel`` marker that the
scheduler checks between grid points.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.exceptions import QueueSaturated, ServiceError
from repro.service.jobs import TERMINAL_STATES, Job, JobState

#: Default lease duration; workers renew at half this interval while a job runs.
DEFAULT_LEASE_S = 60.0

#: Grace period for claimed bodies with no (or a fresh) lease and for orphaned
#: sidecar files.  A lease-less body younger than this is assumed to be a claim in
#: flight (or a clock-skewed peer) rather than a crash, so recovery waits it out —
#: the window between a claim's lease write and its rename is two adjacent syscalls,
#: so five seconds is orders of magnitude more than enough.
CLAIM_GRACE_S = 5.0

#: Default on-disk location of the service root (queue + event log).
DEFAULT_SERVICE_ROOT = Path(".repro-service")

#: What a saturated queue does with a new submission: refuse it outright, or shed
#: a strictly-lower-priority queued job to make room (refusing when none exists).
SHED_POLICIES = ("reject", "drop-lowest-priority")

#: Admission policy persisted inside the queue root by ``serve`` so ``submit``
#: (usually a different process) enforces the same thresholds.
ADMISSION_FILENAME = "admission.json"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Backpressure thresholds a queue enforces at submit time.

    ``max_depth`` caps the number of queued jobs; ``max_store_p95_s`` additionally
    refuses submissions while the store's p95 operation latency (as measured by the
    scheduler and read from the metrics snapshot) is above the limit — a store
    falling over is saturation even when the queue itself looks shallow.
    """

    max_depth: int | None = None
    shed_policy: str = "reject"
    max_store_p95_s: float | None = None

    def __post_init__(self) -> None:
        if self.shed_policy not in SHED_POLICIES:
            raise ServiceError(
                f"unknown shed policy {self.shed_policy!r} (choose from {SHED_POLICIES})"
            )
        if self.max_depth is not None and self.max_depth < 1:
            raise ServiceError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.max_store_p95_s is not None and self.max_store_p95_s <= 0:
            raise ServiceError(
                f"max_store_p95_s must be positive, got {self.max_store_p95_s}"
            )

    @property
    def empty(self) -> bool:
        return self.max_depth is None and self.max_store_p95_s is None

    def to_dict(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "shed_policy": self.shed_policy,
            "max_store_p95_s": self.max_store_p95_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AdmissionPolicy":
        return cls(
            max_depth=payload.get("max_depth"),
            shed_policy=payload.get("shed_policy", "reject"),
            max_store_p95_s=payload.get("max_store_p95_s"),
        )

#: Directory name per job state.
_STATE_DIRS: dict[JobState, str] = {
    JobState.QUEUED: "queued",
    JobState.RUNNING: "claimed",
    JobState.DONE: "done",
    JobState.FAILED: "failed",
    JobState.CANCELLED: "cancelled",
}


class JobQueue:
    """Directory-backed priority queue shared by any number of worker processes."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        for name in ("tmp", *_STATE_DIRS.values()):
            (self.root / name).mkdir(parents=True, exist_ok=True)
        # Claim-ordering cache: a job's priority, submission time, lane and weight
        # never change, so each queued body only needs parsing once per queue
        # instance, not once per poll (pruned to the currently-queued ids on every
        # scan).  Entries are (-priority, submitted_at, lane, weight).
        self._order_cache: dict[str, tuple[int, float, str, int]] = {}
        # Smooth weighted round-robin credit per lane.  Worker-local on purpose:
        # every claimer converges to the same weight shares without any cross-process
        # coordination, which is what lets many hosts drain one queue directory.
        self._lane_credit: dict[str, float] = {}
        self._credit_lock = threading.Lock()  # Worker threads share one instance.
        # Lanes this instance has exported gauges for (to zero drained lanes).
        self._known_lanes: set[str] = set()

    # ------------------------------------------------------------------ paths
    def _dir(self, state: JobState) -> Path:
        return self.root / _STATE_DIRS[state]

    def _job_path(self, state: JobState, job_id: str) -> Path:
        return self._dir(state) / f"{job_id}.json"

    def _lease_path(self, job_id: str) -> Path:
        return self._dir(JobState.RUNNING) / f"{job_id}.lease"

    def _cancel_path(self, job_id: str) -> Path:
        return self._dir(JobState.RUNNING) / f"{job_id}.cancel"

    # ------------------------------------------------------------------ atomic IO
    def _write_json(self, path: Path, payload: dict) -> None:
        staging = self.root / "tmp" / f"{uuid.uuid4().hex}.json"
        staging.write_text(json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(staging, path)

    def _write_job(self, job: Job, state: JobState | None = None) -> Path:
        path = self._job_path(state if state is not None else job.state, job.job_id)
        self._write_json(path, job.to_dict())
        return path

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        """Load one JSON file; ``None`` when another worker moved it mid-scan."""
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            return json.loads(text)
        except ValueError as exc:
            raise ServiceError(f"corrupt queue entry {path}: {exc}") from exc

    def _load_job(self, path: Path) -> Job | None:
        payload = self._read_json(path)
        return Job.from_dict(payload) if payload is not None else None

    # ------------------------------------------------------------------ submit / claim
    def submit(self, job: Job) -> str:
        """Persist a queued job and return its id."""
        if job.state is not JobState.QUEUED:
            raise ServiceError(
                f"only queued jobs can be submitted, got state {job.state.value!r}"
            )
        self._write_job(job)
        return job.job_id

    def _scan_queued(self) -> dict[str, tuple[int, float, str, int]]:
        """Refresh and return the order cache for the currently-queued jobs."""
        order: dict[str, tuple[int, float, str, int]] = {}
        for path in self._dir(JobState.QUEUED).glob("*.json"):
            job_id = path.stem
            cached = self._order_cache.get(job_id)
            if cached is None:
                payload = self._read_json(path)
                if payload is None:
                    continue
                cached = (
                    -payload.get("priority", 0),
                    payload.get("submitted_at", 0.0),
                    payload.get("lane", "") or "lane-unknown",
                    max(1, payload.get("weight", 1)),
                )
            order[job_id] = cached
        self._order_cache = order  # Prune ids that left the queue.
        return order

    def _fair_lane_order(self, weights: dict[str, int]) -> list[str]:
        """Rank the non-empty lanes by smooth weighted round-robin.

        Each call advances every present lane's credit by its weight, ranks lanes by
        credit (ties by name, so the order is total), and charges the front-runner
        the credit total — the classic SWRR step, which interleaves lanes in exact
        proportion to their weights (weights 3:1 yield A A A B A A A B …).  Credit for
        lanes that drained away is dropped, so a returning lane starts fresh rather
        than with a hoarded backlog of credit.
        """
        with self._credit_lock:
            for lane in list(self._lane_credit):
                if lane not in weights:
                    del self._lane_credit[lane]
            for lane, weight in weights.items():
                self._lane_credit[lane] = self._lane_credit.get(lane, 0.0) + weight
            ranked = sorted(weights, key=lambda lane: (-self._lane_credit[lane], lane))
            self._lane_credit[ranked[0]] -= sum(weights.values())
        return ranked

    def claim(self, worker_id: str, lease_s: float = DEFAULT_LEASE_S) -> Job | None:
        """Atomically claim the next queued job under weighted lane fairness.

        Lanes are tried in smooth weighted round-robin order; within a lane, highest
        priority first, then oldest, then job id so the order is total.  The winning
        worker owns the job until it completes it, requeues it, or its lease expires.
        """
        started = time.perf_counter()
        order = self._scan_queued()
        lanes: dict[str, list[tuple[int, float, str]]] = {}
        weights: dict[str, int] = {}
        for job_id, (rank, stamp, lane, weight) in order.items():
            lanes.setdefault(lane, []).append((rank, stamp, job_id))
            weights[lane] = max(weights.get(lane, 1), weight)
        if not lanes:
            return None
        for lane in self._fair_lane_order(weights):
            for rank, stamp, job_id in sorted(lanes[lane]):
                source = self._job_path(JobState.QUEUED, job_id)
                target = self._job_path(JobState.RUNNING, job_id)
                # Stage the lease BEFORE the rename: from the instant a body becomes
                # visible in claimed/, its lease already exists, so a concurrent
                # release_expired() can never observe a claimed body as lease-less
                # and steal it back mid-claim.  If the rename below loses the race,
                # the staged lease is either overwritten by the real winner's
                # renewals (same expiry horizon, so it never triggers an early
                # release) or — when the job went terminal instead — swept as an
                # orphaned sidecar by sweep_sidecars() once CLAIM_GRACE_S passes.
                self.renew_lease(job_id, worker_id, lease_s)
                try:
                    os.rename(source, target)  # Atomic: exactly one racing worker wins.
                except FileNotFoundError:
                    continue  # Another worker claimed (or cancelled) it first.
                job = self._load_job(target)
                if job is None:  # pragma: no cover - defensive
                    continue
                job.transition(JobState.RUNNING)
                job.worker = worker_id
                job.attempts += 1
                self._write_job(job)
                self._observe_claim(job, started)
                return job
        return None

    @staticmethod
    def _observe_claim(job: Job, started: float) -> None:
        """Record per-lane claim telemetry (scan latency + time spent queued)."""
        registry = telemetry.get_registry()
        if not registry.enabled:
            return
        registry.histogram(
            "repro_claim_latency_s", help="Queue-scan-to-claim latency per claim."
        ).observe(time.perf_counter() - started, lane=job.lane)
        registry.histogram(
            "repro_claim_wait_s", help="Submit-to-claim wait of claimed jobs."
        ).observe(max(0.0, time.time() - job.submitted_at), lane=job.lane)

    def renew_lease(self, job_id: str, worker_id: str, lease_s: float = DEFAULT_LEASE_S) -> None:
        """Extend (or create) the liveness lease of a claimed job."""
        self._write_json(
            self._lease_path(job_id),
            {"worker": worker_id, "expires_at": time.time() + lease_s},
        )

    def update(self, job: Job) -> None:
        """Persist in-flight progress (counters, error text) of a running job."""
        if job.state is not JobState.RUNNING:
            raise ServiceError(f"update() is for running jobs, got {job.state.value!r}")
        self._write_job(job)

    # ------------------------------------------------------------------ completion
    def complete(self, job: Job, state: JobState, error: str | None = None) -> Job:
        """Move a running job into a terminal state (``done``/``failed``/``cancelled``)."""
        if state not in TERMINAL_STATES:
            raise ServiceError(f"complete() needs a terminal state, got {state.value!r}")
        job.error = error
        job.transition(state)
        self._write_job(job)
        self._remove_claim(job.job_id)
        return job

    def requeue(self, job: Job, consume_attempt: bool = True) -> Job:
        """Put a running job back in the queue (crash recovery or interrupt).

        With ``consume_attempt=False`` the attempt counter is rolled back — an operator
        interrupt must not spend the job's retry budget.
        """
        if not consume_attempt:
            job.attempts = max(0, job.attempts - 1)
        job.transition(JobState.QUEUED)
        self._write_job(job)
        self._remove_claim(job.job_id)
        return job

    def _remove_claim(self, job_id: str) -> None:
        for path in (
            self._job_path(JobState.RUNNING, job_id),
            self._lease_path(job_id),
            self._cancel_path(job_id),
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------ liveness
    def release_expired(self, now: float | None = None) -> list[Job]:
        """Recover claims whose lease expired (worker crashed or lost the machine).

        Each recovered job is requeued while its retry budget lasts, otherwise marked
        failed.  Returns the jobs that were moved, for event reporting.  A claimed
        body with *no* lease at all is given :data:`CLAIM_GRACE_S` from its file
        mtime before recovery — claims stage their lease before the rename, so a
        lease-less body is either a crashed old claim (recover it) or external
        tampering, never a claim in flight; the grace is belt-and-braces against
        writers that do not stage first.  Orphaned sidecar files are swept on the
        way out.
        """
        now = time.time() if now is None else now
        moved: list[Job] = []
        for path in self._dir(JobState.RUNNING).glob("*.json"):
            job_id = path.stem
            lease = self._read_json(self._lease_path(job_id))
            if lease is None:
                try:
                    mtime = path.stat().st_mtime
                except FileNotFoundError:
                    continue  # Raced a completion/requeue mid-scan.
                if now - mtime < CLAIM_GRACE_S:
                    continue
                expires_at = 0.0
            else:
                expires_at = lease.get("expires_at", 0.0)
            if expires_at > now:
                continue
            job = self._load_job(path)
            if job is None:
                continue
            if job.state is JobState.QUEUED:
                # Crash inside claim(): the rename landed but neither the lease nor
                # the RUNNING body ever did.  The body is still the pristine queued
                # job — rename it straight back so it is claimable again (atomic, so
                # concurrent recoverers cannot double it; no attempt was consumed).
                try:
                    os.rename(path, self._job_path(JobState.QUEUED, job_id))
                except FileNotFoundError:
                    continue  # Another recoverer (or the claimer's write) beat us.
                self._remove_claim(job_id)
                moved.append(job)
                continue
            if job.state is not JobState.RUNNING:  # pragma: no cover - defensive
                continue
            holder = (lease or {}).get("worker", "unknown")
            if job.retries_left > 0:
                moved.append(self.requeue(job))
            else:
                moved.append(
                    self.complete(
                        job,
                        JobState.FAILED,
                        error=(
                            f"lease held by worker {holder!r} expired after "
                            f"{job.attempts} attempt(s); retry budget exhausted"
                        ),
                    )
                )
        self.sweep_sidecars(now)
        return moved

    def sweep_sidecars(self, now: float | None = None) -> list[Path]:
        """Delete ``.lease``/``.cancel`` files whose job body left ``claimed/``.

        Sidecars go stale when a recovery (or cancel) renames the body away in the
        window between a claimer's rename and its next ``renew_lease`` — the late
        lease write then lands for a job that is no longer claimed, and nothing else
        would ever delete it because recovery only globs ``*.json``.  Files younger
        than :data:`CLAIM_GRACE_S` are kept: a fresh body-less lease is most likely a
        claim staging its lease just before the rename lands.  Idempotent and safe to
        run concurrently from any number of workers.
        """
        now = time.time() if now is None else now
        swept: list[Path] = []
        for pattern in ("*.lease", "*.cancel"):
            for path in self._dir(JobState.RUNNING).glob(pattern):
                if self._job_path(JobState.RUNNING, path.stem).exists():
                    continue
                try:
                    if now - path.stat().st_mtime < CLAIM_GRACE_S:
                        continue
                    path.unlink()
                except FileNotFoundError:
                    continue  # Another sweeper (or the job's return) beat us.
                swept.append(path)
        return swept

    # ------------------------------------------------------------------ cancellation
    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately when queued, cooperatively when running."""
        source = self._job_path(JobState.QUEUED, job_id)
        target = self._job_path(JobState.RUNNING, job_id)  # reuse claim rename for atomicity
        try:
            os.rename(source, target)
        except FileNotFoundError:
            pass
        else:
            job = self._load_job(target)
            if job is not None:
                job.transition(JobState.CANCELLED)
                self._write_job(job)
                self._remove_claim(job_id)
                return job
        if self._job_path(JobState.RUNNING, job_id).exists():
            # Running: drop a marker; the scheduler honours it between grid points.
            self._write_json(self._cancel_path(job_id), {"requested_at": time.time()})
            job = self._load_job(self._job_path(JobState.RUNNING, job_id))
            if job is not None:
                return job
        job = self.get(job_id)
        if job.finished:
            raise ServiceError(f"job {job_id} already finished ({job.state.value})")
        return job  # pragma: no cover - transient races land in one of the above

    def cancel_requested(self, job_id: str) -> bool:
        """True when a cooperative cancel marker exists for a running job."""
        return self._cancel_path(job_id).exists()

    # ------------------------------------------------------------------ inspection
    def get(self, job_id: str) -> Job:
        """Load a job by id from whichever state directory holds it."""
        for state in _STATE_DIRS:
            job = self._load_job(self._job_path(state, job_id))
            if job is not None:
                return job
        raise ServiceError(f"unknown job id {job_id!r}")

    def jobs(self, states: tuple[JobState, ...] | None = None) -> list[Job]:
        """All jobs (optionally filtered by state), oldest submission first."""
        selected = states if states is not None else tuple(_STATE_DIRS)
        loaded: list[Job] = []
        for state in selected:
            for path in self._dir(state).glob("*.json"):
                job = self._load_job(path)
                if job is not None:
                    loaded.append(job)
        return sorted(loaded, key=lambda job: (job.submitted_at, job.job_id))

    def counts(self) -> dict[str, int]:
        """Number of jobs per state (cheap: counts files, does not parse them)."""
        return {
            state.value: sum(1 for _ in self._dir(state).glob("*.json"))
            for state in _STATE_DIRS
        }

    def pending(self) -> int:
        """Number of jobs currently waiting in ``queued/``."""
        return sum(1 for _ in self._dir(JobState.QUEUED).glob("*.json"))

    def depth(self) -> int:
        """Alias of :meth:`pending` — the admission-control view of the backlog."""
        return self.pending()

    # ------------------------------------------------------------------ admission
    @property
    def _admission_path(self) -> Path:
        return self.root / ADMISSION_FILENAME

    def set_admission(self, policy: AdmissionPolicy | None) -> None:
        """Persist (or, with ``None``/an empty policy, clear) the admission policy.

        The policy lives inside the queue root so every submitter sharing the
        directory enforces it, regardless of which ``serve`` host configured it.
        """
        if policy is None or policy.empty:
            try:
                self._admission_path.unlink()
            except FileNotFoundError:
                pass
            return
        self._write_json(self._admission_path, policy.to_dict())

    def admission(self) -> AdmissionPolicy | None:
        """The persisted admission policy, or ``None`` when admission is open."""
        payload = self._read_json(self._admission_path)
        return AdmissionPolicy.from_dict(payload) if payload is not None else None

    def admit(self, job: Job, store_p95_s: float | None = None) -> Job | None:
        """Enforce the admission policy for one submission *before* it is queued.

        Returns ``None`` when the queue is open, or the job that was shed to make
        room under ``drop-lowest-priority``.  Raises :class:`QueueSaturated` (and
        bumps ``repro_queue_saturated_total``) when the submission must be refused.
        """
        policy = self.admission()
        if policy is None:
            return None
        if (
            policy.max_store_p95_s is not None
            and store_p95_s is not None
            and not math.isnan(store_p95_s)
            and store_p95_s > policy.max_store_p95_s
        ):
            self._refuse(
                "store-latency",
                f"store p95 latency {store_p95_s:.3f}s exceeds the admission limit "
                f"of {policy.max_store_p95_s:.3f}s; back off and retry",
            )
        if policy.max_depth is None:
            return None
        depth = self.depth()
        if depth < policy.max_depth:
            return None
        if policy.shed_policy == "drop-lowest-priority":
            shed = self.shed_lowest_priority(above_priority=job.priority)
            if shed is not None:
                return shed
            self._refuse(
                "depth",
                f"queue depth {depth} is at the admission limit of {policy.max_depth} "
                f"and no queued job has lower priority than {job.priority}; "
                "back off and retry",
            )
        self._refuse(
            "depth",
            f"queue depth {depth} is at the admission limit of {policy.max_depth}; "
            "back off and retry",
        )

    @staticmethod
    def _refuse(reason: str, message: str) -> None:
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_queue_saturated_total",
                help="Submissions refused by admission control, by reason.",
            ).inc(reason=reason)
        raise QueueSaturated(message)

    def shed_lowest_priority(self, above_priority: int) -> Job | None:
        """Fail the lowest-priority (then youngest) queued job strictly below
        ``above_priority`` to make room; ``None`` when no such victim exists.

        The victim is moved with the same atomic claim rename used by
        :meth:`claim`/:meth:`cancel`, so racing a worker's claim is safe — if the
        worker wins, the next victim is tried.
        """
        order = self._scan_queued()
        victims = sorted(
            (
                (rank, stamp, job_id)
                for job_id, (rank, stamp, _lane, _weight) in order.items()
                if -rank < above_priority
            ),
            key=lambda item: (-item[0], -item[1], item[2]),
        )
        for _rank, _stamp, job_id in victims:
            source = self._job_path(JobState.QUEUED, job_id)
            target = self._job_path(JobState.RUNNING, job_id)
            try:
                os.rename(source, target)
            except FileNotFoundError:
                continue  # Claimed, cancelled or already shed by a racer.
            job = self._load_job(target)
            if job is None:  # pragma: no cover - defensive
                continue
            job.transition(JobState.FAILED)
            job.error = (
                f"shed by admission control to make room for a priority-"
                f"{above_priority} submission"
            )
            self._write_job(job)
            self._remove_claim(job_id)
            registry = telemetry.get_registry()
            if registry.enabled:
                registry.counter(
                    "repro_jobs_shed_total",
                    help="Queued jobs shed by drop-lowest-priority admission control.",
                ).inc()
            return job
        return None

    def lane_depths(self, now: float | None = None) -> dict[str, dict[str, float]]:
        """Per-lane view of ``queued/``: ``{lane: {depth, weight, oldest_wait_s}}``."""
        now = time.time() if now is None else now
        lanes: dict[str, dict[str, float]] = {}
        for _rank, stamp, lane, weight in self._scan_queued().values():
            entry = lanes.setdefault(
                lane, {"depth": 0, "weight": 1, "oldest_wait_s": 0.0}
            )
            entry["depth"] += 1
            entry["weight"] = max(entry["weight"], weight)
            entry["oldest_wait_s"] = max(entry["oldest_wait_s"], round(now - stamp, 3))
        return lanes

    def export_gauges(self, registry=None) -> dict[str, int]:
        """Export queue depth, per-state and per-lane job counts as telemetry gauges.

        Sets ``repro_queue_depth`` (jobs waiting in ``queued/``), one
        ``repro_jobs{state=...}`` series per state, and per-lane
        ``repro_lane_depth{lane=...}`` / ``repro_lane_oldest_wait_s{lane=...}``
        series on ``registry`` (the process-wide registry by default; recording
        still honours its ``enabled`` switch), and returns the raw :meth:`counts`
        mapping either way.  Lanes that drained to empty are re-exported once at
        depth 0 so dashboards see them hit zero instead of a vanishing series.
        """
        counts = self.counts()
        if registry is None:
            registry = telemetry.get_registry()
        if registry.enabled:
            registry.gauge(
                "repro_queue_depth", help="Jobs waiting to be claimed."
            ).set(float(counts[JobState.QUEUED.value]))
            jobs_gauge = registry.gauge(
                "repro_jobs", help="Jobs currently in each queue state."
            )
            for state, count in counts.items():
                jobs_gauge.set(float(count), state=state)
            lanes = self.lane_depths()
            depth_gauge = registry.gauge(
                "repro_lane_depth", help="Queued jobs per fair-scheduling lane."
            )
            wait_gauge = registry.gauge(
                "repro_lane_oldest_wait_s",
                help="Age of the oldest queued job per lane.",
            )
            for lane in self._known_lanes - set(lanes):
                depth_gauge.set(0.0, lane=lane)
                wait_gauge.set(0.0, lane=lane)
            self._known_lanes |= set(lanes)
            for lane, entry in lanes.items():
                depth_gauge.set(float(entry["depth"]), lane=lane)
                wait_gauge.set(float(entry["oldest_wait_s"]), lane=lane)
            policy = self.admission()
            saturated = (
                policy is not None
                and policy.max_depth is not None
                and counts[JobState.QUEUED.value] >= policy.max_depth
            )
            registry.gauge(
                "repro_queue_saturated",
                help="1 when the queue depth is at or past the admission limit.",
            ).set(1.0 if saturated else 0.0)
        return counts

    def __len__(self) -> int:
        return sum(self.counts().values())
