"""Crash-safe on-disk priority job queue with atomic claim/lease semantics.

The queue is a directory tree — one subdirectory per job state plus a scratch area::

    <root>/
      tmp/        staging for atomic writes (never read)
      queued/     <job_id>.json            jobs waiting to be claimed
      claimed/    <job_id>.json + .lease   jobs a worker is running (lease = liveness)
      done/ failed/ cancelled/             terminal jobs, kept for ``status``

Durability and multi-process safety rest on two POSIX guarantees:

* every file lands via write-to-``tmp``-then-``os.replace`` — a reader never sees a
  half-written job, even if the writer dies mid-write;
* a claim is a single ``os.rename`` of ``queued/<id>.json`` into ``claimed/`` — rename
  is atomic within one filesystem, so when several workers race for the same job
  exactly one rename succeeds and the losers get ``FileNotFoundError`` and move on.

Liveness is lease-based: a claiming worker writes ``claimed/<id>.lease`` with an expiry
timestamp and renews it while the job runs.  If the worker crashes, the lease expires
and :meth:`JobQueue.release_expired` (called by every worker's poll loop) either
requeues the job — consuming one retry, a crash and a failure spend the same budget —
or marks it failed when the budget is exhausted.  Cancellation of a *running* job is
cooperative: ``cancel`` drops a ``.cancel`` marker that the scheduler checks between
grid points.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

from repro import telemetry
from repro.exceptions import ServiceError
from repro.service.jobs import TERMINAL_STATES, Job, JobState

#: Default lease duration; workers renew at half this interval while a job runs.
DEFAULT_LEASE_S = 60.0

#: Default on-disk location of the service root (queue + event log).
DEFAULT_SERVICE_ROOT = Path(".repro-service")

#: Directory name per job state.
_STATE_DIRS: dict[JobState, str] = {
    JobState.QUEUED: "queued",
    JobState.RUNNING: "claimed",
    JobState.DONE: "done",
    JobState.FAILED: "failed",
    JobState.CANCELLED: "cancelled",
}


class JobQueue:
    """Directory-backed priority queue shared by any number of worker processes."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        for name in ("tmp", *_STATE_DIRS.values()):
            (self.root / name).mkdir(parents=True, exist_ok=True)
        # Claim-ordering cache: a job's priority and submission time never change, so
        # each queued body only needs parsing once per queue instance, not once per
        # poll (pruned to the currently-queued ids on every scan).
        self._order_cache: dict[str, tuple[int, float]] = {}

    # ------------------------------------------------------------------ paths
    def _dir(self, state: JobState) -> Path:
        return self.root / _STATE_DIRS[state]

    def _job_path(self, state: JobState, job_id: str) -> Path:
        return self._dir(state) / f"{job_id}.json"

    def _lease_path(self, job_id: str) -> Path:
        return self._dir(JobState.RUNNING) / f"{job_id}.lease"

    def _cancel_path(self, job_id: str) -> Path:
        return self._dir(JobState.RUNNING) / f"{job_id}.cancel"

    # ------------------------------------------------------------------ atomic IO
    def _write_json(self, path: Path, payload: dict) -> None:
        staging = self.root / "tmp" / f"{uuid.uuid4().hex}.json"
        staging.write_text(json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(staging, path)

    def _write_job(self, job: Job, state: JobState | None = None) -> Path:
        path = self._job_path(state if state is not None else job.state, job.job_id)
        self._write_json(path, job.to_dict())
        return path

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        """Load one JSON file; ``None`` when another worker moved it mid-scan."""
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            return json.loads(text)
        except ValueError as exc:
            raise ServiceError(f"corrupt queue entry {path}: {exc}") from exc

    def _load_job(self, path: Path) -> Job | None:
        payload = self._read_json(path)
        return Job.from_dict(payload) if payload is not None else None

    # ------------------------------------------------------------------ submit / claim
    def submit(self, job: Job) -> str:
        """Persist a queued job and return its id."""
        if job.state is not JobState.QUEUED:
            raise ServiceError(
                f"only queued jobs can be submitted, got state {job.state.value!r}"
            )
        self._write_job(job)
        return job.job_id

    def claim(self, worker_id: str, lease_s: float = DEFAULT_LEASE_S) -> Job | None:
        """Atomically claim the highest-priority queued job, or ``None`` when empty.

        Ties break oldest-first, then by job id so the order is total.  The winning
        worker owns the job until it completes it, requeues it, or its lease expires.
        """
        order: dict[str, tuple[int, float]] = {}
        for path in self._dir(JobState.QUEUED).glob("*.json"):
            job_id = path.stem
            cached = self._order_cache.get(job_id)
            if cached is None:
                payload = self._read_json(path)
                if payload is None:
                    continue
                cached = (-payload.get("priority", 0), payload.get("submitted_at", 0.0))
            order[job_id] = cached
        self._order_cache = order  # Prune ids that left the queue.
        for _, _, job_id in sorted(
            (rank, stamp, job_id) for job_id, (rank, stamp) in order.items()
        ):
            source = self._job_path(JobState.QUEUED, job_id)
            target = self._job_path(JobState.RUNNING, job_id)
            try:
                os.rename(source, target)  # Atomic: exactly one racing worker wins.
            except FileNotFoundError:
                continue  # Another worker claimed (or cancelled) it first.
            # Lease immediately after the rename — before anything else — so the
            # window in which a claimed job has no lease is two adjacent syscalls.
            # A crash inside that window leaves a still-queued body in claimed/,
            # which release_expired() renames straight back to the queue.
            self.renew_lease(job_id, worker_id, lease_s)
            job = self._load_job(target)
            if job is None:  # pragma: no cover - defensive
                continue
            job.transition(JobState.RUNNING)
            job.worker = worker_id
            job.attempts += 1
            self._write_job(job)
            return job
        return None

    def renew_lease(self, job_id: str, worker_id: str, lease_s: float = DEFAULT_LEASE_S) -> None:
        """Extend (or create) the liveness lease of a claimed job."""
        self._write_json(
            self._lease_path(job_id),
            {"worker": worker_id, "expires_at": time.time() + lease_s},
        )

    def update(self, job: Job) -> None:
        """Persist in-flight progress (counters, error text) of a running job."""
        if job.state is not JobState.RUNNING:
            raise ServiceError(f"update() is for running jobs, got {job.state.value!r}")
        self._write_job(job)

    # ------------------------------------------------------------------ completion
    def complete(self, job: Job, state: JobState, error: str | None = None) -> Job:
        """Move a running job into a terminal state (``done``/``failed``/``cancelled``)."""
        if state not in TERMINAL_STATES:
            raise ServiceError(f"complete() needs a terminal state, got {state.value!r}")
        job.error = error
        job.transition(state)
        self._write_job(job)
        self._remove_claim(job.job_id)
        return job

    def requeue(self, job: Job, consume_attempt: bool = True) -> Job:
        """Put a running job back in the queue (crash recovery or interrupt).

        With ``consume_attempt=False`` the attempt counter is rolled back — an operator
        interrupt must not spend the job's retry budget.
        """
        if not consume_attempt:
            job.attempts = max(0, job.attempts - 1)
        job.transition(JobState.QUEUED)
        self._write_job(job)
        self._remove_claim(job.job_id)
        return job

    def _remove_claim(self, job_id: str) -> None:
        for path in (
            self._job_path(JobState.RUNNING, job_id),
            self._lease_path(job_id),
            self._cancel_path(job_id),
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------ liveness
    def release_expired(self, now: float | None = None) -> list[Job]:
        """Recover claims whose lease expired (worker crashed or lost the machine).

        Each recovered job is requeued while its retry budget lasts, otherwise marked
        failed.  Returns the jobs that were moved, for event reporting.
        """
        now = time.time() if now is None else now
        moved: list[Job] = []
        for path in self._dir(JobState.RUNNING).glob("*.json"):
            job_id = path.stem
            lease = self._read_json(self._lease_path(job_id))
            expires_at = (lease or {}).get("expires_at", 0.0)
            if expires_at > now:
                continue
            job = self._load_job(path)
            if job is None:
                continue
            if job.state is JobState.QUEUED:
                # Crash inside claim(): the rename landed but neither the lease nor
                # the RUNNING body ever did.  The body is still the pristine queued
                # job — rename it straight back so it is claimable again (atomic, so
                # concurrent recoverers cannot double it; no attempt was consumed).
                try:
                    os.rename(path, self._job_path(JobState.QUEUED, job_id))
                except FileNotFoundError:
                    continue  # Another recoverer (or the claimer's write) beat us.
                self._remove_claim(job_id)
                moved.append(job)
                continue
            if job.state is not JobState.RUNNING:  # pragma: no cover - defensive
                continue
            holder = (lease or {}).get("worker", "unknown")
            if job.retries_left > 0:
                moved.append(self.requeue(job))
            else:
                moved.append(
                    self.complete(
                        job,
                        JobState.FAILED,
                        error=(
                            f"lease held by worker {holder!r} expired after "
                            f"{job.attempts} attempt(s); retry budget exhausted"
                        ),
                    )
                )
        return moved

    # ------------------------------------------------------------------ cancellation
    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately when queued, cooperatively when running."""
        source = self._job_path(JobState.QUEUED, job_id)
        target = self._job_path(JobState.RUNNING, job_id)  # reuse claim rename for atomicity
        try:
            os.rename(source, target)
        except FileNotFoundError:
            pass
        else:
            job = self._load_job(target)
            if job is not None:
                job.transition(JobState.CANCELLED)
                self._write_job(job)
                self._remove_claim(job_id)
                return job
        if self._job_path(JobState.RUNNING, job_id).exists():
            # Running: drop a marker; the scheduler honours it between grid points.
            self._write_json(self._cancel_path(job_id), {"requested_at": time.time()})
            job = self._load_job(self._job_path(JobState.RUNNING, job_id))
            if job is not None:
                return job
        job = self.get(job_id)
        if job.finished:
            raise ServiceError(f"job {job_id} already finished ({job.state.value})")
        return job  # pragma: no cover - transient races land in one of the above

    def cancel_requested(self, job_id: str) -> bool:
        """True when a cooperative cancel marker exists for a running job."""
        return self._cancel_path(job_id).exists()

    # ------------------------------------------------------------------ inspection
    def get(self, job_id: str) -> Job:
        """Load a job by id from whichever state directory holds it."""
        for state in _STATE_DIRS:
            job = self._load_job(self._job_path(state, job_id))
            if job is not None:
                return job
        raise ServiceError(f"unknown job id {job_id!r}")

    def jobs(self, states: tuple[JobState, ...] | None = None) -> list[Job]:
        """All jobs (optionally filtered by state), oldest submission first."""
        selected = states if states is not None else tuple(_STATE_DIRS)
        loaded: list[Job] = []
        for state in selected:
            for path in self._dir(state).glob("*.json"):
                job = self._load_job(path)
                if job is not None:
                    loaded.append(job)
        return sorted(loaded, key=lambda job: (job.submitted_at, job.job_id))

    def counts(self) -> dict[str, int]:
        """Number of jobs per state (cheap: counts files, does not parse them)."""
        return {
            state.value: sum(1 for _ in self._dir(state).glob("*.json"))
            for state in _STATE_DIRS
        }

    def pending(self) -> int:
        """Number of jobs currently waiting in ``queued/``."""
        return sum(1 for _ in self._dir(JobState.QUEUED).glob("*.json"))

    def export_gauges(self, registry=None) -> dict[str, int]:
        """Export queue depth and per-state job counts as telemetry gauges.

        Sets ``repro_queue_depth`` (jobs waiting in ``queued/``) and one
        ``repro_jobs{state=...}`` series per state on ``registry`` (the process-wide
        registry by default; recording still honours its ``enabled`` switch), and
        returns the raw :meth:`counts` mapping either way.
        """
        counts = self.counts()
        if registry is None:
            registry = telemetry.get_registry()
        if registry.enabled:
            registry.gauge(
                "repro_queue_depth", help="Jobs waiting to be claimed."
            ).set(float(counts[JobState.QUEUED.value]))
            jobs_gauge = registry.gauge(
                "repro_jobs", help="Jobs currently in each queue state."
            )
            for state, count in counts.items():
                jobs_gauge.set(float(count), state=state)
        return counts

    def __len__(self) -> int:
        return sum(self.counts().values())
