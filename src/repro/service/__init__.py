"""Experiment orchestration service: durable jobs, scheduling and an indexed store.

The service turns the simulator from a foreground batch tool into a long-lived system
that many clients can drive concurrently:

* :mod:`repro.service.jobs` — the :class:`Job` model: an
  :class:`~repro.experiments.spec.ExperimentSpec` batch with priority, retry budget,
  timeout, provenance and an enforced ``queued → running → done/failed/cancelled``
  state machine;
* :mod:`repro.service.queue` — a crash-safe on-disk priority queue whose atomic
  rename-based claims and expiry leases let any number of worker processes pull
  safely;
* :mod:`repro.service.scheduler` — the worker pool: dedupes grid points against the
  store by spec hash, enforces per-job timeouts, honours cancellation, retries
  failures and attaches validation reports to failed jobs;
* :mod:`repro.service.store` — the SQLite :class:`ArtifactStore`, the indexed
  service-grade replacement of the flat JSONL result store (lossless migration
  included), plus job artifacts;
* :mod:`repro.service.events` — the append-only JSONL event log behind
  ``python -m repro watch``, with durable cursors and cross-process seq counters;
* :mod:`repro.service.eventbus` — push-based fan-out over that log: in-process
  subscriptions plus the ``/events`` long-poll and ``/events/stream`` SSE server;
* :mod:`repro.service.webhooks` — signed at-least-once HTTP callbacks with retry,
  backoff and a dead-letter log;
* :mod:`repro.service.bench` — the JSONL-vs-SQLite store benchmark
  (``python -m repro bench --suite store``).

The CLI front-ends are ``python -m repro {serve,submit,status,watch,events,webhooks,cancel}``.
"""

from repro.service.bench import (
    DEFAULT_STORE_BENCH_ENTRIES,
    DEFAULT_STORE_BENCH_LOOKUPS,
    DEFAULT_STORE_BENCH_OUTPUT,
    format_store_bench,
    run_store_bench,
)
from repro.service.eventbus import (
    DEFAULT_MAX_SUBSCRIBER_QUEUE,
    EventBus,
    EventPlaneServer,
    Subscription,
    follow_events,
)
from repro.service.events import (
    EVENT_SCHEMA_VERSION,
    EVENTS_FILENAME,
    EventIndex,
    EventLog,
    SeqCounter,
    event_matches,
    format_event,
    read_events_since,
    tail_events,
)
from repro.service.jobs import (
    JOB_SCHEMA_VERSION,
    TERMINAL_STATES,
    Job,
    JobState,
    derive_lane,
    hash_lane,
    make_job,
    submit_provenance,
)
from repro.service.queue import (
    ADMISSION_FILENAME,
    CLAIM_GRACE_S,
    DEFAULT_LEASE_S,
    DEFAULT_SERVICE_ROOT,
    SHED_POLICIES,
    AdmissionPolicy,
    JobQueue,
)
from repro.service.scheduler import DEFAULT_DRAIN_GRACE_S, DEFAULT_POLL_S, Scheduler
from repro.service.store import (
    DEFAULT_SQLITE_STORE_PATH,
    DEFAULT_STORE_SHARDS,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    ShardedStore,
    migrate_jsonl,
    open_store,
)
from repro.service.webhooks import (
    DEADLETTER_FILENAME,
    WEBHOOKS_FILENAME,
    Webhook,
    WebhookDispatcher,
    WebhookRegistry,
    deliver_once,
    sign_payload,
    verify_signature,
)

__all__ = [
    "ADMISSION_FILENAME",
    "AdmissionPolicy",
    "ArtifactStore",
    "CLAIM_GRACE_S",
    "DEADLETTER_FILENAME",
    "DEFAULT_DRAIN_GRACE_S",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_SUBSCRIBER_QUEUE",
    "DEFAULT_POLL_S",
    "DEFAULT_SERVICE_ROOT",
    "DEFAULT_SQLITE_STORE_PATH",
    "DEFAULT_STORE_BENCH_ENTRIES",
    "DEFAULT_STORE_BENCH_LOOKUPS",
    "DEFAULT_STORE_BENCH_OUTPUT",
    "DEFAULT_STORE_SHARDS",
    "EVENTS_FILENAME",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "EventIndex",
    "EventLog",
    "EventPlaneServer",
    "JOB_SCHEMA_VERSION",
    "Job",
    "JobQueue",
    "JobState",
    "SHED_POLICIES",
    "STORE_SCHEMA_VERSION",
    "Scheduler",
    "SeqCounter",
    "ShardedStore",
    "Subscription",
    "TERMINAL_STATES",
    "WEBHOOKS_FILENAME",
    "Webhook",
    "WebhookDispatcher",
    "WebhookRegistry",
    "deliver_once",
    "derive_lane",
    "event_matches",
    "follow_events",
    "format_event",
    "format_store_bench",
    "hash_lane",
    "make_job",
    "migrate_jsonl",
    "open_store",
    "read_events_since",
    "run_store_bench",
    "sign_payload",
    "submit_provenance",
    "tail_events",
    "verify_signature",
]
