"""Experiment orchestration service: durable jobs, scheduling and an indexed store.

The service turns the simulator from a foreground batch tool into a long-lived system
that many clients can drive concurrently:

* :mod:`repro.service.jobs` — the :class:`Job` model: an
  :class:`~repro.experiments.spec.ExperimentSpec` batch with priority, retry budget,
  timeout, provenance and an enforced ``queued → running → done/failed/cancelled``
  state machine;
* :mod:`repro.service.queue` — a crash-safe on-disk priority queue whose atomic
  rename-based claims and expiry leases let any number of worker processes pull
  safely;
* :mod:`repro.service.scheduler` — the worker pool: dedupes grid points against the
  store by spec hash, enforces per-job timeouts, honours cancellation, retries
  failures and attaches validation reports to failed jobs;
* :mod:`repro.service.store` — the SQLite :class:`ArtifactStore`, the indexed
  service-grade replacement of the flat JSONL result store (lossless migration
  included), plus job artifacts;
* :mod:`repro.service.events` — the append-only JSONL event log behind
  ``python -m repro watch``;
* :mod:`repro.service.bench` — the JSONL-vs-SQLite store benchmark
  (``python -m repro bench --suite store``).

The CLI front-ends are ``python -m repro {serve,submit,status,watch,cancel}``.
"""

from repro.service.bench import (
    DEFAULT_STORE_BENCH_ENTRIES,
    DEFAULT_STORE_BENCH_LOOKUPS,
    DEFAULT_STORE_BENCH_OUTPUT,
    format_store_bench,
    run_store_bench,
)
from repro.service.events import (
    EVENT_SCHEMA_VERSION,
    EVENTS_FILENAME,
    EventLog,
    format_event,
    tail_events,
)
from repro.service.jobs import (
    JOB_SCHEMA_VERSION,
    TERMINAL_STATES,
    Job,
    JobState,
    derive_lane,
    hash_lane,
    make_job,
    submit_provenance,
)
from repro.service.queue import (
    CLAIM_GRACE_S,
    DEFAULT_LEASE_S,
    DEFAULT_SERVICE_ROOT,
    JobQueue,
)
from repro.service.scheduler import DEFAULT_DRAIN_GRACE_S, DEFAULT_POLL_S, Scheduler
from repro.service.store import (
    DEFAULT_SQLITE_STORE_PATH,
    DEFAULT_STORE_SHARDS,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    ShardedStore,
    migrate_jsonl,
    open_store,
)

__all__ = [
    "ArtifactStore",
    "CLAIM_GRACE_S",
    "DEFAULT_DRAIN_GRACE_S",
    "DEFAULT_LEASE_S",
    "DEFAULT_POLL_S",
    "DEFAULT_SERVICE_ROOT",
    "DEFAULT_SQLITE_STORE_PATH",
    "DEFAULT_STORE_BENCH_ENTRIES",
    "DEFAULT_STORE_BENCH_LOOKUPS",
    "DEFAULT_STORE_BENCH_OUTPUT",
    "DEFAULT_STORE_SHARDS",
    "EVENTS_FILENAME",
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "JOB_SCHEMA_VERSION",
    "Job",
    "JobQueue",
    "JobState",
    "STORE_SCHEMA_VERSION",
    "Scheduler",
    "ShardedStore",
    "TERMINAL_STATES",
    "derive_lane",
    "format_event",
    "format_store_bench",
    "hash_lane",
    "make_job",
    "migrate_jsonl",
    "open_store",
    "run_store_bench",
    "submit_provenance",
    "tail_events",
]
