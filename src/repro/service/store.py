"""SQLite-backed experiment store: indexed results, job artifacts and JSONL migration.

:class:`ArtifactStore` is the service-grade replacement of the flat JSONL
:class:`~repro.experiments.runner.ResultStore`.  It satisfies the same
:class:`~repro.experiments.runner.StoreBackend` protocol — ``get``/``put`` keyed by
deterministic spec hash, identical cache-hit semantics — but keeps results in an
indexed SQLite database so:

* lookups stay O(log n) without loading the whole store at open time;
* many worker processes can read and write concurrently (WAL journal + busy timeout);
* results are queryable by spec schema version, scenario preset, workload and policy;
* jobs can attach arbitrary artifacts (e.g. a failed run's ``ValidationReport``).

Existing JSONL stores migrate losslessly via :func:`migrate_jsonl` — every line's spec
hash is recomputed and verified during the copy — and :func:`open_store` picks the
backend from the path suffix, auto-migrating a legacy sibling ``.jsonl`` file the first
time a SQLite store opens next to one.

For horizontally scaled fleets, :class:`ShardedStore` spreads the same contract over
N SQLite shard files keyed by spec hash, so many ``repro serve`` hosts mounting one
directory share a single logical store without serialising every write behind one
database lock.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
import warnings
from pathlib import Path

from repro.exceptions import ReproError, ServiceError
from repro.experiments.runner import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    ResultStore,
    StoreBackend,
)
from repro.experiments.spec import SPEC_SCHEMA_VERSION, ExperimentSpec

#: Bumped whenever the database layout changes.
STORE_SCHEMA_VERSION = 1

#: Default on-disk location of the SQLite store (the service-era default backend).
DEFAULT_SQLITE_STORE_PATH = Path(".repro-results") / "results.sqlite"

_TABLES = """
CREATE TABLE IF NOT EXISTS results (
    hash          TEXT PRIMARY KEY,
    spec_schema   INTEGER NOT NULL,
    result_schema INTEGER NOT NULL,
    policy        TEXT NOT NULL,
    workload      TEXT NOT NULL,
    setting       TEXT NOT NULL,
    num_devices   INTEGER NOT NULL,
    seed          INTEGER NOT NULL,
    preset        TEXT,
    payload       TEXT NOT NULL,
    created_at    REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_spec_schema ON results (spec_schema);
CREATE INDEX IF NOT EXISTS idx_results_scenario ON results (workload, policy, setting);
CREATE INDEX IF NOT EXISTS idx_results_preset ON results (preset);
CREATE TABLE IF NOT EXISTS artifacts (
    job_id     TEXT NOT NULL,
    name       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    payload    TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (job_id, name)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class ArtifactStore:
    """Concurrent, indexed result + artifact store over one SQLite file.

    Connections are per-process (re-opened transparently after ``fork``) and guarded by
    a lock so scheduler worker threads can share one store instance; cross-process
    writers are serialised by SQLite itself (WAL journal, 30 s busy timeout).
    """

    def __init__(self, path: str | os.PathLike, timeout_s: float = 30.0) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        with self._connection() as conn:
            conn.executescript(_TABLES)
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('store_schema', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )

    # ------------------------------------------------------------------ connection
    def _connection(self) -> sqlite3.Connection:
        # A forked worker must not reuse the parent's connection object; reconnect
        # whenever the pid changed since the connection was made.
        if self._conn is None or self._conn_pid != os.getpid():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=self.timeout_s, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}")
            self._conn = conn
            self._conn_pid = os.getpid()
        return self._conn

    def close(self) -> None:
        """Close the current process's connection (reopened lazily on next use)."""
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None

    # ------------------------------------------------------------------ results
    def get(self, spec: ExperimentSpec | str) -> ExperimentResult | None:
        """Look up the stored result for a spec (or raw spec hash); hits are ``cached``."""
        key = spec if isinstance(spec, str) else spec.spec_hash()
        with self._lock:
            row = (
                self._connection()
                .execute("SELECT payload FROM results WHERE hash = ?", (key,))
                .fetchone()
            )
        if row is None:
            return None
        return ExperimentResult.from_dict(json.loads(row[0]), cached=True)

    def put(self, result: ExperimentResult, preset: str | None = None) -> None:
        """Persist one result (idempotent: a re-computed point supersedes its row)."""
        payload = result.to_dict()
        scenario = result.spec.scenario
        with self._lock, self._connection() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results (hash, spec_schema, result_schema, "
                "policy, workload, setting, num_devices, seed, preset, payload, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    payload["hash"],
                    payload["spec"]["schema"],
                    RESULT_SCHEMA_VERSION,
                    result.spec.policy,
                    scenario.workload,
                    scenario.setting,
                    scenario.num_devices,
                    scenario.seed,
                    preset,
                    json.dumps(payload, sort_keys=True),
                    time.time(),
                ),
            )

    def __contains__(self, spec: ExperimentSpec | str) -> bool:
        key = spec if isinstance(spec, str) else spec.spec_hash()
        with self._lock:
            row = (
                self._connection()
                .execute("SELECT 1 FROM results WHERE hash = ?", (key,))
                .fetchone()
            )
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection().execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def iter_results(self):
        """Yield every current-schema ``(result, preset)`` pair, oldest first.

        This is the warehouse-ingest seam: the analytics layer drains the whole store
        through it without learning any SQL.  Rows written under an older spec schema
        are skipped with the usual :class:`~repro.experiments.runner.StaleResultWarning`
        (their hashes can never be looked up again anyway).
        """
        from repro.experiments.runner import StaleResultWarning

        with self._lock:
            rows = self._connection().execute(
                "SELECT payload, preset FROM results ORDER BY created_at, hash"
            ).fetchall()
        for payload, preset in rows:
            try:
                result = ExperimentResult.from_dict(json.loads(payload), cached=True)
            except ReproError as exc:
                warnings.warn(
                    f"result store {self.path}: skipping stale entry ({exc})",
                    StaleResultWarning,
                    stacklevel=2,
                )
                continue
            yield result, preset

    def count_by_schema(self) -> dict[int, int]:
        """Stored results per spec schema version (stale generations stay queryable)."""
        with self._lock:
            rows = self._connection().execute(
                "SELECT spec_schema, COUNT(*) FROM results GROUP BY spec_schema"
            ).fetchall()
        return {int(schema): int(count) for schema, count in rows}

    # ------------------------------------------------------------------ artifacts
    def put_artifact(self, job_id: str, name: str, kind: str, payload: dict) -> None:
        """Attach a JSON artifact to a job (e.g. a failed run's validation report)."""
        with self._lock, self._connection() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts (job_id, name, kind, payload, "
                "created_at) VALUES (?, ?, ?, ?, ?)",
                (job_id, name, kind, json.dumps(payload, sort_keys=True), time.time()),
            )

    def get_artifacts(self, job_id: str) -> list[dict]:
        """All artifacts attached to a job, as ``{name, kind, payload, created_at}``."""
        with self._lock:
            rows = self._connection().execute(
                "SELECT name, kind, payload, created_at FROM artifacts "
                "WHERE job_id = ? ORDER BY name",
                (job_id,),
            ).fetchall()
        return [
            {
                "name": name,
                "kind": kind,
                "payload": json.loads(payload),
                "created_at": created_at,
            }
            for name, kind, payload, created_at in rows
        ]

    # ------------------------------------------------------------------ meta
    def get_meta(self, key: str) -> str | None:
        """Read one meta marker (store schema, migration receipts)."""
        with self._lock:
            row = (
                self._connection()
                .execute("SELECT value FROM meta WHERE key = ?", (key,))
                .fetchone()
            )
        return None if row is None else str(row[0])

    def set_meta(self, key: str, value: str) -> None:
        """Write one meta marker."""
        with self._lock, self._connection() as conn:
            conn.execute("INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value))


#: Default shard count of a freshly-created :class:`ShardedStore`.
DEFAULT_STORE_SHARDS = 4


class ShardedStore:
    """One logical result store spread over N SQLite shard files in a directory.

    A single SQLite file serialises all writers behind one database lock; with a
    fleet of ``serve`` hosts hammering the same store, that lock becomes the
    bottleneck.  ``ShardedStore`` keeps the exact :class:`StoreBackend` contract but
    routes every result to ``shard-<k>.sqlite`` by its deterministic spec hash (and
    every job artifact by its job id), so unrelated writes land on unrelated files
    and contention drops by roughly the shard count.  Because routing is pure hash
    arithmetic, any number of hosts mounting the same directory agree on placement
    with no coordination beyond the ``shards.json`` manifest, which pins the shard
    count at creation time (resharding is a migration, not a config change).
    """

    MANIFEST = "shards.json"

    def __init__(
        self, root: str | os.PathLike, shards: int | None = None, timeout_s: float = 30.0
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        manifest_path = self.root / self.MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            pinned = int(manifest["shards"])
            if shards is not None and shards != pinned:
                raise ServiceError(
                    f"store {self.root} is pinned to {pinned} shard(s); requested "
                    f"{shards} (resharding requires a migration, not a flag)"
                )
            self.n_shards = pinned
        else:
            self.n_shards = shards if shards is not None else DEFAULT_STORE_SHARDS
            if self.n_shards < 1:
                raise ServiceError(f"shards must be >= 1, got {self.n_shards}")
            # Atomic create: racing hosts both write the same content, last wins.
            staging = self.root / f".{self.MANIFEST}.{os.getpid()}"
            staging.write_text(
                json.dumps({"shards": self.n_shards, "store_schema": STORE_SCHEMA_VERSION})
                + "\n",
                encoding="utf-8",
            )
            os.replace(staging, manifest_path)
        self.shards = tuple(
            ArtifactStore(self.root / f"shard-{index:02d}.sqlite", timeout_s=timeout_s)
            for index in range(self.n_shards)
        )

    # ------------------------------------------------------------------ routing
    def _shard_for(self, key: str) -> ArtifactStore:
        """Route a spec hash (hex) to its shard; non-hex keys hash structurally."""
        try:
            bucket = int(key[:8], 16)
        except ValueError:
            bucket = int.from_bytes(key.encode("utf-8")[:8], "big")
        return self.shards[bucket % self.n_shards]

    def _job_shard(self, job_id: str) -> ArtifactStore:
        digest = hashlib.sha1(job_id.encode("utf-8")).hexdigest()
        return self.shards[int(digest[:8], 16) % self.n_shards]

    # ------------------------------------------------------------------ results
    def get(self, spec: ExperimentSpec | str) -> ExperimentResult | None:
        key = spec if isinstance(spec, str) else spec.spec_hash()
        return self._shard_for(key).get(key)

    def put(self, result: ExperimentResult, preset: str | None = None) -> None:
        self._shard_for(result.spec.spec_hash()).put(result, preset=preset)

    def __contains__(self, spec: ExperimentSpec | str) -> bool:
        key = spec if isinstance(spec, str) else spec.spec_hash()
        return key in self._shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def iter_results(self):
        """Every shard's ``(result, preset)`` pairs (shard-major, oldest first)."""
        for shard in self.shards:
            yield from shard.iter_results()

    def count_by_schema(self) -> dict[int, int]:
        merged: dict[int, int] = {}
        for shard in self.shards:
            for schema, count in shard.count_by_schema().items():
                merged[schema] = merged.get(schema, 0) + count
        return merged

    # ------------------------------------------------------------------ artifacts
    def put_artifact(self, job_id: str, name: str, kind: str, payload: dict) -> None:
        self._job_shard(job_id).put_artifact(job_id, name, kind, payload)

    def get_artifacts(self, job_id: str) -> list[dict]:
        return self._job_shard(job_id).get_artifacts(job_id)

    # ------------------------------------------------------------------ meta
    def get_meta(self, key: str) -> str | None:
        """Meta markers live on shard 0 (they are store-wide, not per-hash)."""
        return self.shards[0].get_meta(key)

    def set_meta(self, key: str, value: str) -> None:
        self.shards[0].set_meta(key, value)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


def migrate_jsonl(
    jsonl_path: str | os.PathLike,
    store: "ArtifactStore | ShardedStore",
    verify_hashes: bool = True,
) -> int:
    """Copy every current-schema entry of a JSONL store into ``store``; returns the count.

    The copy is lossless and verified: each line is rebuilt through the normal
    :class:`ResultStore` loader (stale-schema lines are skipped with the usual warning)
    and, with ``verify_hashes``, the spec hash is recomputed from the rebuilt spec and
    checked against the stored key, so a corrupted line can never silently poison the
    indexed store.  Already-present hashes are left untouched, making migration
    idempotent and safe to run concurrently from several processes.
    """
    jsonl_path = Path(jsonl_path)
    if not jsonl_path.exists():
        return 0
    migrated = 0
    legacy = ResultStore(jsonl_path)
    for spec_hash, result in legacy.results().items():
        if verify_hashes and result.spec.spec_hash() != spec_hash:
            raise ServiceError(
                f"JSONL store {jsonl_path}: entry keyed {spec_hash[:12]} rebuilds to "
                f"spec hash {result.spec.spec_hash()[:12]}; refusing to migrate a "
                "store whose keys do not match their specs"
            )
        if spec_hash not in store:
            store.put(result)
            migrated += 1
    return migrated


def open_store(path: str | os.PathLike, shards: int | None = None) -> StoreBackend:
    """Open a result store, picking the backend from the path (and ``shards``).

    ``*.jsonl`` opens the legacy flat-file :class:`ResultStore`.  A directory
    carrying a ``shards.json`` manifest — or any path opened with ``shards`` set —
    opens (creating if needed) a :class:`ShardedStore`, the multi-host backend.
    Anything else opens a single-file SQLite :class:`ArtifactStore`; when it sits
    next to a legacy ``.jsonl`` sibling (the pre-service default layout), the
    sibling is migrated in on first open and a receipt recorded in ``meta`` so later
    opens skip the scan.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        if shards is not None:
            raise ServiceError(f"a .jsonl store cannot be sharded: {path}")
        return ResultStore(path)
    if shards is not None or (path.is_dir() and (path / ShardedStore.MANIFEST).exists()):
        return ShardedStore(path, shards=shards)
    store = ArtifactStore(path)
    legacy = path.with_suffix(".jsonl")
    receipt_key = f"migrated:{legacy.name}"
    if legacy.exists() and store.get_meta(receipt_key) is None:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # Stale legacy lines already warned once.
            migrated = migrate_jsonl(legacy, store)
        store.set_meta(
            receipt_key,
            json.dumps({"migrated": migrated, "at": time.time(), "spec_schema": SPEC_SCHEMA_VERSION}),
        )
    return store
