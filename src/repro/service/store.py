"""SQLite-backed experiment store: indexed results, job artifacts and JSONL migration.

:class:`ArtifactStore` is the service-grade replacement of the flat JSONL
:class:`~repro.experiments.runner.ResultStore`.  It satisfies the same
:class:`~repro.experiments.runner.StoreBackend` protocol — ``get``/``put`` keyed by
deterministic spec hash, identical cache-hit semantics — but keeps results in an
indexed SQLite database so:

* lookups stay O(log n) without loading the whole store at open time;
* many worker processes can read and write concurrently (WAL journal + busy timeout);
* results are queryable by spec schema version, scenario preset, workload and policy;
* jobs can attach arbitrary artifacts (e.g. a failed run's ``ValidationReport``).

Existing JSONL stores migrate losslessly via :func:`migrate_jsonl` — every line's spec
hash is recomputed and verified during the copy — and :func:`open_store` picks the
backend from the path suffix, auto-migrating a legacy sibling ``.jsonl`` file the first
time a SQLite store opens next to one.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import warnings
from pathlib import Path

from repro.exceptions import ReproError, ServiceError
from repro.experiments.runner import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    ResultStore,
    StoreBackend,
)
from repro.experiments.spec import SPEC_SCHEMA_VERSION, ExperimentSpec

#: Bumped whenever the database layout changes.
STORE_SCHEMA_VERSION = 1

#: Default on-disk location of the SQLite store (the service-era default backend).
DEFAULT_SQLITE_STORE_PATH = Path(".repro-results") / "results.sqlite"

_TABLES = """
CREATE TABLE IF NOT EXISTS results (
    hash          TEXT PRIMARY KEY,
    spec_schema   INTEGER NOT NULL,
    result_schema INTEGER NOT NULL,
    policy        TEXT NOT NULL,
    workload      TEXT NOT NULL,
    setting       TEXT NOT NULL,
    num_devices   INTEGER NOT NULL,
    seed          INTEGER NOT NULL,
    preset        TEXT,
    payload       TEXT NOT NULL,
    created_at    REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_spec_schema ON results (spec_schema);
CREATE INDEX IF NOT EXISTS idx_results_scenario ON results (workload, policy, setting);
CREATE INDEX IF NOT EXISTS idx_results_preset ON results (preset);
CREATE TABLE IF NOT EXISTS artifacts (
    job_id     TEXT NOT NULL,
    name       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    payload    TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (job_id, name)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class ArtifactStore:
    """Concurrent, indexed result + artifact store over one SQLite file.

    Connections are per-process (re-opened transparently after ``fork``) and guarded by
    a lock so scheduler worker threads can share one store instance; cross-process
    writers are serialised by SQLite itself (WAL journal, 30 s busy timeout).
    """

    def __init__(self, path: str | os.PathLike, timeout_s: float = 30.0) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        with self._connection() as conn:
            conn.executescript(_TABLES)
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('store_schema', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )

    # ------------------------------------------------------------------ connection
    def _connection(self) -> sqlite3.Connection:
        # A forked worker must not reuse the parent's connection object; reconnect
        # whenever the pid changed since the connection was made.
        if self._conn is None or self._conn_pid != os.getpid():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=self.timeout_s, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}")
            self._conn = conn
            self._conn_pid = os.getpid()
        return self._conn

    def close(self) -> None:
        """Close the current process's connection (reopened lazily on next use)."""
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None

    # ------------------------------------------------------------------ results
    def get(self, spec: ExperimentSpec | str) -> ExperimentResult | None:
        """Look up the stored result for a spec (or raw spec hash); hits are ``cached``."""
        key = spec if isinstance(spec, str) else spec.spec_hash()
        with self._lock:
            row = (
                self._connection()
                .execute("SELECT payload FROM results WHERE hash = ?", (key,))
                .fetchone()
            )
        if row is None:
            return None
        return ExperimentResult.from_dict(json.loads(row[0]), cached=True)

    def put(self, result: ExperimentResult, preset: str | None = None) -> None:
        """Persist one result (idempotent: a re-computed point supersedes its row)."""
        payload = result.to_dict()
        scenario = result.spec.scenario
        with self._lock, self._connection() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results (hash, spec_schema, result_schema, "
                "policy, workload, setting, num_devices, seed, preset, payload, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    payload["hash"],
                    payload["spec"]["schema"],
                    RESULT_SCHEMA_VERSION,
                    result.spec.policy,
                    scenario.workload,
                    scenario.setting,
                    scenario.num_devices,
                    scenario.seed,
                    preset,
                    json.dumps(payload, sort_keys=True),
                    time.time(),
                ),
            )

    def __contains__(self, spec: ExperimentSpec | str) -> bool:
        key = spec if isinstance(spec, str) else spec.spec_hash()
        with self._lock:
            row = (
                self._connection()
                .execute("SELECT 1 FROM results WHERE hash = ?", (key,))
                .fetchone()
            )
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection().execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def iter_results(self):
        """Yield every current-schema ``(result, preset)`` pair, oldest first.

        This is the warehouse-ingest seam: the analytics layer drains the whole store
        through it without learning any SQL.  Rows written under an older spec schema
        are skipped with the usual :class:`~repro.experiments.runner.StaleResultWarning`
        (their hashes can never be looked up again anyway).
        """
        from repro.experiments.runner import StaleResultWarning

        with self._lock:
            rows = self._connection().execute(
                "SELECT payload, preset FROM results ORDER BY created_at, hash"
            ).fetchall()
        for payload, preset in rows:
            try:
                result = ExperimentResult.from_dict(json.loads(payload), cached=True)
            except ReproError as exc:
                warnings.warn(
                    f"result store {self.path}: skipping stale entry ({exc})",
                    StaleResultWarning,
                    stacklevel=2,
                )
                continue
            yield result, preset

    def count_by_schema(self) -> dict[int, int]:
        """Stored results per spec schema version (stale generations stay queryable)."""
        with self._lock:
            rows = self._connection().execute(
                "SELECT spec_schema, COUNT(*) FROM results GROUP BY spec_schema"
            ).fetchall()
        return {int(schema): int(count) for schema, count in rows}

    # ------------------------------------------------------------------ artifacts
    def put_artifact(self, job_id: str, name: str, kind: str, payload: dict) -> None:
        """Attach a JSON artifact to a job (e.g. a failed run's validation report)."""
        with self._lock, self._connection() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts (job_id, name, kind, payload, "
                "created_at) VALUES (?, ?, ?, ?, ?)",
                (job_id, name, kind, json.dumps(payload, sort_keys=True), time.time()),
            )

    def get_artifacts(self, job_id: str) -> list[dict]:
        """All artifacts attached to a job, as ``{name, kind, payload, created_at}``."""
        with self._lock:
            rows = self._connection().execute(
                "SELECT name, kind, payload, created_at FROM artifacts "
                "WHERE job_id = ? ORDER BY name",
                (job_id,),
            ).fetchall()
        return [
            {
                "name": name,
                "kind": kind,
                "payload": json.loads(payload),
                "created_at": created_at,
            }
            for name, kind, payload, created_at in rows
        ]

    # ------------------------------------------------------------------ meta
    def get_meta(self, key: str) -> str | None:
        """Read one meta marker (store schema, migration receipts)."""
        with self._lock:
            row = (
                self._connection()
                .execute("SELECT value FROM meta WHERE key = ?", (key,))
                .fetchone()
            )
        return None if row is None else str(row[0])

    def set_meta(self, key: str, value: str) -> None:
        """Write one meta marker."""
        with self._lock, self._connection() as conn:
            conn.execute("INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value))


def migrate_jsonl(
    jsonl_path: str | os.PathLike, store: ArtifactStore, verify_hashes: bool = True
) -> int:
    """Copy every current-schema entry of a JSONL store into ``store``; returns the count.

    The copy is lossless and verified: each line is rebuilt through the normal
    :class:`ResultStore` loader (stale-schema lines are skipped with the usual warning)
    and, with ``verify_hashes``, the spec hash is recomputed from the rebuilt spec and
    checked against the stored key, so a corrupted line can never silently poison the
    indexed store.  Already-present hashes are left untouched, making migration
    idempotent and safe to run concurrently from several processes.
    """
    jsonl_path = Path(jsonl_path)
    if not jsonl_path.exists():
        return 0
    migrated = 0
    legacy = ResultStore(jsonl_path)
    for spec_hash, result in legacy.results().items():
        if verify_hashes and result.spec.spec_hash() != spec_hash:
            raise ServiceError(
                f"JSONL store {jsonl_path}: entry keyed {spec_hash[:12]} rebuilds to "
                f"spec hash {result.spec.spec_hash()[:12]}; refusing to migrate a "
                "store whose keys do not match their specs"
            )
        if spec_hash not in store:
            store.put(result)
            migrated += 1
    return migrated


def open_store(path: str | os.PathLike) -> StoreBackend:
    """Open a result store, picking the backend from the path suffix.

    ``*.jsonl`` opens the legacy flat-file :class:`ResultStore`; anything else opens
    (creating if needed) a SQLite :class:`ArtifactStore`.  When a SQLite store sits
    next to a legacy ``.jsonl`` sibling (the pre-service default layout), the sibling
    is migrated in on first open and a receipt recorded in ``meta`` so later opens
    skip the scan.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return ResultStore(path)
    store = ArtifactStore(path)
    legacy = path.with_suffix(".jsonl")
    receipt_key = f"migrated:{legacy.name}"
    if legacy.exists() and store.get_meta(receipt_key) is None:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # Stale legacy lines already warned once.
            migrated = migrate_jsonl(legacy, store)
        store.set_meta(
            receipt_key,
            json.dumps({"migrated": migrated, "at": time.time(), "spec_schema": SPEC_SCHEMA_VERSION}),
        )
    return store
