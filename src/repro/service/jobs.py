"""The durable job model of the orchestration service.

A :class:`Job` wraps one or more :class:`~repro.experiments.spec.ExperimentSpec` grid
points (a single spec, or an expanded :class:`~repro.experiments.spec.Sweep`) together
with everything the scheduler needs to run it unattended: a priority, a retry budget,
an optional wall-clock timeout, and the provenance of whoever submitted it.  Jobs move
through an explicit state machine::

    queued ──▶ running ──▶ done
       │          │  ├───▶ failed
       │          │  └───▶ cancelled
       │          └──────▶ queued      (retry after a crash or interrupt)
       ├─────────────────▶ cancelled
       └─────────────────▶ failed      (retry budget exhausted while queued)

Every transition is checked — an illegal move raises
:class:`~repro.exceptions.ServiceError` — and the whole job serialises to one JSON
object, which is exactly what the on-disk :class:`~repro.service.queue.JobQueue`
persists.
"""

from __future__ import annotations

import hashlib
import os
import platform
import socket
import time
import uuid
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ServiceError
from repro.experiments.spec import ExperimentSpec, Sweep

#: Bumped whenever the persisted job payload's shape changes.
#: v2: jobs carry a fair-scheduling ``lane`` (hashed from the submitter identity
#: unless given explicitly) and an integer ``weight`` hint for that lane.  v1
#: payloads are still readable; their jobs land in the lane their provenance hashes
#: to, with weight 1.
JOB_SCHEMA_VERSION = 2


class JobState(str, Enum):
    """Lifecycle states of a job; the string values are what the queue persists."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job can never leave.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})

#: Legal state-machine moves; everything else raises :class:`ServiceError`.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED, JobState.FAILED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.QUEUED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


def _new_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


def submit_provenance() -> dict:
    """Who/where/what submitted a job — recorded verbatim in the job payload."""
    return {
        "user": os.environ.get("USER") or os.environ.get("USERNAME") or "unknown",
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "python": platform.python_version(),
    }


def hash_lane(key: str) -> str:
    """Deterministic lane id for an arbitrary submitter key (``lane-`` + 8 hex chars).

    Hashing (rather than using the raw key) keeps lane ids filesystem- and
    label-safe regardless of what the submitter string contains, and gives every
    host that sees the same submitter the same lane without coordination.
    """
    return f"lane-{hashlib.sha1(key.encode('utf-8')).hexdigest()[:8]}"


def derive_lane(provenance: Mapping) -> str:
    """Default lane of a job: its submitter identity (``user@host``), hashed."""
    user = provenance.get("user", "unknown")
    host = provenance.get("host", "unknown")
    return hash_lane(f"{user}@{host}")


@dataclass
class Job:
    """One unit of schedulable work: a batch of experiment specs plus run policy.

    Jobs are mutable on purpose — the queue and scheduler advance ``state``,
    ``attempts``, the timestamps and the hit/executed counters in place and persist the
    updated payload after every move.
    """

    specs: tuple[ExperimentSpec, ...]
    job_id: str = field(default_factory=_new_job_id)
    label: str = ""
    lane: str = ""
    weight: int = 1
    priority: int = 0
    state: JobState = JobState.QUEUED
    retry_budget: int = 0
    attempts: int = 0
    validate: bool = False
    timeout_s: float | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    worker: str | None = None
    error: str | None = None
    cache_hits: int = 0
    executed: int = 0
    provenance: dict = field(default_factory=submit_provenance)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        if not self.specs:
            raise ServiceError("a job needs at least one experiment spec")
        if self.retry_budget < 0:
            raise ServiceError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServiceError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.weight < 1:
            raise ServiceError(f"weight must be >= 1, got {self.weight}")
        if not self.lane:
            self.lane = derive_lane(self.provenance)

    # ------------------------------------------------------------------ state machine
    def transition(self, new_state: JobState) -> "Job":
        """Advance the state machine in place; illegal moves raise ``ServiceError``."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        if new_state is JobState.RUNNING:
            self.started_at = time.time()
        elif new_state in TERMINAL_STATES:
            self.finished_at = time.time()
        elif new_state is JobState.QUEUED:  # requeued for retry
            self.worker = None
        return self

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    @property
    def retries_left(self) -> int:
        """Attempts still allowed after the ones already consumed (first run included)."""
        return max(0, self.retry_budget + 1 - self.attempts)

    # ------------------------------------------------------------------ identity
    @property
    def spec_hashes(self) -> tuple[str, ...]:
        """Deterministic content hashes of the job's grid points (store cache keys)."""
        return tuple(spec.spec_hash() for spec in self.specs)

    # ------------------------------------------------------------------ serialisation
    def to_dict(self) -> dict:
        """JSON-serialisable payload (the queue's on-disk job body)."""
        return {
            "schema": JOB_SCHEMA_VERSION,
            "job_id": self.job_id,
            "label": self.label,
            "lane": self.lane,
            "weight": self.weight,
            "priority": self.priority,
            "state": self.state.value,
            "specs": [spec.to_dict() for spec in self.specs],
            "spec_hashes": list(self.spec_hashes),
            "retry_budget": self.retry_budget,
            "attempts": self.attempts,
            "validate": self.validate,
            "timeout_s": self.timeout_s,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker": self.worker,
            "error": self.error,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Job":
        """Rebuild a job from :meth:`to_dict` output."""
        schema = payload.get("schema", JOB_SCHEMA_VERSION)
        # v1 payloads (no lane/weight) are read with the same defaults __post_init__
        # applies, so mixed-version queues keep working during a rolling upgrade.
        if not isinstance(schema, int) or schema < 1 or schema > JOB_SCHEMA_VERSION:
            raise ServiceError(
                f"unsupported job schema {schema!r} (this version reads 1..{JOB_SCHEMA_VERSION})"
            )
        try:
            return cls(
                specs=tuple(ExperimentSpec.from_dict(spec) for spec in payload["specs"]),
                job_id=payload["job_id"],
                label=payload.get("label", ""),
                lane=payload.get("lane", ""),
                weight=payload.get("weight", 1),
                priority=payload.get("priority", 0),
                state=JobState(payload["state"]),
                retry_budget=payload.get("retry_budget", 0),
                attempts=payload.get("attempts", 0),
                validate=payload.get("validate", False),
                timeout_s=payload.get("timeout_s"),
                submitted_at=payload["submitted_at"],
                started_at=payload.get("started_at"),
                finished_at=payload.get("finished_at"),
                worker=payload.get("worker"),
                error=payload.get("error"),
                cache_hits=payload.get("cache_hits", 0),
                executed=payload.get("executed", 0),
                provenance=dict(payload.get("provenance", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"corrupt job payload: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"Job({self.job_id}, {self.state.value}, lane={self.lane}, "
            f"priority={self.priority}, specs={len(self.specs)}, attempts={self.attempts})"
        )


def make_job(
    experiments: ExperimentSpec | Sweep | Iterable[ExperimentSpec],
    *,
    label: str = "",
    lane: str = "",
    weight: int = 1,
    priority: int = 0,
    retry_budget: int = 0,
    validate: bool = False,
    timeout_s: float | None = None,
) -> Job:
    """Build a validated job from a spec, a sweep, or any iterable of specs.

    Sweeps are expanded eagerly — the queue persists concrete grid points, so a worker
    never needs the sweep definition — and every spec is registry-validated here, at
    submission time, rather than failing later inside a worker.
    """
    if isinstance(experiments, ExperimentSpec):
        specs: tuple[ExperimentSpec, ...] = (experiments.validate(),)
    elif isinstance(experiments, Sweep):
        specs = tuple(experiments.expand())
    else:
        specs = tuple(spec.validate() for spec in experiments)
    return Job(
        specs=specs,
        label=label,
        lane=lane,
        weight=weight,
        priority=priority,
        retry_budget=retry_budget,
        validate=validate,
        timeout_s=timeout_s,
    )
