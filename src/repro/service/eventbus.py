"""Push-based fan-out over the event log: in-process subscriptions plus HTTP.

The :class:`EventBus` runs one follower thread that tails ``events.jsonl`` with
durable cursors (so it sees the appends of *every* process sharing the service
root, not just its own) and fans each event out to in-process subscribers over
bounded queues.  A subscriber that stops draining its queue is dropped with a
synthetic ``subscriber_lagged`` event rather than ever blocking the follower —
the scheduler's emit path never waits on a slow dashboard.

:class:`EventPlaneServer` exposes the bus over a stdlib HTTP thread in the style
of :class:`repro.telemetry.MetricsServer`:

* ``GET /events?cursor=N&job=...&event=...&timeout=30`` — long-poll: replies
  immediately when events past ``cursor`` exist, otherwise parks on the bus until
  one arrives or the timeout lapses.  The JSON body carries the new resume cursor.
* ``GET /events/stream?cursor=N&job=...`` — Server-Sent Events; each frame's
  ``id:`` is the event's cursor so ``Last-Event-ID`` reconnect semantics work.

``repro events sub --http`` and ``repro watch -f --http`` are thin clients of the
long-poll endpoint.
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Iterable, Iterator
from urllib.parse import parse_qs, urlsplit

from repro import telemetry
from repro.service.events import EventIndex, event_matches, read_events_since, tail_events

__all__ = [
    "DEFAULT_MAX_SUBSCRIBER_QUEUE",
    "EventBus",
    "EventPlaneServer",
    "Subscription",
]

#: Events buffered per subscriber before it is declared lagged and dropped.
DEFAULT_MAX_SUBSCRIBER_QUEUE = 1024

#: Long-poll timeouts are clamped to this many seconds.
MAX_LONG_POLL_S = 300.0

#: Most events one long-poll response will carry (the cursor lets callers page).
DEFAULT_MAX_BATCH = 500


class Subscription:
    """One bounded in-process event feed handed out by :meth:`EventBus.subscribe`."""

    def __init__(
        self,
        bus: "EventBus",
        sub_id: int,
        job: str | None,
        events: tuple[str, ...] | None,
        max_queue: int,
    ) -> None:
        self.bus = bus
        self.sub_id = sub_id
        self.job = job
        self.events = events
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self.lagged = False
        self.closed = False

    def _offer(self, payload: dict) -> bool:
        """Enqueue without blocking; a full queue marks the subscriber lagged."""
        try:
            self._queue.put_nowait(payload)
            return True
        except queue.Full:
            self.lagged = True
            return False

    def get(self, timeout: float | None = None) -> dict | None:
        """Pop the next event (``None`` on timeout or when the feed is exhausted)."""
        if self.closed and self._queue.empty():
            return self._pop_lagged_marker()
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return self._pop_lagged_marker() if self.closed else None

    def _pop_lagged_marker(self) -> dict | None:
        if self.lagged:
            self.lagged = False  # Deliver the marker once.
            return {"event": "subscriber_lagged", "ts": time.time()}
        return None

    def stream(self, stop=None, poll_s: float = 0.2) -> Iterator[dict]:
        """Yield events until the feed closes; a lagged feed ends with the marker."""
        while True:
            payload = self.get(timeout=poll_s)
            if payload is not None:
                yield payload
                if payload.get("event") == "subscriber_lagged":
                    return
            elif self.closed and self._queue.empty():
                return
            if stop is not None and stop():
                return

    def close(self) -> None:
        self.bus.unsubscribe(self)


class EventBus:
    """Single-follower fan-out over one event log, with durable-cursor tracking.

    The follower reads via :func:`read_events_since`, so each delivered payload
    carries its ``cursor`` and :meth:`wait_for` can park long-poll handlers until
    the bus has consumed past a given cursor.  ``since_cursor=None`` starts at the
    current end of the log (subscribers see only new events); pass ``0`` to replay
    everything through the bus.
    """

    def __init__(
        self,
        path: str | Path,
        poll_s: float = 0.2,
        since_cursor: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.poll_s = poll_s
        self._since_cursor = since_cursor
        self._cursor = 0
        self._subscribers: list[Subscription] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._advanced = threading.Condition(self._lock)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def cursor(self) -> int:
        """The highest cursor the follower has consumed so far."""
        with self._lock:
            return self._cursor

    def start(self) -> "EventBus":
        if self._thread is not None:
            return self
        if self._since_cursor is None:
            # Default: subscribers get *new* events, not a replay of the history.
            self._cursor = EventIndex(self.path).refresh(save=False).count
        else:
            self._cursor = self._since_cursor
        self._thread = threading.Thread(target=self._follow, name="repro-event-bus", daemon=True)
        self._thread.start()
        return self

    def poke(self) -> None:
        """Wake the follower immediately (called by ``EventLog.emit`` in-process)."""
        self._wake.set()

    def subscribe(
        self,
        job: str | None = None,
        events: Iterable[str] | None = None,
        max_queue: int = DEFAULT_MAX_SUBSCRIBER_QUEUE,
    ) -> Subscription:
        subscription = Subscription(
            self,
            next(self._ids),
            job,
            tuple(events) if events else None,
            max_queue,
        )
        with self._lock:
            self._subscribers.append(subscription)
            count = len(self._subscribers)
        self._set_subscriber_gauge(count)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.closed = True
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                return
            count = len(self._subscribers)
        self._set_subscriber_gauge(count)

    def wait_for(self, cursor: int, timeout: float | None = None) -> int:
        """Block until the bus has consumed past ``cursor``; returns its cursor."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._advanced:
            while self._cursor <= cursor and not self._stop.is_set():
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._advanced.wait(remaining if remaining is not None else 1.0)
            return self._cursor

    def close(self) -> None:
        self._stop.set()
        self._wake.set()
        with self._advanced:
            self._advanced.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            leftovers = list(self._subscribers)
        for subscription in leftovers:
            self.unsubscribe(subscription)

    # -- follower ----------------------------------------------------------

    def _follow(self) -> None:
        while not self._stop.is_set():
            batch, last = read_events_since(self.path, self.cursor)
            if last > self.cursor or batch:
                self._publish(batch, last)
            else:
                self._wake.wait(self.poll_s)
                self._wake.clear()

    def _publish(self, batch: list[dict], last: int) -> None:
        with self._lock:
            targets = list(self._subscribers)
        dropped: list[Subscription] = []
        for payload in batch:
            for subscription in targets:
                if subscription in dropped or subscription.closed:
                    continue
                if not event_matches(payload, job=subscription.job, events=subscription.events):
                    continue
                if not subscription._offer(payload):
                    dropped.append(subscription)
        for subscription in dropped:
            self.unsubscribe(subscription)
            registry = telemetry.get_registry()
            if registry.enabled:
                registry.counter(
                    "repro_subscriber_lagged_total",
                    help="In-process subscribers dropped for not draining their queue.",
                ).inc()
        with self._advanced:
            self._cursor = last
            self._advanced.notify_all()

    def _set_subscriber_gauge(self, count: int) -> None:
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.gauge(
                "repro_event_subscribers",
                help="Live in-process event-bus subscribers.",
            ).set(float(count))


class EventPlaneServer:
    """Long-poll + SSE exposition of an :class:`EventBus` (stdlib HTTP thread)."""

    def __init__(
        self,
        bus: EventBus,
        port: int = 0,
        host: str = "127.0.0.1",
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        self.bus = bus
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                parts = urlsplit(self.path)
                route = parts.path.rstrip("/") or "/"
                params = parse_qs(parts.query)
                try:
                    if route in ("/", "/events"):
                        outer._handle_long_poll(self, params)
                    elif route == "/events/stream":
                        outer._handle_stream(self, params)
                    elif route == "/healthz":
                        outer._respond(self, 200, b"ok\n", "text/plain; charset=utf-8")
                    else:
                        self.send_error(404, "unknown path (try /events)")
                except (BrokenPipeError, ConnectionResetError):
                    pass  # Client went away mid-write: routine for long-poll/SSE.

            def log_message(self, *args):  # noqa: A002 - silence per-request logging
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self.max_batch = max_batch
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-event-plane", daemon=True
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/events"

    def start(self) -> "EventPlaneServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    # -- handlers ----------------------------------------------------------

    @staticmethod
    def _param(params: dict, key: str, default=None):
        values = params.get(key)
        return values[0] if values else default

    def _filters(self, params: dict) -> tuple[int, str | None, tuple[str, ...] | None, int]:
        try:
            cursor = int(self._param(params, "cursor", 0))
        except ValueError:
            cursor = 0
        job = self._param(params, "job")
        events = tuple(params["event"]) if params.get("event") else None
        try:
            limit = min(int(self._param(params, "limit", self.max_batch)), self.max_batch)
        except ValueError:
            limit = self.max_batch
        return max(cursor, 0), job, events, max(limit, 1)

    def _respond(self, handler, status: int, body: bytes, content_type: str) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def _handle_long_poll(self, handler, params: dict) -> None:
        cursor, job, events, limit = self._filters(params)
        try:
            timeout = float(self._param(params, "timeout", 0.0))
        except ValueError:
            timeout = 0.0
        timeout = min(max(timeout, 0.0), MAX_LONG_POLL_S)
        deadline = time.monotonic() + timeout
        while True:
            batch, last = read_events_since(
                self.bus.path, cursor, job=job, events=events, limit=limit
            )
            remaining = deadline - time.monotonic()
            if batch or remaining <= 0:
                break
            # Nothing matched yet: park on the bus until it consumes past what we
            # just read (any later event may match), then re-read from there.
            cursor = last
            self.bus.wait_for(last, timeout=remaining)
        body = json.dumps({"cursor": last, "events": batch}, sort_keys=True).encode("utf-8")
        self._respond(handler, 200, body, "application/json")

    def _handle_stream(self, handler, params: dict) -> None:
        cursor, job, events, _ = self._filters(params)
        # Subscribe *before* the catch-up read: anything emitted during catch-up is
        # queued, so the switchover from file replay to live feed has no gap.
        subscription = self.bus.subscribe(job=job, events=events)
        try:
            handler.send_response(200)
            handler.send_header("Content-Type", "text/event-stream")
            handler.send_header("Cache-Control", "no-cache")
            handler.end_headers()
            last = cursor
            backlog, caught_up = read_events_since(self.bus.path, cursor, job=job, events=events)
            for payload in backlog:
                last = payload["cursor"]
                self._write_sse(handler, payload)
            last = max(last, caught_up)
            while not subscription.closed or not subscription._queue.empty():
                payload = subscription.get(timeout=1.0)
                if payload is None:
                    continue
                if payload.get("event") == "subscriber_lagged":
                    self._write_sse(handler, payload)
                    return
                if payload.get("cursor", 0) <= last:
                    continue  # Queued during catch-up and already replayed from file.
                last = payload["cursor"]
                self._write_sse(handler, payload)
        finally:
            subscription.close()

    @staticmethod
    def _write_sse(handler, payload: dict) -> None:
        frame = ""
        if "cursor" in payload:
            frame += f"id: {payload['cursor']}\n"
        frame += f"data: {json.dumps(payload, sort_keys=True)}\n\n"
        handler.wfile.write(frame.encode("utf-8"))
        handler.wfile.flush()


def follow_events(
    path: str | Path,
    since_cursor: int = 0,
    job: str | None = None,
    events: Iterable[str] | None = None,
    stop=None,
    poll_s: float = 0.2,
) -> Iterator[dict]:
    """File-tail convenience used by the CLI when no HTTP endpoint is given."""
    for payload in tail_events(path, follow=True, poll_s=poll_s, stop=stop, since_cursor=since_cursor):
        if event_matches(payload, job=job, events=events):
            yield payload
