"""Structured progress events: an append-only JSONL log plus a ``tail``-able stream.

Every scheduler action — job claimed, grid point served from cache, worker finished,
retry, failure — lands as one JSON line in ``<service root>/events.jsonl``.  Lines are
written with a single ``write()`` call well under the pipe-buffer atomicity limit, so
any number of worker processes can append to the same log without interleaving.

``python -m repro watch`` is a thin wrapper over :func:`tail_events`, which replays the
existing log and can then follow the file as it grows (like ``tail -f``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Callable, Iterator
from pathlib import Path

#: Bumped whenever the event line shape changes.
#: v2: events carrying a ``job_id`` gain a per-job monotone ``seq`` counter, and the
#: scheduler stamps terminal job events with a monotonic ``dur_s`` (claim-to-finish,
#: measured with ``perf_counter`` so it survives wall-clock steps).
EVENT_SCHEMA_VERSION = 2

#: Default event-log filename inside the service root.
EVENTS_FILENAME = "events.jsonl"


class EventLog:
    """Append-only JSONL event sink, safe for concurrent multi-process writers."""

    def __init__(self, path: str | os.PathLike, echo: bool = False) -> None:
        self.path = Path(path)
        #: When set, every emitted event is also printed (the ``serve`` foreground view).
        self.echo = echo
        # Per-job sequence counters (schema v2).  Scoped to this EventLog instance —
        # the scheduler's worker threads share one log, so the counter covers every
        # event a job generates within one scheduler process.
        self._seq: dict[str, int] = {}
        self._seq_lock = threading.Lock()

    def emit(self, event: str, job_id: str | None = None, worker: str | None = None, **data) -> dict:
        """Append one event line (and echo it when configured); returns the payload."""
        payload: dict = {"schema": EVENT_SCHEMA_VERSION, "ts": time.time(), "event": event}
        if job_id is not None:
            payload["job_id"] = job_id
            with self._seq_lock:
                seq = self._seq.get(job_id, 0) + 1
                self._seq[job_id] = seq
            payload["seq"] = seq
        if worker is not None:
            payload["worker"] = worker
        payload.update(data)
        line = json.dumps(payload, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")  # One write call: concurrent appenders never interleave.
        if self.echo:
            print(format_event(payload), flush=True)
        return payload

    def read(self) -> list[dict]:
        """Parse the whole log (skipping any torn trailing line)."""
        return list(tail_events(self.path, follow=False))


def tail_events(
    path: str | os.PathLike,
    follow: bool = False,
    poll_s: float = 0.2,
    stop: Callable[[], bool] | None = None,
) -> Iterator[dict]:
    """Yield parsed events from a JSONL log; with ``follow`` keep watching for growth.

    A partially-written final line (no trailing newline yet) is held back until its
    newline arrives.  ``stop`` is polled between reads so callers can end a follow.
    """
    path = Path(path)
    buffer = ""
    offset = 0
    while True:
        if path.exists():
            with path.open("r", encoding="utf-8") as handle:
                handle.seek(offset)
                buffer += handle.read()
                offset = handle.tell()
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                if line.strip():
                    try:
                        yield json.loads(line)
                    except ValueError:
                        continue  # Torn or foreign line: skip rather than kill the tail.
        if not follow or (stop is not None and stop()):
            return
        time.sleep(poll_s)


def format_event(payload: dict) -> str:
    """One-line human rendering of an event for ``watch`` and the ``serve`` console."""
    clock = time.strftime("%H:%M:%S", time.localtime(payload.get("ts", 0.0)))
    parts = [clock, f"{payload.get('event', '?'):<14}"]
    if "job_id" in payload:
        parts.append(payload["job_id"])
    if "worker" in payload:
        parts.append(f"[{payload['worker']}]")
    extras = {
        key: value
        for key, value in payload.items()
        if key not in ("schema", "ts", "event", "job_id", "worker")
    }
    if extras:
        parts.append(" ".join(f"{key}={value}" for key, value in sorted(extras.items())))
    return "  ".join(parts)
