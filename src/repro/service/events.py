"""Structured progress events: an append-only JSONL log with durable cursors.

Every scheduler action — job claimed, grid point served from cache, worker finished,
retry, failure — lands as one JSON line in ``<service root>/events.jsonl``.  Lines are
written with a single ``write()`` call well under the pipe-buffer atomicity limit, so
any number of worker processes can append to the same log without interleaving.

**Durable cursors.**  Every line in the log has a global, monotonic *cursor*: its
1-based position in the file.  Cursors are not written into the lines — a line's
position *is* its cursor, so concurrent multi-process appenders need no coordination
and the ordering is exactly the file ordering every reader already sees.  A compact
sidecar index (:class:`EventIndex`, ``events.jsonl.idx``) maps cursors to byte offsets
with sparse checkpoints so a consumer resuming from ``since_cursor=N`` seeks instead
of re-reading the whole log; the index is derived data, rebuilt whenever it is stale
or the log was rotated.

**File-backed seq counters.**  Events carrying a ``job_id`` get a per-job monotone
``seq`` minted by :class:`SeqCounter` from a shared counter file next to the log
(advisory-locked read-modify-replace), so two ``serve`` hosts appending into one
service root can never mint duplicate seqs for the same job.

``python -m repro watch`` is a thin wrapper over :func:`tail_events`, which replays
the existing log and can then follow the file as it grows (like ``tail -f``); the
long-poll/SSE endpoints of :mod:`repro.service.eventbus` and the webhook dispatcher
of :mod:`repro.service.webhooks` are built on :func:`read_events_since`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections.abc import Callable, Iterable, Iterator
from pathlib import Path

from repro import telemetry

try:  # POSIX: advisory lock released automatically if the holder dies.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

#: Bumped whenever the event line shape (or its cross-process guarantees) change.
#: v2: events carrying a ``job_id`` gain a per-job monotone ``seq`` counter, and the
#: scheduler stamps terminal job events with a monotonic ``dur_s``.
#: v3: ``seq`` is minted from a file-backed counter shared by every writer of one
#: log, so seqs stay unique and monotone across *processes and hosts*, not just
#: within one scheduler; readers additionally learn each event's durable ``cursor``
#: (assigned from file position at read time, never written into the line).
EVENT_SCHEMA_VERSION = 3

#: Default event-log filename inside the service root.
EVENTS_FILENAME = "events.jsonl"

#: Sidecar suffix of the cursor index (``events.jsonl`` -> ``events.jsonl.idx``).
INDEX_SUFFIX = ".idx"

#: Sidecar suffix of the seq-counter directory (``events.jsonl.seq/``).
SEQ_DIR_SUFFIX = ".seq"

INDEX_SCHEMA_VERSION = 1

#: A byte-offset checkpoint is kept every this-many lines; resuming from a cursor
#: scans at most this many lines past the nearest checkpoint.
INDEX_CHECKPOINT_EVERY = 256


class _FileLock:
    """Advisory exclusive lock on a path (``flock`` where available).

    On platforms without ``fcntl`` the fallback is an ``O_EXCL`` spin-lock file with
    stale-breaking by mtime — slower, but the POSIX path is the production one.
    """

    def __init__(self, path: Path, stale_s: float = 10.0) -> None:
        self.path = path
        self.stale_s = stale_s
        self._handle = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self._handle = open(self.path, "a+", encoding="utf-8")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            return self
        while True:  # pragma: no cover - exercised only off-POSIX
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return self
            except FileExistsError:
                try:
                    if time.time() - self.path.stat().st_mtime > self.stale_s:
                        self.path.unlink()
                        continue
                except FileNotFoundError:
                    continue
                time.sleep(0.01)

    def __exit__(self, *exc_info) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
        else:  # pragma: no cover - exercised only off-POSIX
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass


class SeqCounter:
    """File-backed per-job sequence counters shared by every writer of one log.

    ``next(job_id)`` is an atomic read-increment-replace under an advisory lock:
    the counter value lands via a unique temp file + ``os.replace``, so a crash at
    any point leaves either the old or the new value, never a torn one, and the
    lock itself is released by the OS if the holder dies.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def _counter_path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.count"

    def next(self, job_id: str) -> int:
        """Mint the next seq for ``job_id`` (1-based, unique across processes)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        counter = self._counter_path(job_id)
        with _FileLock(self.directory / f"{job_id}.lock"):
            try:
                current = int(counter.read_text(encoding="utf-8").strip() or 0)
            except (FileNotFoundError, ValueError):
                current = 0
            seq = current + 1
            staging = self.directory / f".{job_id}.{uuid.uuid4().hex}.tmp"
            staging.write_text(f"{seq}\n", encoding="utf-8")
            os.replace(staging, counter)
        return seq

    def peek(self, job_id: str) -> int:
        """The last minted seq for ``job_id`` (0 when none was minted yet)."""
        try:
            return int(self._counter_path(job_id).read_text(encoding="utf-8").strip() or 0)
        except (FileNotFoundError, ValueError):
            return 0


class EventIndex:
    """Compact cursor → byte-offset index over one ``events.jsonl``.

    The index holds the number of complete lines (``count``), the byte length they
    cover (``indexed_bytes``) and a sparse checkpoint list ``[(cursor, offset)]``
    meaning *the line with cursor ``cursor + 1`` starts at byte ``offset``*.  It is
    pure derived data: :meth:`refresh` extends it incrementally as the log grows and
    rebuilds it from scratch whenever it is stale — missing, corrupt, or describing
    more bytes than the file holds (log rotated/truncated).  Concurrent refreshers
    race benignly (atomic replace, last writer wins).
    """

    def __init__(self, events_path: str | os.PathLike) -> None:
        self.events_path = Path(events_path)
        self.path = self.events_path.with_name(self.events_path.name + INDEX_SUFFIX)
        self.indexed_bytes = 0
        self.count = 0
        self.checkpoints: list[tuple[int, int]] = [(0, 0)]
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            if payload.get("schema") != INDEX_SCHEMA_VERSION:
                raise ValueError(f"unknown index schema {payload.get('schema')!r}")
            self.indexed_bytes = int(payload["indexed_bytes"])
            self.count = int(payload["count"])
            self.checkpoints = [(int(c), int(o)) for c, o in payload["checkpoints"]]
            if not self.checkpoints or self.checkpoints[0] != (0, 0):
                self.checkpoints.insert(0, (0, 0))
        except (OSError, ValueError, KeyError, TypeError):
            self._reset()

    def _reset(self) -> None:
        self.indexed_bytes = 0
        self.count = 0
        self.checkpoints = [(0, 0)]

    def refresh(self, save: bool = True) -> "EventIndex":
        """Bring the index up to date with the file; rebuild if the log shrank."""
        try:
            size = self.events_path.stat().st_size
        except FileNotFoundError:
            size = 0
        if size < self.indexed_bytes:  # Rotated/truncated: the old index is a lie.
            self._reset()
        if size == self.indexed_bytes:
            return self
        with self.events_path.open("rb") as handle:
            handle.seek(self.indexed_bytes)
            data = handle.read(size - self.indexed_bytes)
        base = self.indexed_bytes
        position = 0
        while True:
            newline = data.find(b"\n", position)
            if newline < 0:
                break  # Trailing partial line: not indexed until its newline lands.
            position = newline + 1
            self.count += 1
            self.indexed_bytes = base + position
            if self.count % INDEX_CHECKPOINT_EVERY == 0:
                self.checkpoints.append((self.count, self.indexed_bytes))
        if save:
            self.save()
        return self

    def save(self) -> None:
        """Atomically persist the index (best effort — it is derived data)."""
        payload = {
            "schema": INDEX_SCHEMA_VERSION,
            "indexed_bytes": self.indexed_bytes,
            "count": self.count,
            "checkpoints": self.checkpoints,
        }
        staging = self.path.with_name(
            f".{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            staging.write_text(json.dumps(payload) + "\n", encoding="utf-8")
            os.replace(staging, self.path)
        except OSError:  # pragma: no cover - read-only roots must not kill readers
            pass

    def checkpoint_for(self, cursor: int) -> tuple[int, int]:
        """Greatest ``(cursor, offset)`` checkpoint at or before ``cursor``."""
        best = (0, 0)
        for checkpoint_cursor, offset in self.checkpoints:
            if checkpoint_cursor <= cursor and checkpoint_cursor >= best[0]:
                best = (checkpoint_cursor, offset)
        return best


def event_matches(
    payload: dict, job: str | None = None, events: Iterable[str] | None = None
) -> bool:
    """True when an event passes the (optional) job-id and event-type filters."""
    if job is not None and payload.get("job_id") != job:
        return False
    if events:
        return payload.get("event") in tuple(events)
    return True


class EventLog:
    """Append-only JSONL event sink, safe for concurrent multi-process writers."""

    def __init__(
        self,
        path: str | os.PathLike,
        echo: bool = False,
        seq_dir: str | os.PathLike | None = None,
    ) -> None:
        self.path = Path(path)
        #: When set, every emitted event is also printed (the ``serve`` foreground view).
        self.echo = echo
        # Per-job seq counters live in a sidecar directory next to the log so every
        # process (and host) appending to this log shares one counter per job.
        self.seq = SeqCounter(
            seq_dir if seq_dir is not None
            else self.path.with_name(self.path.name + SEQ_DIR_SUFFIX)
        )
        self._bus = None

    def attach_bus(self, bus) -> None:
        """Wire an in-process :class:`~repro.service.eventbus.EventBus` wake-up.

        ``emit`` stays non-blocking either way — the bus is only *poked* so its
        follower thread picks the new line up immediately instead of at the next
        poll tick.
        """
        self._bus = bus

    def emit(self, event: str, job_id: str | None = None, worker: str | None = None, **data) -> dict:
        """Append one event line (and echo it when configured); returns the payload."""
        payload: dict = {"schema": EVENT_SCHEMA_VERSION, "ts": time.time(), "event": event}
        if job_id is not None:
            payload["job_id"] = job_id
            payload["seq"] = self.seq.next(job_id)
        if worker is not None:
            payload["worker"] = worker
        payload.update(data)
        line = json.dumps(payload, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")  # One write call: concurrent appenders never interleave.
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_events_emitted_total",
                help="Events appended to the service log, by type.",
            ).inc(event=event)
        if self._bus is not None:
            self._bus.poke()
        if self.echo:
            print(format_event(payload), flush=True)
        return payload

    def read(self) -> list[dict]:
        """Parse the whole log (skipping any torn trailing line)."""
        return list(tail_events(self.path, follow=False))


def tail_events(
    path: str | os.PathLike,
    follow: bool = False,
    poll_s: float = 0.2,
    stop: Callable[[], bool] | None = None,
    since_cursor: int | None = None,
    wait: Callable[[float], None] | None = None,
) -> Iterator[dict]:
    """Yield parsed events from a JSONL log; with ``follow`` keep watching for growth.

    With ``since_cursor=N`` only events *after* cursor ``N`` are yielded, each
    annotated with its ``"cursor"`` (its 1-based line position — the durable resume
    token); the :class:`EventIndex` sidecar is used to seek instead of re-reading
    the whole file.  ``since_cursor=0`` replays everything.  If the log was rotated
    (fewer lines than the requested cursor, or it shrinks mid-follow) the tail
    resets to the top of the new file instead of silently yielding nothing forever.

    A partially-written final line (no trailing newline yet) is held back until its
    newline arrives.  ``stop`` is polled between reads so callers can end a follow;
    ``wait`` replaces the inter-poll sleep (the event bus passes an interruptible
    wait so an in-process emit wakes the tail immediately).
    """
    path = Path(path)
    buffer = ""
    with_cursor = since_cursor is not None
    skip_below = since_cursor or 0
    cursor = 0
    offset = 0
    if with_cursor and skip_below > 0:
        index = EventIndex(path).refresh()
        if skip_below > index.count:
            # The log holds fewer lines than the consumer has seen: it was rotated.
            # Resume from the top of the new file rather than waiting forever.
            skip_below = 0
        else:
            cursor, offset = index.checkpoint_for(skip_below)
    while True:
        if path.exists():
            try:
                size = path.stat().st_size
            except FileNotFoundError:
                size = 0
            if size < offset:
                # Log rotated/truncated under us: restart from the top of the new
                # file (and stop skipping — the old cursors no longer exist).
                buffer = ""
                cursor = 0
                offset = 0
                skip_below = 0
            with path.open("r", encoding="utf-8") as handle:
                handle.seek(offset)
                buffer += handle.read()
                offset = handle.tell()
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                cursor += 1
                if cursor <= skip_below or not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue  # Torn or foreign line: skip rather than kill the tail.
                if with_cursor:
                    payload["cursor"] = cursor
                yield payload
        if not follow or (stop is not None and stop()):
            return
        (wait if wait is not None else time.sleep)(poll_s)


def read_events_since(
    path: str | os.PathLike,
    cursor: int,
    job: str | None = None,
    events: Iterable[str] | None = None,
    limit: int | None = None,
) -> tuple[list[dict], int]:
    """One non-blocking read: ``(matching events after cursor, new resume cursor)``.

    The returned cursor covers every line *consumed*, matching or not, so a consumer
    that polls with filters never re-reads (or re-receives) events its filter
    rejected.  With ``limit`` the cursor stops at the last returned event, so the
    next call resumes exactly there.
    """
    matched: list[dict] = []
    last = cursor
    for payload in tail_events(path, follow=False, since_cursor=cursor):
        last = payload["cursor"]
        if event_matches(payload, job=job, events=events):
            matched.append(payload)
            if limit is not None and len(matched) >= limit:
                break
    return matched, last


def format_event(payload: dict) -> str:
    """One-line human rendering of an event for ``watch`` and the ``serve`` console."""
    ts = payload.get("ts") or 0.0
    clock = time.strftime("%H:%M:%S", time.localtime(ts)) if ts else "--:--:--"
    parts = [clock, f"{payload.get('event', '?'):<14}"]
    if "job_id" in payload:
        parts.append(payload["job_id"])
    if "worker" in payload:
        parts.append(f"[{payload['worker']}]")
    extras = {
        key: value
        for key, value in payload.items()
        if key not in ("schema", "ts", "event", "job_id", "worker")
    }
    if extras:
        parts.append(" ".join(f"{key}={value}" for key, value in sorted(extras.items())))
    return "  ".join(parts)
