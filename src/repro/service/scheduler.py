"""The scheduler: fans queued jobs out over a worker pool with leases and timeouts.

A :class:`Scheduler` ties the service pieces together.  Each worker (a thread of the
``serve`` process; any number of ``serve`` processes can share one queue directory)
loops: recover expired leases, claim the highest-priority job, then run its grid
points one at a time.  Every grid point is first deduped against the shared result
store by spec hash — resubmitting an already-computed spec is a cache hit, never a
re-execution — and misses run in a *child process*, which buys three properties the
in-thread path cannot offer:

* the worker keeps renewing its lease while a long spec runs, so a live job is never
  reclaimed mid-flight;
* per-job wall-clock timeouts and cooperative cancellation work by terminating the
  child, not by waiting politely;
* a crashing spec (segfault, OOM kill) fails the job with a named spec hash instead of
  taking the scheduler down.

Failure policy: an ordinary error consumes one retry (the job is requeued until its
budget runs out); a :class:`~repro.exceptions.ValidationError` fails the job
immediately — invariant violations are deterministic — and attaches the full
:class:`~repro.validation.invariants.ValidationReport` to the job as a store artifact;
an operator interrupt requeues the job *without* spending its budget.

Shutdown policy: the first ``SIGTERM``/``SIGINT`` starts a *graceful drain* — stop
claiming, let each in-flight grid point finish (bounded by ``drain_grace_s``, lease
still renewed), requeue the interrupted jobs without consuming an attempt, flush
metrics and events, return.  A second signal terminates in-flight children
immediately (the requeue still refunds the attempt).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
import traceback
from pathlib import Path

from repro import telemetry
from repro.exceptions import ServiceError
from repro.experiments.runner import ExperimentResult, StoreBackend, run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.service.events import EventLog
from repro.service.jobs import Job, JobState
from repro.service.queue import DEFAULT_LEASE_S, JobQueue

#: Default idle-poll interval of a worker with an empty queue.
DEFAULT_POLL_S = 0.5

#: Grace period for a terminated child to exit before it is force-killed.
_CHILD_GRACE_S = 5.0

#: How long a graceful drain (SIGTERM/SIGINT) lets an in-flight grid point keep
#: running before it is terminated and the job requeued without spending a retry.
DEFAULT_DRAIN_GRACE_S = 30.0

#: Forking from a multi-threaded scheduler is serialised to keep the child's view of
#: interpreter locks consistent (the child only simulates and writes to its pipe, but
#: the spawn itself must not interleave with another thread's spawn).
_SPAWN_LOCK = threading.Lock()


def _child_entry(payload: dict, conn) -> None:
    """Child-process entry point: run one spec and report through the pipe.

    Never raises — every outcome (result, validation report, crash traceback) travels
    back as a tagged JSON-serialisable payload, mirroring the executor protocol.
    """
    try:
        result = run_experiment(
            ExperimentSpec.from_dict(payload["spec"]), validate=payload.get("validate", False)
        )
        response = {"ok": True, "result": result.to_dict()}
    except Exception as exc:
        report = getattr(exc, "report", None)
        response = {
            "ok": False,
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
            "report": report.to_dict() if report is not None else None,
        }
    try:
        # Ship the child's metrics (round histograms etc.) home with the outcome; the
        # parent merges them so ``--metrics-port`` reflects work done in children.
        if telemetry.enabled():
            response["metrics"] = telemetry.get_registry().snapshot()
        conn.send(response)
    finally:
        conn.close()


class Scheduler:
    """Pulls jobs from a :class:`JobQueue` and executes them against a shared store."""

    def __init__(
        self,
        queue: JobQueue,
        store: StoreBackend,
        events: EventLog,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = DEFAULT_POLL_S,
        worker_prefix: str | None = None,
        metrics_path: str | os.PathLike | None = None,
        drain_grace_s: float = DEFAULT_DRAIN_GRACE_S,
    ) -> None:
        if lease_s <= 0:
            raise ServiceError(f"lease_s must be positive, got {lease_s}")
        if poll_s <= 0:
            raise ServiceError(f"poll_s must be positive, got {poll_s}")
        if drain_grace_s < 0:
            raise ServiceError(f"drain_grace_s must be >= 0, got {drain_grace_s}")
        self.queue = queue
        self.store = store
        self.events = events
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.drain_grace_s = drain_grace_s
        #: Set by the second drain signal (or programmatically): in-flight grid
        #: points are terminated immediately instead of finishing within the grace.
        self._force_stop = threading.Event()
        self.signals_seen = 0
        self.worker_prefix = (
            worker_prefix
            if worker_prefix is not None
            else f"{socket.gethostname()}-{os.getpid()}"
        )
        #: Where to drop metrics snapshots (after every job and at shutdown) so
        #: ``python -m repro metrics`` can inspect the service without scraping HTTP.
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None

    def _flush_metrics(self) -> None:
        if self.metrics_path is not None and telemetry.enabled():
            telemetry.write_snapshot(telemetry.get_registry(), self.metrics_path)

    @staticmethod
    def _job_finished(state: str, claimed_at: float) -> float:
        """Close out a job's telemetry; returns the monotonic claim-to-finish latency."""
        dur_s = round(time.perf_counter() - claimed_at, 6)
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_jobs_finished_total", help="Jobs finished, by terminal state."
            ).inc(state=state)
            registry.histogram(
                "repro_job_duration_s", help="Claim-to-finish job latency."
            ).observe(dur_s, state=state)
        return dur_s

    # ------------------------------------------------------------------ serving
    def serve(
        self,
        workers: int = 2,
        drain: bool = False,
        stop_event: threading.Event | None = None,
        install_signals: bool = True,
    ) -> None:
        """Run a pool of worker threads until stopped (or, with ``drain``, until empty).

        ``drain=True`` is the batch mode used by CI and tests: workers exit once the
        queue has no queued jobs left (requeues by a still-running worker are picked
        up by that worker, so nothing is stranded).

        With ``install_signals`` (on by default, effective only from the main
        thread), the first ``SIGTERM``/``SIGINT`` triggers a *graceful drain*:
        workers stop claiming, the in-flight grid point of each running job is
        allowed to finish (up to ``drain_grace_s``, with the lease still renewed),
        the job is then requeued without consuming a retry, and metrics/events are
        flushed before ``serve`` returns.  A second signal terminates in-flight
        children immediately (still requeueing without spending the budget).
        Without a handler installed, a ``KeyboardInterrupt`` keeps the legacy
        behaviour: stop, requeue without consuming, re-raise.
        """
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        stop = stop_event if stop_event is not None else threading.Event()
        self._force_stop.clear()
        self.signals_seen = 0
        previous_handlers: dict[int, object] = {}
        if install_signals and threading.current_thread() is threading.main_thread():

            def _on_signal(signum, frame):
                self.signals_seen += 1
                if self.signals_seen == 1:
                    stop.set()
                    self.events.emit(
                        "drain_requested",
                        signal=signal.Signals(signum).name,
                        grace_s=self.drain_grace_s,
                    )
                else:
                    self._force_stop.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers[signum] = signal.signal(signum, _on_signal)
        self.events.emit(
            "scheduler_started", workers=workers, drain=drain, pid=os.getpid()
        )
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(f"{self.worker_prefix}-w{index}", drain, stop),
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        try:
            while any(thread.is_alive() for thread in threads):
                for thread in threads:
                    thread.join(timeout=0.2)
        except KeyboardInterrupt:
            stop.set()
            for thread in threads:
                thread.join()
            self._flush_metrics()
            self.events.emit("scheduler_stopped", reason="interrupted")
            raise
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        stop.set()
        self._flush_metrics()
        if self.signals_seen:
            reason = "drained-on-signal"
        elif drain:
            reason = "drained"
        else:
            reason = "stopped"
        self.events.emit("scheduler_stopped", reason=reason)

    def _worker_loop(self, worker_id: str, drain: bool, stop: threading.Event) -> None:
        self.events.emit("worker_started", worker=worker_id)
        while not stop.is_set():
            for released in self.queue.release_expired():
                self.events.emit(
                    "job_released",
                    job_id=released.job_id,
                    worker=worker_id,
                    state=released.state.value,
                    reason="lease-expired",
                )
            claimed_at = time.perf_counter()
            job = self.queue.claim(worker_id, self.lease_s)
            if telemetry.enabled():
                self.queue.export_gauges()
            if job is None:
                if drain and self.queue.pending() == 0:
                    break
                stop.wait(self.poll_s)
                continue
            telemetry.get_tracer().record(
                "claim",
                category="scheduler",
                start_s=claimed_at,
                end_s=time.perf_counter(),
                job=job.job_id,
                worker=worker_id,
            )
            try:
                self._run_job(job, worker_id, stop, claimed_at)
            except Exception as exc:  # Scheduler bug: never wedge a claimed job.
                try:
                    self.queue.complete(
                        job, JobState.FAILED, error=f"scheduler error: {exc}"
                    )
                except ServiceError:
                    pass
                self.events.emit(
                    "job_failed",
                    job_id=job.job_id,
                    worker=worker_id,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    dur_s=self._job_finished("failed", claimed_at),
                )
            self._flush_metrics()
        self.events.emit("worker_stopped", worker=worker_id)

    # ------------------------------------------------------------------ one job
    def _run_job(
        self, job: Job, worker_id: str, stop: threading.Event, claimed_at: float
    ) -> None:
        self.events.emit(
            "job_started",
            job_id=job.job_id,
            worker=worker_id,
            attempt=job.attempts,
            specs=len(job.specs),
            priority=job.priority,
            lane=job.lane,
        )
        tracer = telemetry.get_tracer()
        registry = telemetry.get_registry()
        deadline = time.time() + job.timeout_s if job.timeout_s is not None else None
        job.cache_hits = 0  # Per-attempt counters: a retry re-counts against the store.
        job.executed = 0
        for spec in job.specs:
            spec_hash = spec.spec_hash()
            if stop.is_set():
                self._requeue_interrupted(job, worker_id)
                return
            if self.queue.cancel_requested(job.job_id):
                self.queue.complete(job, JobState.CANCELLED, error="cancelled by request")
                self.events.emit(
                    "job_cancelled",
                    job_id=job.job_id,
                    worker=worker_id,
                    dur_s=self._job_finished("cancelled", claimed_at),
                )
                return
            if self._timed_store_op("get", lambda: self.store.get(spec_hash)) is not None:
                job.cache_hits += 1
                self.queue.update(job)
                if registry.enabled:
                    registry.counter(
                        "repro_specs_total", help="Grid points served, by outcome."
                    ).inc(outcome="cached")
                self.events.emit(
                    "spec_cached", job_id=job.job_id, worker=worker_id, spec=spec_hash[:12]
                )
                continue
            with tracer.span(
                "execute",
                category="scheduler",
                job=job.job_id,
                spec=spec_hash[:12],
                worker=worker_id,
            ):
                outcome = self._run_spec_in_child(
                    {"spec": spec.to_dict(), "validate": job.validate},
                    job,
                    worker_id,
                    deadline,
                    stop,
                )
            interrupted = outcome.get("interrupted")
            if interrupted == "stopped":
                self._requeue_interrupted(job, worker_id)
                return
            if interrupted == "cancelled":
                self.queue.complete(job, JobState.CANCELLED, error="cancelled by request")
                self.events.emit(
                    "job_cancelled",
                    job_id=job.job_id,
                    worker=worker_id,
                    dur_s=self._job_finished("cancelled", claimed_at),
                )
                return
            if interrupted == "timeout":
                error = (
                    f"timed out after {job.timeout_s}s (at spec {spec_hash[:12]}, "
                    f"{job.executed + job.cache_hits} of {len(job.specs)} points finished)"
                )
                self.queue.complete(job, JobState.FAILED, error=error)
                self.events.emit(
                    "job_failed",
                    job_id=job.job_id,
                    worker=worker_id,
                    reason="timeout",
                    dur_s=self._job_finished("failed", claimed_at),
                )
                return
            if outcome["ok"]:
                result = ExperimentResult.from_dict(outcome["result"])
                with tracer.span(
                    "flush",
                    category="scheduler",
                    job=job.job_id,
                    spec=spec_hash[:12],
                    worker=worker_id,
                ):
                    self._store_result(result, job)
                    job.executed += 1
                    self.queue.update(job)
                if registry.enabled:
                    registry.counter(
                        "repro_specs_total", help="Grid points served, by outcome."
                    ).inc(outcome="executed")
                self.events.emit(
                    "spec_done",
                    job_id=job.job_id,
                    worker=worker_id,
                    spec=spec_hash[:12],
                    elapsed_s=round(result.elapsed_s, 3),
                )
                continue
            if registry.enabled:
                registry.counter(
                    "repro_specs_total", help="Grid points served, by outcome."
                ).inc(outcome="failed")
            self._handle_spec_failure(job, worker_id, spec_hash, outcome, claimed_at)
            return
        self.queue.complete(job, JobState.DONE)
        self.events.emit(
            "job_done",
            job_id=job.job_id,
            worker=worker_id,
            cache_hits=job.cache_hits,
            executed=job.executed,
            dur_s=self._job_finished("done", claimed_at),
        )

    def _requeue_interrupted(self, job: Job, worker_id: str) -> None:
        # An operator interrupt is not the job's fault: roll back the attempt so the
        # retry budget only ever pays for genuine failures.
        self.queue.requeue(job, consume_attempt=False)
        self.events.emit(
            "job_requeued", job_id=job.job_id, worker=worker_id, reason="interrupted"
        )

    def _handle_spec_failure(
        self, job: Job, worker_id: str, spec_hash: str, outcome: dict, claimed_at: float
    ) -> None:
        error_type = outcome.get("error_type", "Error")
        summary = f"spec {spec_hash[:12]}: {error_type}: {outcome.get('message', '')}"
        report = outcome.get("report")
        # Duck-typed: any artifact-grade backend (ArtifactStore, ShardedStore, …)
        # can hold the report; the flat JSONL store simply cannot.
        if report is not None and hasattr(self.store, "put_artifact"):
            self.store.put_artifact(
                job.job_id, f"validation-{spec_hash[:12]}", "validation-report", report
            )
        deterministic = error_type == "ValidationError"
        if deterministic or job.retries_left <= 0:
            error = summary
            if outcome.get("traceback"):
                error += "\n" + outcome["traceback"].rstrip()
            self.queue.complete(job, JobState.FAILED, error=error)
            self.events.emit(
                "job_failed",
                job_id=job.job_id,
                worker=worker_id,
                spec=spec_hash[:12],
                error_type=error_type,
                message=outcome.get("message", ""),
                dur_s=self._job_finished("failed", claimed_at),
            )
        else:
            job.error = summary
            self.queue.requeue(job)
            self.events.emit(
                "job_requeued",
                job_id=job.job_id,
                worker=worker_id,
                spec=spec_hash[:12],
                error_type=error_type,
                retries_left=job.retries_left,
            )

    @staticmethod
    def _timed_store_op(op: str, call):
        """Run one store operation under the ``repro_store_op_s{op=...}`` histogram.

        The p95 of this series feeds admission control's ``--max-store-p95``
        threshold (read from the metrics snapshot by ``submit``), so a store that
        starts thrashing pushes back on new submissions.
        """
        registry = telemetry.get_registry()
        if not registry.enabled:
            return call()
        started = time.perf_counter()
        try:
            return call()
        finally:
            registry.histogram(
                "repro_store_op_s", help="Result-store operation latency, by op."
            ).observe(time.perf_counter() - started, op=op)

    def _store_result(self, result: ExperimentResult, job: Job) -> None:
        if hasattr(self.store, "put_artifact"):  # Artifact-grade stores index presets.
            self._timed_store_op(
                "put", lambda: self.store.put(result, preset=job.provenance.get("preset"))
            )
        else:
            self._timed_store_op("put", lambda: self.store.put(result))

    # ------------------------------------------------------------------ child process
    def _run_spec_in_child(
        self,
        payload: dict,
        job: Job,
        worker_id: str,
        deadline: float | None,
        stop: threading.Event,
    ) -> dict:
        """Run one spec in a child process, babysitting lease, timeout and cancel.

        Returns the child's tagged outcome payload, or ``{"interrupted": reason}``
        when the child was terminated (``stopped``/``cancelled``/``timeout``).
        """
        context = multiprocessing.get_context()
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(target=_child_entry, args=(payload, sender), daemon=True)
        with _SPAWN_LOCK:
            process.start()
        sender.close()  # Parent's copy: close so child exit yields EOF, not a hang.
        next_renewal = time.time() + self.lease_s / 2
        outcome: dict | None = None
        reason: str | None = None
        drain_deadline: float | None = None
        try:
            while True:
                if receiver.poll(self.poll_s):
                    try:
                        outcome = receiver.recv()
                    except EOFError:
                        outcome = None
                    break
                now = time.time()
                if now >= next_renewal:
                    self.queue.renew_lease(job.job_id, worker_id, self.lease_s)
                    next_renewal = now + self.lease_s / 2
                    registry = telemetry.get_registry()
                    if registry.enabled:
                        registry.counter(
                            "repro_lease_renewals_total",
                            help="Lease renewals while specs run in children.",
                        ).inc()
                if stop.is_set():
                    # Graceful drain: let the in-flight grid point finish (the lease
                    # above keeps being renewed) for up to drain_grace_s, then — or
                    # immediately on a force stop — terminate and requeue without
                    # consuming the attempt.
                    if drain_deadline is None:
                        drain_deadline = now + self.drain_grace_s
                    if self._force_stop.is_set() or now >= drain_deadline:
                        reason = "stopped"
                        break
                if self.queue.cancel_requested(job.job_id):
                    reason = "cancelled"
                    break
                if deadline is not None and now >= deadline:
                    reason = "timeout"
                    break
                if not process.is_alive():
                    # Child exited between polls: drain any final message it managed.
                    if receiver.poll(0.1):
                        try:
                            outcome = receiver.recv()
                        except EOFError:
                            pass
                    break
            if reason is not None:
                process.terminate()
            process.join(timeout=_CHILD_GRACE_S)
            if process.is_alive():  # pragma: no cover - stuck in uninterruptible state
                process.kill()
                process.join(timeout=_CHILD_GRACE_S)
        finally:
            receiver.close()
        if outcome is not None and outcome.get("metrics"):
            # Fold the child's metrics (round histograms, engine counters) into this
            # process' registry so exposition covers work done in children.
            telemetry.get_registry().merge(outcome.pop("metrics"))
        if reason is not None:
            return {"ok": False, "interrupted": reason}
        if outcome is None:
            return {
                "ok": False,
                "error_type": "WorkerCrash",
                "message": (
                    f"spec worker exited with code {process.exitcode} before reporting "
                    "a result (crashed or was killed)"
                ),
                "traceback": "",
            }
        return outcome
