"""Webhook delivery: push job-lifecycle events to registered HTTP callbacks.

Hooks are registered in the service root (``webhooks.json``) with an optional
event-type filter.  A background :class:`WebhookDispatcher` thread follows the
event log with a durable per-hook cursor (``webhooks-state.json``) and POSTs each
matching event as JSON with an HMAC-SHA256 signature header, giving **at-least-
once** delivery: the cursor only advances after a delivery attempt concludes, so
a crash between delivery and persist causes a redelivery, never a loss.  Failures
retry with exponential backoff up to a budget; exhausted deliveries land in a
dead-letter JSONL (``webhooks-deadletter.jsonl``) and the cursor moves on so one
dead endpoint cannot dam the feed for the others.

Receivers authenticate payloads by recomputing the signature::

    import hmac, hashlib
    expected = "sha256=" + hmac.new(secret.encode(), body, hashlib.sha256).hexdigest()
    ok = hmac.compare_digest(expected, request.headers["X-Repro-Signature"])

``webhook_*`` housekeeping events are never delivered to hooks, so a hook that
(say) logs its own failures back into the service root cannot feed back on itself.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import secrets
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable
from urllib.parse import urlsplit

from repro import telemetry
from repro.exceptions import WebhookError
from repro.service.events import EVENTS_FILENAME, EventIndex, event_matches, read_events_since

__all__ = [
    "DEADLETTER_FILENAME",
    "DEFAULT_BACKOFF_FACTOR",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRY_BUDGET",
    "DEFAULT_TIMEOUT_S",
    "SIGNATURE_HEADER",
    "STATE_FILENAME",
    "Webhook",
    "WebhookDispatcher",
    "WebhookRegistry",
    "WEBHOOKS_FILENAME",
    "deliver_once",
    "sign_payload",
    "verify_signature",
]

WEBHOOKS_SCHEMA_VERSION = 1

WEBHOOKS_FILENAME = "webhooks.json"
STATE_FILENAME = "webhooks-state.json"
DEADLETTER_FILENAME = "webhooks-deadletter.jsonl"

SIGNATURE_HEADER = "X-Repro-Signature"
EVENT_HEADER = "X-Repro-Event"
CURSOR_HEADER = "X-Repro-Cursor"
DELIVERY_HEADER = "X-Repro-Delivery"

#: Delivery attempts per event per hook before it is dead-lettered.
DEFAULT_RETRY_BUDGET = 4
#: First-retry backoff; doubles each retry.
DEFAULT_BACKOFF_S = 0.5
DEFAULT_BACKOFF_FACTOR = 2.0
#: Per-request socket timeout.
DEFAULT_TIMEOUT_S = 5.0


def sign_payload(secret: str, body: bytes) -> str:
    """HMAC-SHA256 signature of a delivery body, in GitHub-style ``sha256=`` form."""
    digest = hmac.new(secret.encode("utf-8"), body, hashlib.sha256).hexdigest()
    return f"sha256={digest}"


def verify_signature(secret: str, body: bytes, signature: str) -> bool:
    """Constant-time check of a received ``X-Repro-Signature`` header."""
    return hmac.compare_digest(sign_payload(secret, body), signature or "")


@dataclass(frozen=True)
class Webhook:
    """One registered callback: a URL, its signing secret and an event filter."""

    hook_id: str
    url: str
    secret: str
    events: tuple[str, ...] | None = None
    #: Cursor at registration time — only events *after* this one are delivered,
    #: so adding a hook to a root with history does not replay the whole log.
    from_cursor: int = 0
    created_at: float = field(default_factory=time.time)

    def matches(self, payload: dict) -> bool:
        if str(payload.get("event", "")).startswith("webhook_"):
            return False  # Never feed webhook housekeeping back into webhooks.
        return event_matches(payload, events=self.events)

    def to_dict(self) -> dict:
        return {
            "hook_id": self.hook_id,
            "url": self.url,
            "secret": self.secret,
            "events": list(self.events) if self.events else None,
            "from_cursor": self.from_cursor,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Webhook":
        events = payload.get("events")
        return cls(
            hook_id=payload["hook_id"],
            url=payload["url"],
            secret=payload["secret"],
            events=tuple(events) if events else None,
            from_cursor=int(payload.get("from_cursor", 0)),
            created_at=float(payload.get("created_at", 0.0)),
        )


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    staging.write_text(text, encoding="utf-8")
    os.replace(staging, path)


class WebhookRegistry:
    """The set of hooks registered in one service root (``webhooks.json``)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.path = self.root / WEBHOOKS_FILENAME
        self.state_path = self.root / STATE_FILENAME
        self.deadletter_path = self.root / DEADLETTER_FILENAME

    def load(self) -> list[Webhook]:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            return [Webhook.from_dict(entry) for entry in payload.get("hooks", [])]
        except FileNotFoundError:
            return []
        except (ValueError, KeyError, TypeError) as exc:
            raise WebhookError(f"corrupt webhook registry {self.path}: {exc}") from exc

    def _save(self, hooks: list[Webhook]) -> None:
        payload = {
            "schema": WEBHOOKS_SCHEMA_VERSION,
            "hooks": [hook.to_dict() for hook in hooks],
        }
        _atomic_write(self.path, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def add(
        self,
        url: str,
        events: Iterable[str] | None = None,
        secret: str | None = None,
        events_path: str | os.PathLike | None = None,
    ) -> Webhook:
        """Register a callback; returns the hook (with its generated id/secret)."""
        scheme = urlsplit(url).scheme
        if scheme not in ("http", "https"):
            raise WebhookError(f"webhook URL must be http(s), got {url!r}")
        log_path = Path(events_path) if events_path is not None else self.root / EVENTS_FILENAME
        hook = Webhook(
            hook_id=f"wh-{secrets.token_hex(4)}",
            url=url,
            secret=secret if secret else secrets.token_hex(16),
            events=tuple(events) if events else None,
            from_cursor=EventIndex(log_path).refresh(save=False).count,
        )
        self._save(self.load() + [hook])
        return hook

    def remove(self, hook_id: str) -> Webhook:
        hooks = self.load()
        kept = [hook for hook in hooks if hook.hook_id != hook_id]
        if len(kept) == len(hooks):
            raise WebhookError(f"unknown webhook id {hook_id!r}")
        self._save(kept)
        removed = next(hook for hook in hooks if hook.hook_id == hook_id)
        state = self._load_state()
        if state.pop(hook_id, None) is not None:
            self._save_state(state)
        return removed

    def get(self, hook_id: str) -> Webhook:
        for hook in self.load():
            if hook.hook_id == hook_id:
                return hook
        raise WebhookError(f"unknown webhook id {hook_id!r}")

    # -- per-hook durable cursors -----------------------------------------

    def _load_state(self) -> dict:
        try:
            return json.loads(self.state_path.read_text(encoding="utf-8")).get("cursors", {})
        except (FileNotFoundError, ValueError, AttributeError):
            return {}

    def _save_state(self, cursors: dict) -> None:
        _atomic_write(
            self.state_path,
            json.dumps({"schema": WEBHOOKS_SCHEMA_VERSION, "cursors": cursors}, sort_keys=True)
            + "\n",
        )

    def cursor_of(self, hook: Webhook) -> int:
        return int(self._load_state().get(hook.hook_id, hook.from_cursor))

    def advance(self, hook_id: str, cursor: int) -> None:
        state = self._load_state()
        if cursor > int(state.get(hook_id, 0)):
            state[hook_id] = cursor
            self._save_state(state)

    def dead_letter(self, hook: Webhook, payload: dict, attempts: int, error: str) -> None:
        entry = {
            "ts": time.time(),
            "hook_id": hook.hook_id,
            "url": hook.url,
            "attempts": attempts,
            "error": error,
            "event": payload,
        }
        self.deadletter_path.parent.mkdir(parents=True, exist_ok=True)
        with self.deadletter_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")


def deliver_once(
    hook: Webhook,
    payload: dict,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    opener: Callable | None = None,
) -> int:
    """POST one signed delivery; returns the HTTP status, raises on failure.

    ``opener`` (tests) replaces ``urllib.request.urlopen``; it receives the
    prepared ``Request`` and the timeout and must return a response object with
    a ``status`` attribute.
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    request = urllib.request.Request(
        hook.url,
        data=body,
        method="POST",
        headers={
            "Content-Type": "application/json",
            SIGNATURE_HEADER: sign_payload(hook.secret, body),
            EVENT_HEADER: str(payload.get("event", "")),
            CURSOR_HEADER: str(payload.get("cursor", "")),
            DELIVERY_HEADER: hook.hook_id,
        },
    )
    open_fn = opener if opener is not None else urllib.request.urlopen
    try:
        with open_fn(request, timeout=timeout_s) as response:
            status = getattr(response, "status", 200)
    except urllib.error.HTTPError as exc:
        raise WebhookError(f"{hook.url} answered HTTP {exc.code}") from exc
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise WebhookError(f"delivery to {hook.url} failed: {exc}") from exc
    if status >= 400:
        raise WebhookError(f"{hook.url} answered HTTP {status}")
    return status


class WebhookDispatcher:
    """Background at-least-once delivery loop over the registered hooks.

    The registry is re-read every pass, so hooks added while ``serve`` runs are
    picked up without a restart.  Each hook has its own durable cursor: one dead
    endpoint retries and dead-letters on its own clock without delaying others.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        events_path: str | os.PathLike | None = None,
        poll_s: float = 0.5,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        backoff_s: float = DEFAULT_BACKOFF_S,
        backoff_factor: float = DEFAULT_BACKOFF_FACTOR,
        opener: Callable | None = None,
    ) -> None:
        self.registry = WebhookRegistry(root)
        self.events_path = (
            Path(events_path) if events_path is not None else Path(root) / EVENTS_FILENAME
        )
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.retry_budget = max(int(retry_budget), 1)
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.opener = opener
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "WebhookDispatcher":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-webhooks", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the loop, then flush anything already in the log one last time."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._stop.clear()
        try:
            self.run_pending()
        finally:
            self._stop.set()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_pending()
            except WebhookError:
                pass  # A corrupt registry must not kill the serve process.
            self._stop.wait(self.poll_s)

    def run_pending(self) -> int:
        """One dispatch pass over every hook; returns deliveries attempted."""
        attempted = 0
        for hook in self.registry.load():
            cursor = self.registry.cursor_of(hook)
            while not self._stop.is_set():
                batch, last = read_events_since(self.events_path, cursor, limit=50)
                if not batch:
                    # Everything left was filtered out; persist the skip so the
                    # next pass does not re-read it.
                    if last > cursor:
                        self.registry.advance(hook.hook_id, last)
                    break
                for payload in batch:
                    if self._stop.is_set():
                        break
                    if hook.matches(payload):
                        attempted += 1
                        if not self._deliver(hook, payload):
                            return attempted  # Stopped mid-backoff: keep cursor put.
                    cursor = payload["cursor"]
                    self.registry.advance(hook.hook_id, cursor)
        return attempted

    def _deliver(self, hook: Webhook, payload: dict) -> bool:
        """Deliver with retries; True when concluded (ok or dead-lettered)."""
        registry = telemetry.get_registry()
        delay = self.backoff_s
        error = ""
        for attempt in range(1, self.retry_budget + 1):
            started = time.perf_counter()
            try:
                deliver_once(hook, payload, timeout_s=self.timeout_s, opener=self.opener)
                self._observe(registry, started, "ok" if attempt == 1 else "retried")
                return True
            except WebhookError as exc:
                error = str(exc)
                self._observe(registry, started, "error")
            if attempt < self.retry_budget:
                if self._stop.wait(delay):
                    return False  # Shutting down mid-backoff: redeliver next start.
                delay *= self.backoff_factor
        self.registry.dead_letter(hook, payload, attempts=self.retry_budget, error=error)
        if registry.enabled:
            registry.counter(
                "repro_webhook_deliveries_total",
                help="Webhook delivery conclusions, by outcome.",
            ).inc(outcome="dead_letter")
        return True

    @staticmethod
    def _observe(registry, started: float, outcome: str) -> None:
        if not registry.enabled:
            return
        registry.histogram(
            "repro_webhook_delivery_s",
            help="Webhook delivery attempt latency.",
        ).observe(time.perf_counter() - started, outcome=outcome)
        if outcome != "error":
            registry.counter(
                "repro_webhook_deliveries_total",
                help="Webhook delivery conclusions, by outcome.",
            ).inc(outcome=outcome)


# Re-exported for callers that adjust a loaded hook (e.g. ``webhooks test``).
replace_hook = replace
