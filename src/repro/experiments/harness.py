"""Experiment runners shared by the examples and the per-figure benchmark harness.

These drivers sit one level above the declarative subsystem: each builds its (single-seed)
jobs as :class:`~repro.experiments.spec.ExperimentSpec` instances executed through
:func:`~repro.experiments.runner.build_simulation`, then adds the figure-specific
post-processing (baseline normalisation, cluster sweeps, reference-policy shadowing) that
needs the full per-round :class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.selection import StaticClusterPolicy, make_policy
from repro.devices.specs import DeviceTier
from repro.exceptions import ConfigurationError
from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.fl.metrics import relative_improvement
from repro.sim.context import RoundContext
from repro.sim.results import SimulationResult
from repro.sim.round_engine import RoundEngine
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a policy-comparison table, normalised against the baseline policy."""

    policy: str
    ppw_local: float
    ppw_global: float
    convergence_speedup: float
    final_accuracy: float
    converged: bool

    def as_tuple(self) -> tuple[object, ...]:
        """Row representation for :func:`repro.experiments.reporting.format_table`."""
        return (
            self.policy,
            self.ppw_local,
            self.ppw_global,
            self.convergence_speedup,
            self.final_accuracy,
            self.converged,
        )


@dataclass(frozen=True)
class PredictionAccuracyReport:
    """How closely a policy tracks a reference (oracle) policy's decisions (Figure 12)."""

    policy: str
    reference: str
    participant_accuracy: float
    target_accuracy: float
    tier_composition: dict[str, float]
    reference_tier_composition: dict[str, float]


def run_simulation(
    spec: ScenarioSpec,
    policy_name: str,
    max_rounds: int | None = None,
    stop_at_convergence: bool = True,
    seed_offset: int = 0,
) -> SimulationResult:
    """Run one complete FL training job for a scenario under a named policy."""
    scenario = replace(spec, seed=spec.seed + seed_offset)
    if max_rounds is not None:
        scenario = replace(scenario, max_rounds=max_rounds)
    experiment = ExperimentSpec(
        scenario=scenario, policy=policy_name, stop_at_convergence=stop_at_convergence
    )
    return build_simulation(experiment).run()


def run_policy_comparison(
    spec: ScenarioSpec,
    policies: tuple[str, ...] = ("fedavg-random", "power", "performance", "autofl"),
    baseline: str = "fedavg-random",
    max_rounds: int | None = None,
) -> tuple[dict[str, SimulationResult], list[ComparisonRow]]:
    """Run several policies on the same scenario and normalise against ``baseline``.

    Every policy runs in a freshly built (but identically seeded) environment, mirroring the
    paper's methodology of evaluating each design point on the same deployment.
    """
    if baseline not in policies:
        raise ConfigurationError(f"baseline {baseline!r} must be one of the compared policies")
    results = {
        policy_name: run_simulation(spec, policy_name, max_rounds=max_rounds)
        for policy_name in policies
    }
    baseline_summary = results[baseline].summary()
    rows = []
    for policy_name in policies:
        summary = results[policy_name].summary()
        rows.append(
            ComparisonRow(
                policy=policy_name,
                ppw_local=relative_improvement(
                    baseline_summary.participant_energy_j, summary.participant_energy_j
                ),
                ppw_global=relative_improvement(
                    baseline_summary.global_energy_j, summary.global_energy_j
                ),
                convergence_speedup=relative_improvement(
                    baseline_summary.convergence_speedup_reference_s,
                    summary.convergence_speedup_reference_s,
                ),
                final_accuracy=summary.final_accuracy,
                converged=summary.converged,
            )
        )
    return results, rows


def run_cluster_sweep(
    spec: ScenarioSpec,
    clusters: tuple[str, ...] = ("C1", "C2", "C3", "C4", "C5", "C6", "C7"),
    rounds: int = 30,
) -> dict[str, float]:
    """Characterisation sweep over the Table 4 cluster templates (Figures 4 and 5).

    Each cluster runs the same fixed number of rounds on an identically seeded deployment
    (the paper's characterisation fixes the training work and compares steady-state
    efficiency), and the returned global PPW is normalised to the FedAvg-Random baseline
    (C0): ``PPW(Cx) = energy(C0) / energy(Cx)``.
    """
    baseline = run_simulation(
        spec, "fedavg-random", max_rounds=rounds, stop_at_convergence=False
    )
    baseline_energy = baseline.total_global_energy_j
    ppw: dict[str, float] = {"C0": 1.0}
    for cluster in clusters:
        result = run_simulation(
            spec, f"cluster-{cluster.lower()}", max_rounds=rounds, stop_at_convergence=False
        )
        ppw[cluster] = relative_improvement(baseline_energy, result.total_global_energy_j)
    return ppw


def _tier_composition(environment, selected_ids: list[int]) -> dict[str, float]:
    counts = {"high": 0, "mid": 0, "low": 0}
    for device_id in selected_ids:
        counts[environment.fleet.tier_of(device_id).value] += 1
    total = max(1, sum(counts.values()))
    return {tier: count / total for tier, count in counts.items()}


def run_with_reference(
    spec: ScenarioSpec,
    policy_name: str = "autofl",
    reference_name: str = "ofl",
    rounds: int = 60,
) -> PredictionAccuracyReport:
    """Run ``policy_name`` while asking ``reference_name`` for its decision each round.

    The reference policy only observes — the executed decision is always the primary
    policy's — which reproduces the prediction-accuracy methodology of Figure 12: after the
    agent's reward has converged, how often do its participant and execution-target choices
    match the oracle's?
    """
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment, aggregator=spec.aggregator)
    policy = make_policy(policy_name, rng=np.random.default_rng(spec.seed + 10_000))
    reference = make_policy(reference_name, rng=np.random.default_rng(spec.seed + 20_000))
    engine = RoundEngine(environment)
    participant_matches: list[float] = []
    target_matches: list[float] = []
    policy_tiers = {"high": 0.0, "mid": 0.0, "low": 0.0}
    reference_tiers = {"high": 0.0, "mid": 0.0, "low": 0.0}
    warmup = rounds // 2
    for round_index in range(rounds):
        # Fleet dynamics apply here exactly as in FLSimulation.run_round: the oracle
        # reference observes the same online fleet and the executed decision faces the
        # same mid-round faults.
        online_mask = environment.round_online_mask(round_index)
        conditions = environment.sample_round_conditions()
        ctx = RoundContext(
            round_index=round_index,
            environment=environment,
            conditions=conditions,
            accuracy=backend.accuracy,
            online_mask=online_mask,
        )
        decision = policy.select(ctx)
        reference_decision = reference.select(ctx)
        faults = environment.sample_faults(decision.participants, round_index)
        fault_mapping = None if faults is None else faults.to_mapping(decision.participants)
        execution = engine.execute(
            decision, conditions, faults=fault_mapping, online_mask=online_mask
        )
        training = backend.run_round(execution.participant_ids)
        policy.feedback(ctx, decision, execution, training)

        if round_index >= warmup:
            chosen = set(decision.participants)
            reference_chosen = set(reference_decision.participants)
            overlap = len(chosen & reference_chosen) / max(1, len(reference_chosen))
            participant_matches.append(overlap)
            shared = chosen & reference_chosen
            if shared:
                same_processor = sum(
                    1
                    for device_id in shared
                    if decision.targets.get(device_id) is not None
                    and reference_decision.targets.get(device_id) is not None
                    and decision.targets[device_id].processor
                    == reference_decision.targets[device_id].processor
                )
                target_matches.append(same_processor / len(shared))
            for tier, fraction in _tier_composition(environment, decision.participants).items():
                policy_tiers[tier] += fraction
            for tier, fraction in _tier_composition(
                environment, reference_decision.participants
            ).items():
                reference_tiers[tier] += fraction
    observed_rounds = max(1, rounds - warmup)
    return PredictionAccuracyReport(
        policy=policy_name,
        reference=reference_name,
        participant_accuracy=float(np.mean(participant_matches)) if participant_matches else 0.0,
        target_accuracy=float(np.mean(target_matches)) if target_matches else 0.0,
        tier_composition={tier: value / observed_rounds for tier, value in policy_tiers.items()},
        reference_tier_composition={
            tier: value / observed_rounds for tier, value in reference_tiers.items()
        },
    )


def run_static_cluster(
    spec: ScenarioSpec, composition: dict[str, int], max_rounds: int | None = None
) -> SimulationResult:
    """Run a custom static tier composition (counts per tier for K = 20)."""
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment, aggregator=spec.aggregator)
    policy = StaticClusterPolicy(
        {DeviceTier.from_name(tier): count for tier, count in composition.items()},
        rng=np.random.default_rng(spec.seed + 10_000),
        name="custom-cluster",
    )
    simulation = FLSimulation(
        environment=environment, policy=policy, backend=backend, max_rounds=max_rounds
    )
    return simulation.run()
