"""Experiment harness: the paper's evaluation settings, sweep runners and report formatting."""

from repro.experiments.harness import (
    ComparisonRow,
    PredictionAccuracyReport,
    run_cluster_sweep,
    run_policy_comparison,
    run_simulation,
    run_with_reference,
)
from repro.experiments.reporting import format_table
from repro.experiments.settings import (
    CLUSTER_TEMPLATES,
    GLOBAL_PARAMETER_SETTINGS,
    BASELINE_POLICIES,
    EVALUATION_POLICIES,
)

__all__ = [
    "BASELINE_POLICIES",
    "CLUSTER_TEMPLATES",
    "ComparisonRow",
    "EVALUATION_POLICIES",
    "GLOBAL_PARAMETER_SETTINGS",
    "PredictionAccuracyReport",
    "format_table",
    "run_cluster_sweep",
    "run_policy_comparison",
    "run_simulation",
    "run_with_reference",
]
