"""Experiment subsystem: declarative specs, sweep grids, batch execution and reporting."""

from repro.experiments.harness import (
    ComparisonRow,
    PredictionAccuracyReport,
    run_cluster_sweep,
    run_policy_comparison,
    run_simulation,
    run_with_reference,
)
from repro.experiments.reporting import (
    format_batch_footer,
    format_comparison,
    format_experiment_results,
    format_registry,
    format_table,
)
from repro.experiments.runner import (
    BatchReport,
    BatchRunner,
    ExperimentResult,
    MultiprocessExecutor,
    ResultStore,
    SerialExecutor,
    SpecFailure,
    StoreBackend,
    build_simulation,
    get_executor,
    run_experiment,
)
from repro.experiments.settings import (
    CLUSTER_TEMPLATES,
    GLOBAL_PARAMETER_SETTINGS,
    BASELINE_POLICIES,
    EVALUATION_POLICIES,
)
from repro.experiments.spec import ExperimentSpec, Sweep, parse_axis

__all__ = [
    "BASELINE_POLICIES",
    "BatchReport",
    "BatchRunner",
    "CLUSTER_TEMPLATES",
    "ComparisonRow",
    "EVALUATION_POLICIES",
    "ExperimentResult",
    "ExperimentSpec",
    "GLOBAL_PARAMETER_SETTINGS",
    "MultiprocessExecutor",
    "PredictionAccuracyReport",
    "ResultStore",
    "SerialExecutor",
    "SpecFailure",
    "StoreBackend",
    "Sweep",
    "build_simulation",
    "format_batch_footer",
    "format_comparison",
    "format_experiment_results",
    "format_registry",
    "format_table",
    "get_executor",
    "parse_axis",
    "run_cluster_sweep",
    "run_experiment",
    "run_policy_comparison",
    "run_simulation",
    "run_with_reference",
]
