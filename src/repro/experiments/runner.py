"""Batch execution of declarative experiments: executors, caching and the result store.

A :class:`BatchRunner` takes a :class:`~repro.experiments.spec.Sweep` (or any iterable of
:class:`~repro.experiments.spec.ExperimentSpec`) and produces one
:class:`ExperimentResult` per grid point.  Points whose spec hash is already present in
the :class:`ResultStore` are served from cache — a re-run of an already-computed grid is
near-instant — and the misses fan out over a pluggable executor (serial, or one worker
process per core via :class:`MultiprocessExecutor`).
"""

from __future__ import annotations

import json
import os
import time
import traceback
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.selection import make_policy
from repro.exceptions import ConfigurationError, ExecutionError
from repro.experiments.spec import SPEC_SCHEMA_VERSION, ExperimentSpec, Sweep
from repro.fl.metrics import EfficiencySummary
from repro.sim.runner import FLSimulation, RoundObserver
from repro.sim.scenarios import build_environment, build_surrogate_backend

#: Bumped whenever the stored result payload's shape changes.
RESULT_SCHEMA_VERSION = 1

#: Default on-disk location of the JSONL result store (relative to the working directory).
DEFAULT_STORE_PATH = Path(".repro-results") / "results.jsonl"

#: Offset between the scenario seed and the policy RNG stream (kept distinct from the
#: environment and backend streams; mirrors the original harness seeding).
POLICY_SEED_OFFSET = 10_000


class StaleResultWarning(UserWarning):
    """A result-store entry was skipped because its spec schema is not the current one."""


def build_simulation(
    spec: ExperimentSpec, round_observer: RoundObserver | None = None
) -> FLSimulation:
    """Construct the ready-to-run simulation for one (single-seed) experiment spec.

    ``round_observer`` is forwarded to :class:`FLSimulation` — the validation subsystem
    attaches its invariant auditors here without touching the seeded RNG streams.
    """
    spec.validate()
    scenario = spec.scenario
    environment = build_environment(scenario)
    backend = build_surrogate_backend(environment, aggregator=scenario.aggregator)
    policy = make_policy(
        spec.policy, rng=np.random.default_rng(scenario.seed + POLICY_SEED_OFFSET)
    )
    return FLSimulation(
        environment=environment,
        policy=policy,
        backend=backend,
        max_rounds=scenario.max_rounds,
        stop_at_convergence=spec.stop_at_convergence,
        round_observer=round_observer,
    )


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated outcome of one experiment spec (averaged over its seed replicas)."""

    spec: ExperimentSpec
    summaries: tuple[EfficiencySummary, ...]
    elapsed_s: float = 0.0
    cached: bool = False

    def __post_init__(self) -> None:
        if not self.summaries:
            raise ConfigurationError("an experiment result needs at least one summary")

    # ------------------------------------------------------------------ averaged metrics
    @property
    def n_seeds(self) -> int:
        """Number of seed replicas aggregated in this result."""
        return len(self.summaries)

    @property
    def convergence_rate(self) -> float:
        """Fraction of seed replicas that reached the target accuracy."""
        return sum(summary.converged for summary in self.summaries) / self.n_seeds

    @property
    def mean_final_accuracy(self) -> float:
        """Final accuracy averaged over the seed replicas."""
        return float(np.mean([summary.final_accuracy for summary in self.summaries]))

    @property
    def mean_rounds(self) -> float:
        """Executed rounds averaged over the seed replicas."""
        return float(np.mean([summary.rounds_executed for summary in self.summaries]))

    @property
    def mean_convergence_time_s(self) -> float:
        """Convergence-reference time averaged over the seed replicas."""
        return float(
            np.mean([summary.convergence_speedup_reference_s for summary in self.summaries])
        )

    @property
    def mean_participant_energy_j(self) -> float:
        """Participant energy averaged over the seed replicas."""
        return float(np.mean([summary.participant_energy_j for summary in self.summaries]))

    @property
    def mean_global_energy_j(self) -> float:
        """Population-wide energy averaged over the seed replicas."""
        return float(np.mean([summary.global_energy_j for summary in self.summaries]))

    # ------------------------------------------------------------------ serialisation
    def to_dict(self) -> dict:
        """JSON-serialisable payload (the result-store line body)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "hash": self.spec.spec_hash(),
            "spec": self.spec.to_dict(),
            "summaries": [asdict(summary) for summary in self.summaries],
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: dict, cached: bool = False) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            spec=ExperimentSpec.from_dict(payload["spec"]),
            summaries=tuple(
                EfficiencySummary(**summary) for summary in payload["summaries"]
            ),
            elapsed_s=payload.get("elapsed_s", 0.0),
            cached=cached,
        )


def _run_unit(unit: ExperimentSpec, validate: bool):
    """Run one single-seed unit job, optionally under full invariant auditing."""
    if not validate:
        return build_simulation(unit).run().summary()
    # Local import: the validation subsystem sits above the experiment layer.
    from repro.validation.invariants import InvariantAuditor

    auditor = InvariantAuditor(num_devices=unit.scenario.num_devices)
    result = build_simulation(unit, round_observer=auditor).run()
    auditor.audit_result(result).raise_if_failed()
    return result.summary()


def run_experiment(spec: ExperimentSpec, validate: bool = False) -> ExperimentResult:
    """Run one experiment spec (all its seed replicas) in the current process.

    With ``validate=True`` every executed round and the finished trajectory are audited
    against the simulator's accounting invariants
    (:mod:`repro.validation.invariants`); a violation raises
    :class:`~repro.exceptions.ValidationError` instead of returning a tainted result.

    Seed replicas of non-learning policies run through the batch engine's replicate
    axis (one stacked physics call per round instead of N serial loops); learning
    policies, single seeds and validated runs keep the serial per-seed path.  Either
    way each replica's trajectory is byte-identical to running its seed alone.
    """
    start = time.perf_counter()
    units = spec.seed_specs()
    if not validate and len(units) > 1:
        simulations = [build_simulation(unit) for unit in units]
        if all(simulation.replication_supported for simulation in simulations):
            results = FLSimulation.run_replicated(simulations)
            summaries = tuple(result.summary() for result in results)
        else:
            summaries = tuple(simulation.run().summary() for simulation in simulations)
    else:
        summaries = tuple(_run_unit(unit, validate) for unit in units)
    return ExperimentResult(
        spec=spec, summaries=summaries, elapsed_s=time.perf_counter() - start
    )


def _run_payload(payload: dict) -> dict:
    """Worker entry point: runs one serialised spec (module-level so it pickles)."""
    return run_experiment(
        ExperimentSpec.from_dict(payload["spec"]), validate=payload.get("validate", False)
    ).to_dict()


@dataclass(frozen=True)
class SpecFailure:
    """One grid point that failed during batch execution.

    Carries the failing spec's deterministic hash and the *original* worker traceback,
    so a multiprocess failure is debuggable instead of surfacing as an opaque pickle
    or ``BrokenProcessPool`` error.
    """

    spec: ExperimentSpec | None
    spec_hash: str
    error_type: str
    message: str
    traceback: str = ""

    def format(self) -> str:
        """Multi-line rendering: identity line plus the captured worker traceback."""
        label = self.spec.label if self.spec is not None else "<unknown>"
        lines = [f"spec {self.spec_hash[:12]} ({label}): {self.error_type}: {self.message}"]
        if self.traceback:
            lines.append(self.traceback.rstrip())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable payload (used by the orchestration job record)."""
        return {
            "spec_hash": self.spec_hash,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


def _run_payload_safe(payload: dict) -> dict:
    """Worker entry point that never raises: failures come back as tagged payloads.

    Catching in the worker keeps the process pool alive — one crashing spec no longer
    aborts (or poisons) the whole batch — and preserves the original traceback, which
    a pickled exception crossing the process boundary would lose.
    """
    try:
        return {"ok": True, "result": _run_payload(payload)}
    except Exception as exc:
        return {
            "ok": False,
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }


#: Callback invoked with each finished result as soon as it is available (before the
#: whole batch completes); the BatchRunner uses it to flush results to the store so an
#: interrupted or partially-failed batch keeps its completed points.
OnResult = Callable[["ExperimentResult"], None]


class Executor(Protocol):
    """Structural interface of a batch executor."""

    name: str

    def map(
        self,
        specs: Sequence[ExperimentSpec],
        validate: bool = False,
        on_result: OnResult | None = None,
    ) -> list[ExperimentResult]:
        """Run every spec and return results in the same order."""
        ...


class SerialExecutor:
    """Runs every spec in the calling process, one after another (fail-fast)."""

    name = "serial"

    def map(
        self,
        specs: Sequence[ExperimentSpec],
        validate: bool = False,
        on_result: OnResult | None = None,
    ) -> list[ExperimentResult]:
        """Run every spec and return results in the same order."""
        results = []
        for spec in specs:
            result = run_experiment(spec, validate=validate)
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results


class MultiprocessExecutor:
    """Fans specs out over a process pool (one worker per core by default).

    Specs travel to the workers as JSON payloads and results come back the same way, so
    the executor works under any multiprocessing start method.  Failures are isolated
    per spec: a crashing grid point does not stop the others, and once every spec has
    had its chance the batch raises :class:`~repro.exceptions.ExecutionError` naming
    each failing spec's hash with its original worker traceback.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        # At least two workers even on single-core boxes, so batches always exercise the
        # real process-pool path (an explicit max_workers=1 still degrades to serial).
        self.max_workers = max_workers if max_workers is not None else max(2, os.cpu_count() or 1)

    def map(
        self,
        specs: Sequence[ExperimentSpec],
        validate: bool = False,
        on_result: OnResult | None = None,
    ) -> list[ExperimentResult]:
        """Run every spec and return results in the same order."""
        if not specs:
            return []
        workers = min(self.max_workers, len(specs))
        if workers == 1:
            return SerialExecutor().map(specs, validate=validate, on_result=on_result)
        payloads = [{"spec": spec.to_dict(), "validate": validate} for spec in specs]
        slots: list[ExperimentResult | None] = [None] * len(specs)
        failures: list[SpecFailure] = []
        # No `with` block: its __exit__ would join the running workers even after an
        # interrupt, stalling Ctrl-C for up to a full spec per worker.
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                pool.submit(_run_payload_safe, payload): index
                for index, payload in enumerate(payloads)
            }
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        # The worker process died without reporting (segfault, OOM
                        # kill, broken pool): synthesise a failure naming the spec.
                        failures.append(
                            SpecFailure(
                                spec=specs[index],
                                spec_hash=specs[index].spec_hash(),
                                error_type=type(exc).__name__,
                                message=str(exc) or "worker process died",
                                traceback=(
                                    "worker process exited before reporting a "
                                    "traceback (crashed or was killed)"
                                ),
                            )
                        )
                        continue
                    if outcome["ok"]:
                        result = ExperimentResult.from_dict(outcome["result"])
                        slots[index] = result
                        if on_result is not None:
                            on_result(result)
                    else:
                        failures.append(
                            SpecFailure(
                                spec=specs[index],
                                spec_hash=specs[index].spec_hash(),
                                error_type=outcome["error_type"],
                                message=outcome["message"],
                                traceback=outcome["traceback"],
                            )
                        )
        except BaseException:
            # Return control immediately (completed results were already flushed
            # through on_result, so an interrupted batch is resumable); the in-flight
            # workers are abandoned to finish or die with the interpreter.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        if failures:
            completed = [slot for slot in slots if slot is not None]
            details = "\n".join(failure.format() for failure in failures)
            raise ExecutionError(
                f"{len(failures)} of {len(specs)} spec(s) failed "
                f"({len(completed)} completed and were kept):\n{details}",
                failures=failures,
                completed=completed,
            )
        return [slot for slot in slots if slot is not None]


#: Executor factories by CLI name.
EXECUTORS = {
    SerialExecutor.name: lambda jobs=None: SerialExecutor(),
    MultiprocessExecutor.name: lambda jobs=None: MultiprocessExecutor(max_workers=jobs),
}


def get_executor(name: str, jobs: int | None = None) -> Executor:
    """Instantiate an executor by name (``serial`` or ``process``)."""
    key = name.lower()
    if key not in EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {name!r}; expected one of {sorted(EXECUTORS)}"
        )
    return EXECUTORS[key](jobs)


@runtime_checkable
class StoreBackend(Protocol):
    """Structural interface of a result-store backend.

    Anything with spec-hash keyed ``get``/``put`` (plus ``in``/``len``) can serve as
    the :class:`BatchRunner` cache: the flat JSONL :class:`ResultStore`, the SQLite
    :class:`~repro.service.store.ArtifactStore`, or an in-memory test double.  Serial
    and multiprocess execution and the orchestration scheduler all share one cache
    through this protocol.
    """

    def get(self, spec: "ExperimentSpec | str") -> "ExperimentResult | None":
        """Return the stored result for a spec (or raw hash), or ``None`` on a miss."""
        ...

    def put(self, result: "ExperimentResult") -> None:
        """Persist one result under its deterministic spec hash."""
        ...

    def __contains__(self, spec: "ExperimentSpec | str") -> bool: ...

    def __len__(self) -> int: ...


class ResultStore:
    """Append-only JSONL store of experiment results, keyed by deterministic spec hash.

    The file is loaded once at construction; on duplicate hashes the last line wins (so
    re-computing a point simply supersedes it).  Writes append a single JSON line,
    keeping concurrent readers safe and the file trivially greppable.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._results: dict[str, ExperimentResult] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    key = payload["hash"]
                    spec_payload = payload["spec"]
                    if not isinstance(spec_payload, dict):
                        raise TypeError(
                            f"spec must be an object, got {type(spec_payload).__name__}"
                        )
                    if spec_payload.get("schema") != SPEC_SCHEMA_VERSION:
                        # Stale entry from an older spec schema: its hash can never be
                        # looked up again (hashes embed the schema), so skip it rather
                        # than failing the whole store on a schema bump — but say so,
                        # naming both versions, or users chase phantom cache misses.
                        warnings.warn(
                            f"result store {self.path} line {line_number}: skipping "
                            f"stale entry with spec schema "
                            f"{spec_payload.get('schema')!r} (this version reads "
                            f"schema {SPEC_SCHEMA_VERSION}); re-run to refresh it",
                            StaleResultWarning,
                            stacklevel=3,
                        )
                        continue
                    result = ExperimentResult.from_dict(payload, cached=True)
                except (ValueError, KeyError, TypeError) as exc:
                    raise ConfigurationError(
                        f"corrupt result store {self.path} at line {line_number}: {exc}"
                    ) from exc
                self._results[key] = result

    def get(self, spec: ExperimentSpec | str) -> ExperimentResult | None:
        """Look up the stored result for a spec (or a raw spec hash)."""
        key = spec if isinstance(spec, str) else spec.spec_hash()
        return self._results.get(key)

    def results(self) -> dict[str, ExperimentResult]:
        """Snapshot of every loaded entry by spec hash (used by store migration)."""
        return dict(self._results)

    def put(self, result: ExperimentResult) -> None:
        """Persist one result (appends a JSONL line and updates the in-memory index)."""
        payload = result.to_dict()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._results[payload["hash"]] = replace(result, cached=True)

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, spec: ExperimentSpec | str) -> bool:
        key = spec if isinstance(spec, str) else spec.spec_hash()
        return key in self._results


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one :meth:`BatchRunner.run` call."""

    results: tuple[ExperimentResult, ...]
    cache_hits: int
    executed: int
    elapsed_s: float

    @property
    def total(self) -> int:
        """Number of grid points in the batch."""
        return len(self.results)


class BatchRunner:
    """Executes batches of experiment specs with spec-hash caching.

    Parameters
    ----------
    executor:
        Fan-out strategy for cache misses; defaults to :class:`SerialExecutor`.
    store:
        Optional :class:`StoreBackend` (the JSONL :class:`ResultStore`, the SQLite
        :class:`~repro.service.store.ArtifactStore`, …); when given, hits skip
        execution entirely and fresh results are persisted for the next run.  Results
        are flushed as they complete, so an interrupted or partially-failed batch
        keeps its finished points and a re-run resumes from them.
    validate:
        Self-check every executed grid point against the simulator's accounting
        invariants (:mod:`repro.validation.invariants`); a violation raises
        :class:`~repro.exceptions.ValidationError` instead of caching a tainted
        result.  Cache hits were validated when first computed and are served as-is.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        store: StoreBackend | None = None,
        validate: bool = False,
    ):
        self.executor = executor if executor is not None else SerialExecutor()
        self.store = store
        self.validate = validate

    def run(self, experiments: Sweep | Iterable[ExperimentSpec]) -> BatchReport:
        """Run a sweep (or spec list), serving already-computed points from the store."""
        start = time.perf_counter()
        specs = (
            experiments.expand()
            if isinstance(experiments, Sweep)
            else [spec.validate() for spec in experiments]
        )
        hashes = [spec.spec_hash() for spec in specs]
        slots: list[ExperimentResult | None] = [None] * len(specs)
        misses: dict[str, list[int]] = {}
        cache_hits = 0
        for index, (spec, spec_hash) in enumerate(zip(specs, hashes)):
            hit = self.store.get(spec_hash) if self.store is not None else None
            if hit is not None:
                slots[index] = replace(hit, cached=True)
                cache_hits += 1
            else:
                # Identical points appearing several times in one grid run only once.
                misses.setdefault(spec_hash, []).append(index)
        if misses:
            unique_specs = [specs[indices[0]] for indices in misses.values()]
            # Flush each result the moment its spec finishes (not after the whole
            # batch): a KeyboardInterrupt or per-spec failure then loses only the
            # points still in flight — the completed ones are already persisted and a
            # re-run resumes from them as cache hits.
            flush = self.store.put if self.store is not None else None
            try:
                fresh = self.executor.map(unique_specs, validate=self.validate, on_result=flush)
            except KeyboardInterrupt:
                raise  # Completed results were flushed above; the sweep is resumable.
            for indices, result in zip(misses.values(), fresh):
                for index in indices:
                    slots[index] = result
        results = tuple(slot for slot in slots if slot is not None)
        if len(results) != len(specs):  # pragma: no cover - defensive
            raise ConfigurationError("batch execution lost results for some grid points")
        return BatchReport(
            results=results,
            cache_hits=cache_hits,
            executed=len(misses),
            elapsed_s=time.perf_counter() - start,
        )
