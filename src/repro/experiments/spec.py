"""Declarative experiment specifications and sweep grids.

An :class:`ExperimentSpec` is *data*: a :class:`~repro.sim.scenarios.ScenarioSpec` (the
point in the paper's evaluation space), the selection policy to run on it and how many
seed replicas to average over.  Because it is plain data it can be validated early against
the registries, hashed deterministically for result caching, serialised to JSON for
multiprocessing workers and the on-disk result store, and expanded from a :class:`Sweep`
grid — the declarative counterpart of the per-figure driver functions in
:mod:`repro.experiments.harness`.
"""

from __future__ import annotations

import difflib
import hashlib
import itertools
import json
from collections.abc import Iterable, Mapping
from dataclasses import asdict, dataclass, field, fields, replace

from repro import registry
from repro.exceptions import ConfigurationError
from repro.sim.scenarios import ScenarioSpec

#: Bumped whenever the hashed payload's shape changes, so stale caches never alias.
#: v3 added the fleet-dynamics scenario axes (availability, churn and fault rates).
SPEC_SCHEMA_VERSION = 3

#: Scenario fields addressable as sweep axes.
SCENARIO_AXES: tuple[str, ...] = tuple(f.name for f in fields(ScenarioSpec))

#: Experiment-level fields addressable as sweep axes.
EXPERIMENT_AXES: tuple[str, ...] = ("policy", "n_seeds", "stop_at_convergence")

#: Axes holding integer values (used when parsing CLI ``--axis name=v1,v2`` strings).
_INT_AXES = frozenset({"num_devices", "max_rounds", "seed", "n_seeds"})

#: Axes holding boolean values.
_BOOL_AXES = frozenset({"stop_at_convergence", "vectorized_sampling"})

#: Axes holding float values (the fleet-dynamics rates).
_FLOAT_AXES = frozenset(
    {
        "churn_rate",
        "rejoin_rate",
        "dropout_rate",
        "slow_fault_rate",
        "slow_fault_factor",
    }
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: a scenario, a policy and a replication count.

    ``n_seeds`` replicas run the scenario with seeds ``seed, seed + 1, …`` and the
    reported metrics are averaged over them (the paper reports averages over repeated
    runs of each design point).
    """

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    policy: str = "autofl"
    n_seeds: int = 1
    stop_at_convergence: bool = True

    def __post_init__(self) -> None:
        if self.n_seeds < 1:
            raise ConfigurationError(f"n_seeds must be >= 1, got {self.n_seeds}")

    # ------------------------------------------------------------------ validation
    def validate(self) -> "ExperimentSpec":
        """Resolve every named axis against its registry; raise early on unknown names."""
        registry.POLICIES.entry(self.policy)
        registry.WORKLOADS.entry(self.scenario.workload)
        registry.SETTINGS.entry(self.scenario.setting)
        registry.INTERFERENCE.entry(self.scenario.interference)
        registry.NETWORKS.entry(self.scenario.network)
        registry.DATA_DISTRIBUTIONS.entry(self.scenario.data_distribution)
        registry.AGGREGATORS.entry(self.scenario.aggregator)
        registry.AVAILABILITY.entry(self.scenario.availability)
        return self

    # ------------------------------------------------------------------ derivation
    def with_axis(self, axis: str, value: object) -> "ExperimentSpec":
        """Return a copy with one axis (experiment- or scenario-level) replaced."""
        if axis in EXPERIMENT_AXES:
            return replace(self, **{axis: value})
        if axis in SCENARIO_AXES:
            return replace(self, scenario=replace(self.scenario, **{axis: value}))
        known = sorted(EXPERIMENT_AXES + SCENARIO_AXES)
        message = f"unknown sweep axis {axis!r}; expected one of {known}"
        close = difflib.get_close_matches(axis, known, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise ConfigurationError(message)

    def seed_specs(self) -> list["ExperimentSpec"]:
        """The single-seed unit jobs this spec replicates over."""
        return [
            replace(
                self,
                scenario=replace(self.scenario, seed=self.scenario.seed + offset),
                n_seeds=1,
            )
            for offset in range(self.n_seeds)
        ]

    # ------------------------------------------------------------------ identity
    @property
    def label(self) -> str:
        """Compact human-readable identity used in report tables."""
        s = self.scenario
        parts = [
            self.policy,
            s.workload,
            s.setting,
            s.interference,
            s.network,
            s.data_distribution,
            f"N{s.num_devices}",
            f"R{s.max_rounds}",
            f"seed{s.seed}",
        ]
        if self.n_seeds > 1:
            parts.append(f"x{self.n_seeds}")
        return "/".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable payload (also the hashed cache identity)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "scenario": asdict(self.scenario),
            "policy": self.policy,
            "n_seeds": self.n_seeds,
            "stop_at_convergence": self.stop_at_convergence,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        schema = payload.get("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported experiment spec schema {schema!r} "
                f"(this version reads {SPEC_SCHEMA_VERSION})"
            )
        return cls(
            scenario=ScenarioSpec(**payload["scenario"]),
            policy=payload["policy"],
            n_seeds=payload["n_seeds"],
            stop_at_convergence=payload["stop_at_convergence"],
        )

    def spec_hash(self) -> str:
        """Deterministic content hash of the spec (stable across processes and runs)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def short_hash(self) -> str:
        """First 12 hex digits of :meth:`spec_hash`, for display."""
        return self.spec_hash()[:12]


class Sweep:
    """A cartesian grid over any combination of experiment and scenario axes.

    >>> sweep = Sweep(base, policy=["fedavg-random", "autofl"], setting=["S1", "S3"])
    >>> len(sweep.expand())
    4

    Axis order is preserved: the first axis varies slowest, matching how the paper's
    figures group their bars.
    """

    def __init__(
        self,
        base: ExperimentSpec | None = None,
        axes: Mapping[str, Iterable[object]] | None = None,
        **axis_kwargs: Iterable[object],
    ) -> None:
        self.base = base if base is not None else ExperimentSpec()
        merged: dict[str, tuple[object, ...]] = {}
        for source in (axes or {}), axis_kwargs:
            for name, values in source.items():
                values = tuple(values)
                if not values:
                    raise ConfigurationError(f"sweep axis {name!r} has no values")
                if name in merged:
                    raise ConfigurationError(f"sweep axis {name!r} given twice")
                merged[name] = values
        if not merged:
            raise ConfigurationError("a sweep needs at least one axis")
        # Validate axis names eagerly so typos fail before any simulation runs.
        for name in merged:
            self.base.with_axis(name, merged[name][0])
        self.axes: dict[str, tuple[object, ...]] = merged

    @property
    def size(self) -> int:
        """Number of grid points (before seed replication)."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> list[ExperimentSpec]:
        """Materialise every grid point as a validated :class:`ExperimentSpec`."""
        specs = []
        names = list(self.axes)
        for combo in itertools.product(*self.axes.values()):
            spec = self.base
            for name, value in zip(names, combo):
                spec = spec.with_axis(name, value)
            specs.append(spec.validate())
        return specs

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        axes = ", ".join(f"{name}={list(values)}" for name, values in self.axes.items())
        return f"Sweep({self.size} points: {axes})"


def parse_axis(text: str) -> tuple[str, tuple[object, ...]]:
    """Parse a CLI axis definition ``name=v1,v2,…`` with per-axis value typing."""
    name, sep, raw_values = text.partition("=")
    name = name.strip().replace("-", "_")
    if not sep or not name or not raw_values.strip():
        raise ConfigurationError(
            f"invalid axis {text!r}; expected the form name=value1,value2,…"
        )
    values = tuple(_coerce_axis_value(name, value.strip()) for value in raw_values.split(","))
    return name, values


def _coerce_axis_value(axis: str, value: str) -> object:
    if axis in _INT_AXES:
        try:
            return int(value)
        except ValueError:
            raise ConfigurationError(f"axis {axis!r} takes integers, got {value!r}") from None
    if axis in _BOOL_AXES:
        lowered = value.lower()
        if lowered in ("true", "yes", "1"):
            return True
        if lowered in ("false", "no", "0"):
            return False
        raise ConfigurationError(f"axis {axis!r} takes true/false, got {value!r}")
    if axis in _FLOAT_AXES:
        try:
            return float(value)
        except ValueError:
            raise ConfigurationError(f"axis {axis!r} takes floats, got {value!r}") from None
    return value
