"""Plain-text report formatting for experiment results."""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ConfigurationError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format rows as a fixed-width text table (the benches print these to stdout).

    Numeric cells are rendered with three significant decimals; column widths adapt to the
    longest cell in each column.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        rendered_rows.append([_render_cell(cell) for cell in row])
    widths = [
        max(len(str(headers[column])), *(len(row[column]) for row in rendered_rows), 1)
        if rendered_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
