"""Plain-text report formatting for experiment results.

Beyond the generic :func:`format_table`, this module renders the three shapes the CLI and
the benchmarks print: policy-comparison rows (normalised to FedAvg-Random), batches of
:class:`~repro.experiments.runner.ExperimentResult` and registry listings.
"""

from __future__ import annotations

import csv
import io
import json
import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError

#: Output formats every tabular CLI command accepts (``--format``).
OUTPUT_FORMATS: tuple[str, ...] = ("table", "csv", "json")

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.experiments.harness import ComparisonRow
    from repro.experiments.runner import BatchReport, ExperimentResult
    from repro.registry import Registry

#: Column headers of a normalised policy-comparison table (Figures 8-11).
COMPARISON_HEADERS: tuple[str, ...] = (
    "policy",
    "PPW (local)",
    "PPW (global)",
    "conv. speedup",
    "accuracy",
    "converged",
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format rows as a fixed-width text table (the benches print these to stdout).

    Numeric cells are rendered with three significant decimals; column widths adapt to the
    longest cell in each column.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        rendered_rows.append([_render_cell(cell) for cell in row])
    widths = [
        max(len(str(headers[column])), *(len(row[column]) for row in rendered_rows), 1)
        if rendered_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_rows(
    headers: Sequence[str], rows: Sequence[Sequence[object]], fmt: str = "table"
) -> str:
    """Render a header/row grid in one of the shared output formats.

    ``table`` is the human fixed-width rendering of :func:`format_table`; ``csv`` and
    ``json`` are machine-readable with raw (unrounded) values — ``json`` yields a list
    of one object per row keyed by header, ``csv`` a standard comma-separated document
    with a header line.  Every tabular command (``compare``, ``status``, ``query``,
    ``report``, ``eval``) renders through here, so downstream tooling sees one shape.
    """
    if fmt == "table":
        return format_table(headers, rows)
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
        return buffer.getvalue().rstrip("\n")
    if fmt == "json":
        def _cell(value: object) -> object:
            # NaN cells (missing metrics) become null: strict JSON has no NaN literal.
            if isinstance(value, float) and math.isnan(value):
                return None
            return value

        return json.dumps(
            [{header: _cell(value) for header, value in zip(headers, row)} for row in rows],
            indent=2,
            sort_keys=False,
        )
    raise ConfigurationError(
        f"unknown output format {fmt!r}; expected one of {list(OUTPUT_FORMATS)}"
    )


def _render_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_comparison(rows: Sequence["ComparisonRow"]) -> str:
    """Format policy-comparison rows as the paper-style normalised table."""
    return format_table(COMPARISON_HEADERS, [row.as_tuple() for row in rows])


def format_experiment_results(results: Sequence["ExperimentResult"]) -> str:
    """Format a batch of experiment results, one grid point per row."""
    headers = [
        "policy",
        "workload",
        "setting",
        "interference",
        "network",
        "data",
        "devices",
        "seeds",
        "converged",
        "rounds",
        "accuracy",
        "energy (kJ)",
        "source",
    ]
    rows = []
    for result in results:
        scenario = result.spec.scenario
        rows.append(
            [
                result.spec.policy,
                scenario.workload,
                scenario.setting,
                scenario.interference,
                scenario.network,
                scenario.data_distribution,
                scenario.num_devices,
                result.n_seeds,
                f"{result.convergence_rate:.0%}",
                round(result.mean_rounds, 1),
                result.mean_final_accuracy,
                result.mean_global_energy_j / 1e3,
                "cache" if result.cached else "run",
            ]
        )
    return format_table(headers, rows)


def format_batch_footer(report: "BatchReport") -> str:
    """One-line execution summary printed under a sweep table."""
    return (
        f"{report.total} grid point(s): {report.cache_hits} from cache, "
        f"{report.executed} executed in {report.elapsed_s:.2f}s"
    )


def format_registry(axis: str, registry: "Registry") -> str:
    """Format one registry's entries as a name/aliases/summary table."""
    rows = [
        [entry.name, ", ".join(entry.aliases) or "-", entry.summary or "-"]
        for entry in registry.entries()
    ]
    title = f"{axis} ({len(rows)} registered)"
    return f"{title}\n{format_table(['name', 'aliases', 'summary'], rows)}"
