"""Evaluation constants: the paper's Tables 4 and 5 plus the policy line-ups per figure."""

from __future__ import annotations

from repro.config import GLOBAL_PARAMETER_SETTINGS
from repro.core.selection import CLUSTER_TEMPLATES

#: The baseline policies every overview figure compares AutoFL against (Figures 8-11).
BASELINE_POLICIES: tuple[str, ...] = ("fedavg-random", "power", "performance")

#: The full policy line-up of the overview figures, in presentation order.
EVALUATION_POLICIES: tuple[str, ...] = (
    "fedavg-random",
    "power",
    "performance",
    "oparticipant",
    "ofl",
    "autofl",
)

#: The prior-work comparison line-up of Figures 13-14 (aggregator-based baselines).
PRIOR_WORK_AGGREGATORS: tuple[str, ...] = ("fednova", "fedl")

__all__ = [
    "BASELINE_POLICIES",
    "CLUSTER_TEMPLATES",
    "EVALUATION_POLICIES",
    "GLOBAL_PARAMETER_SETTINGS",
    "PRIOR_WORK_AGGREGATORS",
]
