"""Machine-checked invariants of the simulator's accounting identities.

The round engine and the simulation runner promise a handful of physical identities
regardless of scenario — the checkers here audit any
:class:`~repro.sim.results.RoundExecution`, :class:`~repro.sim.results.BatchRoundExecution`
or :class:`~repro.sim.results.SimulationResult` against them:

* **energy accounting** — the round's global energy equals the sum of the per-device
  energies (participants' compute + radio + waiting, plus the idle draw of every
  non-selected online device), and the array-sum and per-device-object views agree;
* **id partition** — the participant, dropped (straggler) and failed (fault) id sets are
  pairwise disjoint and together exactly cover the selected set;
* **round time** — the round closes when the slowest retained participant finishes: the
  round time equals the max retained wall time under the straggler deadline;
* **offline devices** — devices outside the online mask draw zero idle energy, and no
  selection may exceed the online population (K never exceeds who is reachable);
* **failure semantics** — a mid-round failure never transmits (zero radio time/energy)
  and never waits for the aggregated model.

Checkers return :class:`InvariantViolation` lists instead of raising, so callers (the
fuzzer, the ``BatchRunner`` self-check hook, tests) can aggregate across rounds;
:class:`InvariantAuditor` adapts them to the simulation runner's
:class:`~repro.sim.runner.RoundObserver` hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.sim.results import BatchRoundExecution, RoundExecution, RoundRecord, SimulationResult

#: Absolute tolerance for identities re-computed along a different float path (e.g. the
#: array sum versus the per-device Python sum of the same energies).
ENERGY_RTOL = 1e-9

#: Absolute floor below which energy/time comparisons switch to absolute tolerance.
ABS_TOL = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One broken accounting identity, with enough context to locate it."""

    invariant: str
    message: str
    round_index: int | None = None

    def __str__(self) -> str:
        prefix = f"round {self.round_index}: " if self.round_index is not None else ""
        return f"{prefix}[{self.invariant}] {self.message}"


class ValidationReport:
    """An accumulating list of invariant violations across rounds and checks."""

    def __init__(self) -> None:
        self.violations: list[InvariantViolation] = []
        self.rounds_checked = 0
        self.results_checked = 0

    @property
    def ok(self) -> bool:
        """True when every audited object satisfied every invariant."""
        return not self.violations

    def extend(self, violations: list[InvariantViolation]) -> None:
        """Fold more violations into the report."""
        self.violations.extend(violations)

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.exceptions.ValidationError` describing every violation.

        The raised error carries this report as its ``report`` attribute so callers
        (e.g. the orchestration scheduler) can persist the full audit as an artifact.
        """
        if self.violations:
            details = "\n".join(f"  - {violation}" for violation in self.violations)
            error = ValidationError(
                f"{len(self.violations)} invariant violation(s) detected:\n{details}"
            )
            error.report = self
            raise error

    def to_dict(self) -> dict:
        """JSON-serialisable payload (stored as a job artifact on validation failure)."""
        return {
            "kind": "validation-report",
            "rounds_checked": self.rounds_checked,
            "results_checked": self.results_checked,
            "ok": self.ok,
            "violations": [
                {
                    "invariant": violation.invariant,
                    "message": violation.message,
                    "round_index": violation.round_index,
                }
                for violation in self.violations
            ],
        }

    def __repr__(self) -> str:
        return (
            f"ValidationReport(rounds={self.rounds_checked}, "
            f"results={self.results_checked}, violations={len(self.violations)})"
        )


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=ENERGY_RTOL, abs_tol=ABS_TOL)


def _violation(
    invariant: str, message: str, round_index: int | None
) -> InvariantViolation:
    return InvariantViolation(invariant=invariant, message=message, round_index=round_index)


# ---------------------------------------------------------------------- round executions
def check_round_execution(
    execution: RoundExecution, round_index: int | None = None
) -> list[InvariantViolation]:
    """Audit one scalar :class:`RoundExecution` against the round-level identities."""
    violations: list[InvariantViolation] = []
    selected = set(execution.outcomes)
    participants = set(execution.participant_ids)
    dropped = set(execution.dropped_ids)
    failed = set(execution.failed_ids)

    # Participant/dropped/failed partition the selected set.
    overlaps = (participants & dropped) | (participants & failed) | (dropped & failed)
    if overlaps:
        violations.append(
            _violation(
                "id-partition",
                f"participant/dropped/failed sets overlap on {sorted(overlaps)[:5]}",
                round_index,
            )
        )
    union = participants | dropped | failed
    if union != selected:
        violations.append(
            _violation(
                "id-partition",
                f"participant ∪ dropped ∪ failed ({len(union)} ids) does not cover the "
                f"selected set ({len(selected)} ids)",
                round_index,
            )
        )

    # The round closes with the slowest retained participant.
    retained_times = [
        outcome.total_time_s
        for outcome in execution.outcomes.values()
        if not outcome.dropped and not outcome.failed
    ]
    if retained_times and not _close(execution.round_time_s, max(retained_times)):
        violations.append(
            _violation(
                "round-time",
                f"round_time_s={execution.round_time_s!r} but the slowest retained "
                f"participant took {max(retained_times)!r}",
                round_index,
            )
        )

    # Round energy equals the sum of the per-device energies: every selected device's
    # account entry matches its outcome, non-selected devices are idle-only, and the
    # global total is exactly their sum.
    per_device = execution.energy.per_device
    device_sum = 0.0
    for device_id, energy in per_device.items():
        device_sum += energy.total_j
        outcome = execution.outcomes.get(device_id)
        if outcome is not None:
            if not _close(energy.total_j, outcome.energy.total_j):
                violations.append(
                    _violation(
                        "energy-accounting",
                        f"device {device_id}: account total {energy.total_j!r} J != "
                        f"outcome total {outcome.energy.total_j!r} J",
                        round_index,
                    )
                )
        elif energy.compute_j != 0.0 or energy.communication_j != 0.0:
            violations.append(
                _violation(
                    "energy-accounting",
                    f"non-selected device {device_id} drew active energy "
                    f"(compute={energy.compute_j!r}, radio={energy.communication_j!r})",
                    round_index,
                )
            )
    missing = selected - set(per_device)
    if missing:
        violations.append(
            _violation(
                "energy-accounting",
                f"selected devices missing from the energy account: {sorted(missing)[:5]}",
                round_index,
            )
        )
    if not _close(execution.energy.global_j, device_sum):
        violations.append(
            _violation(
                "energy-accounting",
                f"global energy {execution.energy.global_j!r} J != per-device sum "
                f"{device_sum!r} J",
                round_index,
            )
        )

    # Failures never transmit and never wait for the aggregated model.
    for device_id in failed:
        outcome = execution.outcomes[device_id]
        if outcome.communication_time_s != 0.0 or outcome.energy.communication_j != 0.0:
            violations.append(
                _violation(
                    "failure-semantics",
                    f"failed device {device_id} still transmitted "
                    f"({outcome.communication_time_s!r} s, "
                    f"{outcome.energy.communication_j!r} J)",
                    round_index,
                )
            )
    return violations


def check_batch_execution(
    batch: BatchRoundExecution,
    online_mask: np.ndarray | None = None,
    round_index: int | None = None,
    execution: RoundExecution | None = None,
) -> list[InvariantViolation]:
    """Audit one :class:`BatchRoundExecution` (the vectorised engine's native output).

    ``execution`` is the batch's already-materialised scalar view, when the caller has
    one (the simulation runner builds it every round); without it the checker
    materialises its own for the cross-representation energy identity.
    """
    violations: list[InvariantViolation] = []
    dropped = np.asarray(batch.dropped, dtype=bool)
    # BatchRoundExecution.__post_init__ guarantees failed is never None.
    failed = np.asarray(batch.failed, dtype=bool)

    # Every per-participant quantity must be finite and non-negative.
    for label, values in (
        ("compute_time_s", batch.compute_time_s),
        ("communication_time_s", batch.communication_time_s),
        ("compute_j", batch.compute_j),
        ("communication_j", batch.communication_j),
        ("waiting_j", batch.waiting_j),
        ("idle_j", batch.idle_j),
    ):
        values = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(values)) or np.any(values < 0):
            violations.append(
                _violation(
                    "finite-nonnegative",
                    f"{label} contains negative or non-finite entries",
                    round_index,
                )
            )

    # Participant/dropped/failed partition the selected set (array form).
    participants = set(batch.participant_ids)
    dropped_ids = set(batch.dropped_ids)
    failed_ids = set(batch.failed_ids)
    selected = {int(device_id) for device_id in batch.selected_ids}
    if (participants | dropped_ids | failed_ids) != selected or (
        len(participants) + len(dropped_ids) + len(failed_ids) != len(selected)
    ):
        violations.append(
            _violation(
                "id-partition",
                "participant/dropped/failed id sets do not partition the selection",
                round_index,
            )
        )

    # The round closes with the slowest retained participant.
    retained = ~(dropped | failed)
    if retained.any():
        slowest = float(batch.total_time_s[retained].max())
        if not _close(batch.round_time_s, slowest):
            violations.append(
                _violation(
                    "round-time",
                    f"round_time_s={batch.round_time_s!r} but the slowest retained "
                    f"participant took {slowest!r}",
                    round_index,
                )
            )

    # Selected rows never also idle; offline devices draw zero idle energy.
    selected_rows = np.isin(batch.fleet_device_ids, batch.selected_ids)
    if np.any(batch.idle_j[selected_rows] != 0.0):
        violations.append(
            _violation(
                "idle-accounting",
                "selected devices carry non-zero idle energy in the fleet account",
                round_index,
            )
        )
    if online_mask is not None:
        mask = np.asarray(online_mask, dtype=bool)
        if len(mask) != len(batch.fleet_device_ids):
            violations.append(
                _violation(
                    "online-mask",
                    f"online mask length {len(mask)} != fleet size "
                    f"{len(batch.fleet_device_ids)}",
                    round_index,
                )
            )
        else:
            offline_idle = float(np.sum(np.abs(batch.idle_j[~mask])))
            if offline_idle != 0.0:
                violations.append(
                    _violation(
                        "offline-idle",
                        f"offline devices drew {offline_idle!r} J of idle energy",
                        round_index,
                    )
                )
            # K never exceeds the online population.
            num_online = int(mask.sum())
            if len(batch.selected_ids) > num_online:
                violations.append(
                    _violation(
                        "selection-bound",
                        f"{len(batch.selected_ids)} devices selected but only "
                        f"{num_online} were online",
                        round_index,
                    )
                )
            offline_selected = ~mask[selected_rows]
            if offline_selected.any():
                violations.append(
                    _violation(
                        "selection-bound",
                        f"{int(offline_selected.sum())} selected device(s) were offline",
                        round_index,
                    )
                )

    # Failures never transmit and never wait for the aggregated model.
    if failed.any():
        if np.any(batch.communication_time_s[failed] != 0.0) or np.any(
            batch.communication_j[failed] != 0.0
        ):
            violations.append(
                _violation(
                    "failure-semantics",
                    "failed participants still transmitted (non-zero radio time/energy)",
                    round_index,
                )
            )
        if np.any(batch.waiting_j[failed] != 0.0):
            violations.append(
                _violation(
                    "failure-semantics",
                    "failed participants drew waiting energy after dying",
                    round_index,
                )
            )

    # Round energy equals the sum of the per-device energies: the array-sum totals must
    # agree with the materialised per-device-object account.  Materialising requires
    # well-formed arrays, so the cross-check is skipped once those are already broken.
    if not any(violation.invariant == "finite-nonnegative" for violation in violations):
        scalar = execution if execution is not None else batch.to_execution()
        if not _close(batch.global_energy_j, scalar.energy.global_j):
            violations.append(
                _violation(
                    "energy-accounting",
                    f"array-sum global energy {batch.global_energy_j!r} J != per-device "
                    f"account {scalar.energy.global_j!r} J",
                    round_index,
                )
            )
        violations.extend(check_round_execution(scalar, round_index=round_index))
    return violations


# ---------------------------------------------------------------------- round records
def check_round_record(
    record: RoundRecord, num_devices: int | None = None
) -> list[InvariantViolation]:
    """Audit one :class:`RoundRecord` in isolation (the serialisable trajectory row)."""
    violations: list[InvariantViolation] = []
    index = record.round_index
    selected = set(record.selected_ids)
    dropped = set(record.dropped_ids)
    failed = set(record.failed_ids)
    if not dropped <= selected or not failed <= selected or dropped & failed:
        violations.append(
            _violation(
                "id-partition",
                "dropped/failed ids must be disjoint subsets of the selected ids",
                index,
            )
        )
    if record.num_aggregated < 0:
        violations.append(
            _violation("id-partition", f"num_aggregated={record.num_aggregated} < 0", index)
        )
    if not 0.0 <= record.accuracy <= 1.0:
        violations.append(
            _violation("metric-range", f"accuracy={record.accuracy!r} outside [0, 1]", index)
        )
    if record.round_time_s < 0 or not math.isfinite(record.round_time_s):
        violations.append(
            _violation("metric-range", f"round_time_s={record.round_time_s!r}", index)
        )
    if record.participant_energy_j < 0 or record.global_energy_j < 0:
        violations.append(
            _violation(
                "metric-range",
                f"negative energy (participant={record.participant_energy_j!r}, "
                f"global={record.global_energy_j!r})",
                index,
            )
        )
    # Participants' energy is part of the global account, never more than it.
    if record.participant_energy_j > record.global_energy_j * (1 + ENERGY_RTOL) + ABS_TOL:
        violations.append(
            _violation(
                "energy-accounting",
                f"participant energy {record.participant_energy_j!r} J exceeds global "
                f"energy {record.global_energy_j!r} J",
                index,
            )
        )
    if record.num_online is not None:
        if len(selected) > record.num_online:
            violations.append(
                _violation(
                    "selection-bound",
                    f"{len(selected)} selected > {record.num_online} online",
                    index,
                )
            )
        if num_devices is not None and record.num_online > num_devices:
            violations.append(
                _violation(
                    "selection-bound",
                    f"num_online={record.num_online} exceeds the fleet size {num_devices}",
                    index,
                )
            )
    return violations


def check_simulation_result(
    result: SimulationResult, num_devices: int | None = None
) -> list[InvariantViolation]:
    """Audit a complete :class:`SimulationResult` trajectory."""
    violations: list[InvariantViolation] = []
    if not result.records:
        violations.append(_violation("trajectory", "simulation produced no rounds", None))
        return violations
    indices = [record.round_index for record in result.records]
    if indices != sorted(set(indices)):
        violations.append(
            _violation("trajectory", f"round indices not strictly increasing: {indices[:8]}", None)
        )
    for record in result.records:
        violations.extend(check_round_record(record, num_devices=num_devices))
    last_index = result.records[-1].round_index
    if result.converged_round is not None and not (0 <= result.converged_round <= last_index):
        violations.append(
            _violation(
                "trajectory",
                f"converged_round={result.converged_round} outside the executed range "
                f"[0, {last_index}]",
                None,
            )
        )
    return violations


# ---------------------------------------------------------------------- auditor
class InvariantAuditor:
    """A :class:`~repro.sim.runner.RoundObserver` that audits every executed round.

    Attach to an :class:`~repro.sim.runner.FLSimulation` via ``round_observer=`` to
    check each round's :class:`BatchRoundExecution` and record as they happen, then call
    :meth:`audit_result` on the finished :class:`SimulationResult`.  With
    ``raise_on_violation`` the first broken invariant aborts the run; otherwise the
    report accumulates everything for one end-of-run verdict.
    """

    def __init__(self, raise_on_violation: bool = False, num_devices: int | None = None):
        self.report = ValidationReport()
        self._raise = raise_on_violation
        self._num_devices = num_devices

    def __call__(
        self,
        round_index: int,
        batch: BatchRoundExecution,
        execution: RoundExecution,
        record: RoundRecord,
        online_mask: np.ndarray | None,
    ) -> None:
        """Audit one executed round (the runner's observer hook)."""
        violations = check_batch_execution(
            batch, online_mask=online_mask, round_index=round_index, execution=execution
        )
        violations.extend(check_round_record(record, num_devices=self._num_devices))
        violations.extend(self._cross_check(batch, record, round_index))
        self.report.rounds_checked += 1
        self.report.extend(violations)
        if self._raise:
            self.report.raise_if_failed()

    def _cross_check(
        self, batch: BatchRoundExecution, record: RoundRecord, round_index: int
    ) -> list[InvariantViolation]:
        # The trajectory row must faithfully summarise the execution it came from.
        violations: list[InvariantViolation] = []
        if sorted(record.selected_ids) != sorted(int(i) for i in batch.selected_ids):
            violations.append(
                _violation("record-consistency", "record selected_ids != execution", round_index)
            )
        if tuple(record.failed_ids) != tuple(batch.failed_ids):
            violations.append(
                _violation("record-consistency", "record failed_ids != execution", round_index)
            )
        if not _close(record.round_time_s, batch.round_time_s):
            violations.append(
                _violation(
                    "record-consistency",
                    f"record round_time_s={record.round_time_s!r} != execution "
                    f"{batch.round_time_s!r}",
                    round_index,
                )
            )
        if not _close(record.participant_energy_j, batch.participant_energy_j):
            violations.append(
                _violation(
                    "record-consistency",
                    f"record participant_energy_j={record.participant_energy_j!r} != "
                    f"execution {batch.participant_energy_j!r}",
                    round_index,
                )
            )
        return violations

    def audit_result(self, result: SimulationResult) -> ValidationReport:
        """Audit the finished trajectory and return the accumulated report."""
        self.report.results_checked += 1
        self.report.extend(
            check_simulation_result(result, num_devices=self._num_devices)
        )
        if self._raise:
            self.report.raise_if_failed()
        return self.report
