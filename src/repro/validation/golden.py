"""Golden-trajectory store: record, check and diff seeded per-round metric snapshots.

A *golden trajectory* pins the exact per-round metrics a seeded experiment spec
produces — round time, participant/global energy, accuracy and a digest of the selected
ids — as one compact JSONL file keyed by the spec's deterministic hash plus the golden
and spec schema versions.  Future refactors re-run the spec and compare bit-for-bit:
any behavioural drift surfaces as a :class:`DriftReport` naming the first diverging
round and field, instead of silently bending the physics.

File layout (one file per golden name under the store directory)::

    {"kind": "golden-trajectory", "golden_schema": 1, "spec_schema": 3,
     "spec_hash": "…", "name": "fleet-1k", "num_rounds": 5, "spec": {…}}
    {"round": 0, "accuracy": …, "round_time_s": …, …}
    {"round": 1, …}

Floats are serialised with :func:`json.dumps` (shortest round-trip repr), so equality of
lines is equality of the underlying doubles — "bit-exact" means exactly that.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.exceptions import ValidationError
from repro.experiments.runner import build_simulation
from repro.experiments.spec import SPEC_SCHEMA_VERSION, ExperimentSpec
from repro.sim.results import RoundRecord, SimulationResult
from repro.sim.runner import RoundObserver
from repro.sim.scenarios import get_scenario_preset

#: Bumped whenever the trajectory-row payload's shape changes, so stale goldens are
#: reported (with both versions) instead of mis-compared.
GOLDEN_SCHEMA_VERSION = 1

#: Default on-disk location of the golden store (relative to the repository root).
DEFAULT_GOLDEN_DIR = Path("goldens")

#: The shipped presets pinned by committed golden fixtures.
GOLDEN_PRESETS: tuple[str, ...] = ("fleet-1k", "diurnal-1k", "flaky-fleet", "churn-heavy")

#: Rounds recorded per golden: enough to exercise selection, faults and availability
#: while keeping a full golden-check run well under a CI minute.
GOLDEN_MAX_ROUNDS = 5

#: Policy run in the shipped goldens (the learning policy exercises the feedback path).
GOLDEN_POLICY = "autofl"


def golden_spec(preset: str, max_rounds: int = GOLDEN_MAX_ROUNDS) -> ExperimentSpec:
    """The canonical single-seed experiment spec recorded for one scenario preset."""
    scenario = replace(get_scenario_preset(preset), max_rounds=max_rounds)
    return ExperimentSpec(
        scenario=scenario,
        policy=GOLDEN_POLICY,
        n_seeds=1,
        stop_at_convergence=False,
    ).validate()


def selection_digest(selected_ids: tuple[int, ...]) -> str:
    """Compact digest pinning the exact selection of one round."""
    payload = ",".join(str(device_id) for device_id in selected_ids)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def trajectory_row(record: RoundRecord) -> dict:
    """The compact per-round snapshot stored in a golden file."""
    return {
        "round": record.round_index,
        "num_selected": len(record.selected_ids),
        "num_dropped": len(record.dropped_ids),
        "num_failed": len(record.failed_ids),
        "num_online": record.num_online,
        "selection_sha": selection_digest(record.selected_ids),
        "round_time_s": record.round_time_s,
        "participant_energy_j": record.participant_energy_j,
        "global_energy_j": record.global_energy_j,
        "accuracy": record.accuracy,
        "accuracy_improvement": record.accuracy_improvement,
    }


def trajectory_rows(result: SimulationResult) -> list[dict]:
    """Every round of a finished simulation as golden rows."""
    return [trajectory_row(record) for record in result.records]


@dataclass(frozen=True)
class GoldenTrajectory:
    """One loaded (or freshly recorded) golden: its identity plus the per-round rows."""

    name: str
    spec: ExperimentSpec
    spec_hash: str
    golden_schema: int
    rows: tuple[dict, ...]

    @property
    def num_rounds(self) -> int:
        """Rounds covered by the golden."""
        return len(self.rows)


@dataclass(frozen=True)
class Divergence:
    """One field of one round whose fresh value differs from the golden."""

    round_index: int | None
    field: str
    expected: object
    actual: object

    def __str__(self) -> str:
        where = "trajectory" if self.round_index is None else f"round {self.round_index}"
        return f"{where}: {self.field} expected {self.expected!r}, got {self.actual!r}"


@dataclass
class DriftReport:
    """Outcome of checking one golden against a fresh run of its spec."""

    name: str
    spec_hash: str
    rounds_compared: int
    divergences: list[Divergence]

    @property
    def ok(self) -> bool:
        """True when the fresh trajectory matched the golden bit for bit."""
        return not self.divergences

    @property
    def first_divergence(self) -> Divergence | None:
        """The earliest diverging round/field (None when the check passed)."""
        return self.divergences[0] if self.divergences else None

    def to_dict(self) -> dict:
        """JSON payload (the CI drift-report artifact format)."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "rounds_compared": self.rounds_compared,
            "ok": self.ok,
            "divergences": [
                {
                    "round": divergence.round_index,
                    "field": divergence.field,
                    "expected": divergence.expected,
                    "actual": divergence.actual,
                }
                for divergence in self.divergences
            ],
        }

    def format(self) -> str:
        """Human-readable verdict, leading with the first diverging round and field."""
        if self.ok:
            return f"golden {self.name!r}: OK ({self.rounds_compared} rounds bit-exact)"
        first = self.first_divergence
        lines = [
            f"golden {self.name!r}: DRIFT at {first}",
            f"  {len(self.divergences)} diverging field(s) over "
            f"{self.rounds_compared} compared round(s):",
        ]
        lines.extend(f"  - {divergence}" for divergence in self.divergences[:10])
        if len(self.divergences) > 10:
            lines.append(f"  … and {len(self.divergences) - 10} more")
        return "\n".join(lines)


def diff_trajectories(expected: list[dict], actual: list[dict]) -> list[Divergence]:
    """Field-by-field comparison of two golden row lists, in round order."""
    divergences: list[Divergence] = []
    if len(expected) != len(actual):
        divergences.append(
            Divergence(
                round_index=None,
                field="num_rounds",
                expected=len(expected),
                actual=len(actual),
            )
        )
    for expected_row, actual_row in zip(expected, actual):
        round_index = expected_row.get("round")
        for field_name in expected_row:
            if expected_row[field_name] != actual_row.get(field_name):
                divergences.append(
                    Divergence(
                        round_index=round_index,
                        field=field_name,
                        expected=expected_row[field_name],
                        actual=actual_row.get(field_name),
                    )
                )
    return divergences


def run_trajectory(
    spec: ExperimentSpec, round_observer: RoundObserver | None = None
) -> SimulationResult:
    """Run one single-seed spec and return its full trajectory."""
    if spec.n_seeds != 1:
        raise ValidationError(
            f"golden trajectories are single-seed; spec replicates n_seeds={spec.n_seeds}"
        )
    return build_simulation(spec, round_observer=round_observer).run()


class GoldenStore:
    """Record/check/diff interface over a directory of golden-trajectory JSONL files."""

    def __init__(self, directory: str | os.PathLike = DEFAULT_GOLDEN_DIR) -> None:
        self.directory = Path(directory)

    def path_for(self, name: str) -> Path:
        """On-disk location of one golden."""
        return self.directory / f"{name}.jsonl"

    def names(self) -> list[str]:
        """Recorded golden names (sorted)."""
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.jsonl"))

    # ------------------------------------------------------------------ record
    def record(self, name: str, spec: ExperimentSpec) -> GoldenTrajectory:
        """Run ``spec`` and persist its trajectory as the golden for ``name``."""
        result = run_trajectory(spec)
        rows = trajectory_rows(result)
        golden = GoldenTrajectory(
            name=name,
            spec=spec,
            spec_hash=spec.spec_hash(),
            golden_schema=GOLDEN_SCHEMA_VERSION,
            rows=tuple(rows),
        )
        header = {
            "kind": "golden-trajectory",
            "golden_schema": GOLDEN_SCHEMA_VERSION,
            "spec_schema": SPEC_SCHEMA_VERSION,
            "spec_hash": golden.spec_hash,
            "name": name,
            "num_rounds": len(rows),
            "spec": spec.to_dict(),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path_for(name).open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return golden

    # ------------------------------------------------------------------ load
    def load(self, name: str) -> GoldenTrajectory:
        """Load one golden, failing loudly (with both versions) on schema mismatches."""
        path = self.path_for(name)
        if not path.is_file():
            known = self.names()
            raise ValidationError(
                f"no golden recorded for {name!r} under {self.directory} "
                f"(recorded: {known or 'none'}); run `python -m repro validate record`"
            )
        with path.open("r", encoding="utf-8") as handle:
            lines = [line for line in (raw.strip() for raw in handle) if line]
        if not lines:
            raise ValidationError(f"golden file {path} is empty")
        try:
            header = json.loads(lines[0])
            rows = tuple(json.loads(line) for line in lines[1:])
        except ValueError as exc:
            raise ValidationError(f"golden file {path} is corrupt: {exc}") from exc
        if header.get("kind") != "golden-trajectory":
            raise ValidationError(f"golden file {path} has no golden-trajectory header")
        golden_schema = header.get("golden_schema")
        spec_schema = header.get("spec_schema")
        if golden_schema != GOLDEN_SCHEMA_VERSION or spec_schema != SPEC_SCHEMA_VERSION:
            raise ValidationError(
                f"golden {name!r} was recorded with golden schema {golden_schema!r} / "
                f"spec schema {spec_schema!r}, but this version reads golden schema "
                f"{GOLDEN_SCHEMA_VERSION} / spec schema {SPEC_SCHEMA_VERSION}; "
                "re-record it after confirming the behaviour change is intentional"
            )
        spec_payload = header.get("spec")
        if not isinstance(spec_payload, dict):
            raise ValidationError(
                f"golden {name!r}: header carries no spec payload; the file was edited "
                "or truncated — re-record it"
            )
        try:
            spec = ExperimentSpec.from_dict(spec_payload)
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"golden {name!r}: spec payload is malformed ({exc}); the file was "
                "edited or truncated — re-record it"
            ) from exc
        recomputed = spec.spec_hash()
        if header.get("spec_hash") != recomputed:
            raise ValidationError(
                f"golden {name!r}: stored spec hash {header.get('spec_hash')!r} does not "
                f"match its own spec payload ({recomputed!r}); the file was edited or "
                "truncated — re-record it"
            )
        if header.get("num_rounds") != len(rows):
            raise ValidationError(
                f"golden {name!r}: header promises {header.get('num_rounds')} rounds "
                f"but the file holds {len(rows)}"
            )
        return GoldenTrajectory(
            name=name,
            spec=spec,
            spec_hash=recomputed,
            golden_schema=golden_schema,
            rows=rows,
        )

    # ------------------------------------------------------------------ check / diff
    def check(self, name: str) -> DriftReport:
        """Re-run a golden's stored spec and diff the fresh trajectory against it."""
        golden = self.load(name)
        fresh = run_trajectory(golden.spec)
        return self.diff(golden, fresh)

    def diff(self, golden: GoldenTrajectory, result: SimulationResult) -> DriftReport:
        """Diff a finished trajectory against a golden without re-running anything."""
        expected = list(golden.rows)
        actual = trajectory_rows(result)
        return DriftReport(
            name=golden.name,
            spec_hash=golden.spec_hash,
            rounds_compared=min(len(expected), len(actual)),
            divergences=diff_trajectories(expected, actual),
        )
