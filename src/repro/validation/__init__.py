"""Validation subsystem: invariant checkers, golden trajectories and the scenario fuzzer.

Three complementary guards keep the fast-moving simulator layers honest:

* :mod:`repro.validation.invariants` — machine-checked accounting identities over any
  round execution or simulation result (energy sums, id partitions, round-time and
  online-population bounds);
* :mod:`repro.validation.golden` — record/check/diff of compact per-round trajectory
  snapshots keyed by spec hash, so refactors prove themselves behaviour-preserving
  bit-for-bit on the shipped scenario presets;
* :mod:`repro.validation.fuzzer` — seeded randomised scenarios across every registered
  axis, each run audited against every invariant.

``python -m repro validate {record,check,fuzz}`` exposes all three from the CLI, and
``BatchRunner(validate=True)`` self-checks every executed sweep point.
"""

from repro.validation.fuzzer import FuzzFailure, FuzzReport, run_fuzz, sample_spec
from repro.validation.golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_MAX_ROUNDS,
    GOLDEN_POLICY,
    GOLDEN_PRESETS,
    GOLDEN_SCHEMA_VERSION,
    Divergence,
    DriftReport,
    GoldenStore,
    GoldenTrajectory,
    diff_trajectories,
    golden_spec,
    run_trajectory,
    trajectory_rows,
)
from repro.validation.invariants import (
    InvariantAuditor,
    InvariantViolation,
    ValidationReport,
    check_batch_execution,
    check_round_execution,
    check_round_record,
    check_simulation_result,
)

__all__ = [
    "DEFAULT_GOLDEN_DIR",
    "Divergence",
    "DriftReport",
    "FuzzFailure",
    "FuzzReport",
    "GOLDEN_MAX_ROUNDS",
    "GOLDEN_POLICY",
    "GOLDEN_PRESETS",
    "GOLDEN_SCHEMA_VERSION",
    "GoldenStore",
    "GoldenTrajectory",
    "InvariantAuditor",
    "InvariantViolation",
    "ValidationReport",
    "check_batch_execution",
    "check_round_execution",
    "check_round_record",
    "check_simulation_result",
    "diff_trajectories",
    "golden_spec",
    "run_fuzz",
    "run_trajectory",
    "sample_spec",
    "trajectory_rows",
]
