"""Seeded scenario fuzzer: randomised specs across every registered axis, invariant-checked.

The fuzzer samples :class:`~repro.experiments.spec.ExperimentSpec` points across the
whole registered evaluation space — policies × workloads × settings × interference ×
networks × data distributions × aggregators × availability processes × churn/fault
rates × fleet sizes — runs each one with an
:class:`~repro.validation.invariants.InvariantAuditor` attached, and reports every
broken accounting identity (or outright crash) together with the spec that triggered
it.  Everything derives from one master seed, so a red fuzz run reproduces exactly:
``run_fuzz(seed=…)`` with the reported seed replays the same scenario stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import registry
from repro.config import GlobalParams
from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.sim.scenarios import ScenarioSpec
from repro.validation.invariants import InvariantAuditor, InvariantViolation

#: Fuzzed fleet sizes stay small: invariants do not depend on scale, and small fleets
#: let a CI-minute budget cover hundreds of scenario points.
MIN_FUZZ_DEVICES = 24
MAX_FUZZ_DEVICES = 40

#: Fuzzed round budgets (selection, faults and churn all show up within a few rounds).
MIN_FUZZ_ROUNDS = 3
MAX_FUZZ_ROUNDS = 6

#: Default scenario count when neither a count nor a time budget is given.
DEFAULT_FUZZ_COUNT = 50


def _pick(rng: np.random.Generator, names: list[str]) -> str:
    return names[int(rng.integers(len(names)))]


def sample_spec(rng: np.random.Generator) -> ExperimentSpec:
    """Draw one randomised experiment spec across all registered axes."""
    setting = _pick(rng, registry.SETTINGS.names())
    num_participants = GlobalParams.from_setting(setting).num_participants
    lower = max(MIN_FUZZ_DEVICES, num_participants + 4)
    num_devices = int(rng.integers(lower, max(lower + 1, MAX_FUZZ_DEVICES + 1)))
    scenario = ScenarioSpec(
        workload=_pick(rng, registry.WORKLOADS.names()),
        setting=setting,
        interference=_pick(rng, registry.INTERFERENCE.names()),
        network=_pick(rng, registry.NETWORKS.names()),
        data_distribution=_pick(rng, registry.DATA_DISTRIBUTIONS.names()),
        num_devices=num_devices,
        max_rounds=int(rng.integers(MIN_FUZZ_ROUNDS, MAX_FUZZ_ROUNDS + 1)),
        seed=int(rng.integers(0, 2**31)),
        aggregator=_pick(rng, registry.AGGREGATORS.names()),
        vectorized_sampling=bool(rng.random() < 0.5),
        availability=_pick(rng, registry.AVAILABILITY.names()),
        churn_rate=float(rng.uniform(0.0, 0.15)) if rng.random() < 0.5 else 0.0,
        rejoin_rate=float(rng.uniform(0.1, 0.9)),
        dropout_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.6 else 0.0,
        slow_fault_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.6 else 0.0,
        slow_fault_factor=float(rng.uniform(1.5, 8.0)),
        tier_dropout_rates=(
            {"low": float(rng.uniform(0.0, 0.5))} if rng.random() < 0.3 else None
        ),
    )
    return ExperimentSpec(
        scenario=scenario,
        policy=_pick(rng, registry.POLICIES.names()),
        n_seeds=1,
        stop_at_convergence=False,
    ).validate()


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzzed scenario that broke an invariant (or crashed outright)."""

    scenario_index: int
    label: str
    violation: InvariantViolation

    def __str__(self) -> str:
        return f"scenario #{self.scenario_index} ({self.label}): {self.violation}"


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    scenarios_run: int = 0
    rounds_checked: int = 0
    elapsed_s: float = 0.0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every fuzzed scenario satisfied every invariant."""
        return not self.failures

    def to_dict(self) -> dict:
        """JSON payload (the CI artifact format)."""
        return {
            "seed": self.seed,
            "scenarios_run": self.scenarios_run,
            "rounds_checked": self.rounds_checked,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "failures": [
                {
                    "scenario_index": failure.scenario_index,
                    "label": failure.label,
                    "invariant": failure.violation.invariant,
                    "round": failure.violation.round_index,
                    "message": failure.violation.message,
                }
                for failure in self.failures
            ],
        }

    def format(self) -> str:
        """Human-readable verdict."""
        header = (
            f"fuzz(seed={self.seed}): {self.scenarios_run} scenario(s), "
            f"{self.rounds_checked} round(s) audited in {self.elapsed_s:.1f}s — "
            f"{'OK' if self.ok else f'{len(self.failures)} VIOLATION(S)'}"
        )
        if self.ok:
            return header
        lines = [header]
        lines.extend(f"  - {failure}" for failure in self.failures[:20])
        if len(self.failures) > 20:
            lines.append(f"  … and {len(self.failures) - 20} more")
        return "\n".join(lines)


def run_fuzz(
    count: int | None = None,
    budget_s: float | None = None,
    seed: int = 0,
) -> FuzzReport:
    """Fuzz randomised scenarios until ``count`` runs or the time budget is spent.

    With only ``budget_s`` the fuzzer runs as many scenarios as fit (at least one);
    with only ``count`` it runs exactly that many; with both, whichever limit is hit
    first wins.  With neither, :data:`DEFAULT_FUZZ_COUNT` scenarios run.
    """
    if count is None and budget_s is None:
        count = DEFAULT_FUZZ_COUNT
    rng = np.random.default_rng(seed)
    report = FuzzReport(seed=seed)
    start = time.perf_counter()
    while True:
        if count is not None and report.scenarios_run >= count:
            break
        if (
            budget_s is not None
            and report.scenarios_run > 0
            and time.perf_counter() - start >= budget_s
        ):
            break
        spec = sample_spec(rng)
        index = report.scenarios_run
        auditor = InvariantAuditor(num_devices=spec.scenario.num_devices)
        try:
            result = build_simulation(spec, round_observer=auditor).run()
            auditor.audit_result(result)
        except Exception as exc:  # noqa: BLE001 - any crash is a finding, not an abort
            # A registered-axis combination must never crash the simulator; surface the
            # exception as a violation carrying the reproducing spec label.
            report.failures.append(
                FuzzFailure(
                    scenario_index=index,
                    label=spec.label,
                    violation=InvariantViolation(
                        invariant="crash", message=f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
        else:
            report.failures.extend(
                FuzzFailure(scenario_index=index, label=spec.label, violation=violation)
                for violation in auditor.report.violations
            )
        report.scenarios_run += 1
        report.rounds_checked += auditor.report.rounds_checked
        report.elapsed_s = time.perf_counter() - start
    return report
