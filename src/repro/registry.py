"""Decorator-based registries for every extensible axis of the evaluation space.

The paper's evaluation is a grid over named axes — selection policy, workload, aggregation
algorithm, global-parameter setting and the runtime-variance / data-heterogeneity
scenarios.  Each axis is backed by a :class:`Registry` here, so that

* adding a new policy/workload/aggregator is a one-decorator (or one ``add`` call)
  extension, with no ``if/elif`` dispatch chain to edit;
* every name is validated *early* with a clear error, including a "did you mean"
  suggestion for near-misses;
* the CLI (``python -m repro list``) and :class:`~repro.experiments.spec.ExperimentSpec`
  can enumerate and validate the full evaluation space without instantiating anything.

Registries bootstrap lazily: looking up or listing an axis imports the modules that define
its built-in entries, so importing :mod:`repro.registry` stays cheap and free of import
cycles.

Example
-------
>>> from repro.registry import POLICIES
>>> @POLICIES.register("my-policy", summary="Always picks device 0.")
... class MyPolicy(Policy):                                   # doctest: +SKIP
...     ...
>>> POLICIES.create("my-policy", rng=rng)                     # doctest: +SKIP
"""

from __future__ import annotations

import difflib
import importlib
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, DataError, PolicyError, ReproError


def canonical_key(name: str) -> str:
    """Normalise a registry name for lookup (case- and ``-``/``_``-insensitive)."""
    return name.strip().lower().replace("_", "-")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered object: its canonical name, factory and introspection metadata."""

    name: str
    factory: Callable[..., object]
    aliases: tuple[str, ...] = ()
    summary: str = ""


class Registry:
    """A named collection of factories, looked up by canonical name or alias.

    Parameters
    ----------
    kind:
        Human-readable singular name of what the registry holds (used in error messages
        and by the CLI ``list`` command).
    error_cls:
        Exception class raised for unknown or duplicate names.
    bootstrap_modules:
        Modules imported on first lookup/listing; importing them runs their registration
        decorators.  Keeps the registry module itself dependency-free.
    """

    def __init__(
        self,
        kind: str,
        *,
        error_cls: type[ReproError] = ConfigurationError,
        bootstrap_modules: Sequence[str] = (),
    ) -> None:
        self.kind = kind
        self._error_cls = error_cls
        self._bootstrap_modules = tuple(bootstrap_modules)
        self._bootstrapped = not self._bootstrap_modules
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ registration
    def add(
        self,
        name: str,
        factory: Callable[..., object],
        *,
        aliases: Sequence[str] = (),
        summary: str = "",
    ) -> None:
        """Register ``factory`` under ``name`` (plus optional aliases)."""
        key = canonical_key(name)
        taken = set(self._entries) | set(self._aliases)
        if key in taken:
            raise self._error_cls(f"duplicate {self.kind} name {name!r}")
        # Validate every alias before touching the registry, so a rejected
        # registration never leaves a partial entry behind.
        alias_keys: dict[str, str] = {}
        for alias in aliases:
            alias_key = canonical_key(alias)
            if alias_key in taken or alias_key == key or alias_key in alias_keys:
                raise self._error_cls(f"duplicate {self.kind} alias {alias!r}")
            alias_keys[alias_key] = key
        self._entries[key] = RegistryEntry(
            name=name,
            factory=factory,
            aliases=tuple(aliases),
            summary=summary or _first_doc_line(factory),
        )
        self._aliases.update(alias_keys)

    def register(
        self, name: str, *, aliases: Sequence[str] = (), summary: str = ""
    ) -> Callable[[Callable[..., object]], Callable[..., object]]:
        """Decorator form of :meth:`add`; returns the decorated object unchanged."""

        def decorator(factory: Callable[..., object]) -> Callable[..., object]:
            self.add(name, factory, aliases=aliases, summary=summary)
            return factory

        return decorator

    # ------------------------------------------------------------------ lookup
    def entry(self, name: str) -> RegistryEntry:
        """Resolve ``name`` (or an alias) to its entry, or raise with a suggestion."""
        self._bootstrap()
        key = canonical_key(name)
        key = self._aliases.get(key, key)
        try:
            return self._entries[key]
        except KeyError:
            raise self._error_cls(self._unknown_message(name)) from None

    def get(self, name: str) -> Callable[..., object]:
        """Return the factory registered under ``name``."""
        return self.entry(name).factory

    def create(self, name: str, *args: object, **kwargs: object) -> object:
        """Instantiate the factory registered under ``name``."""
        return self.entry(name).factory(*args, **kwargs)

    def canonical_name(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to the canonical registered name."""
        return self.entry(name).name

    # ------------------------------------------------------------------ introspection
    def names(self) -> list[str]:
        """Canonical names in registration order."""
        self._bootstrap()
        return [entry.name for entry in self._entries.values()]

    def entries(self) -> list[RegistryEntry]:
        """All entries in registration order."""
        self._bootstrap()
        return list(self._entries.values())

    def __contains__(self, name: str) -> bool:
        self._bootstrap()
        key = canonical_key(name)
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._bootstrap()
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"

    # ------------------------------------------------------------------ internals
    def _bootstrap(self) -> None:
        if self._bootstrapped:
            return
        self._bootstrapped = True
        for module in self._bootstrap_modules:
            importlib.import_module(module)

    def _unknown_message(self, name: str) -> str:
        known = sorted(self._entries[key].name for key in self._entries)
        message = f"unknown {self.kind} {name!r}; expected one of {known}"
        candidates = list(self._entries) + list(self._aliases)
        close = difflib.get_close_matches(canonical_key(name), candidates, n=1)
        if close:
            match = self._aliases.get(close[0], close[0])
            message += f" — did you mean {self._entries[match].name!r}?"
        return message


def _first_doc_line(obj: object) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


#: Participant-selection policies (the paper's baselines, oracles and AutoFL itself).
POLICIES = Registry(
    "policy",
    error_cls=PolicyError,
    bootstrap_modules=(
        "repro.core.selection",
        "repro.core.oracle",
        "repro.core.controller",
    ),
)

#: FL workloads (systems-level :class:`~repro.nn.workloads.WorkloadProfile` instances).
WORKLOADS = Registry(
    "workload",
    error_cls=ConfigurationError,
    bootstrap_modules=("repro.nn.workloads",),
)

#: Gradient-aggregation algorithms.
AGGREGATORS = Registry(
    "aggregator",
    error_cls=PolicyError,
    bootstrap_modules=("repro.fl.aggregation",),
)

#: On-device interference scenarios (runtime-variance axis).
INTERFERENCE = Registry(
    "interference scenario",
    error_cls=ConfigurationError,
    bootstrap_modules=("repro.interference.corunner",),
)

#: Network scenarios (runtime-variance axis).
NETWORKS = Registry(
    "network scenario",
    error_cls=ConfigurationError,
    bootstrap_modules=("repro.network.bandwidth",),
)

#: Data-heterogeneity scenarios.
DATA_DISTRIBUTIONS = Registry(
    "data distribution",
    error_cls=DataError,
    bootstrap_modules=("repro.data.partition",),
)

#: Global-parameter settings (the paper's Table 5, S1-S4).
SETTINGS = Registry(
    "global parameter setting",
    error_cls=ConfigurationError,
    bootstrap_modules=("repro.config",),
)

#: Named scenario presets (paper-scale and large-fleet evaluation points).
SCENARIOS = Registry(
    "scenario preset",
    error_cls=ConfigurationError,
    bootstrap_modules=("repro.sim.scenarios",),
)

#: Fleet availability processes (the fleet-dynamics axis).
AVAILABILITY = Registry(
    "availability process",
    error_cls=ConfigurationError,
    bootstrap_modules=("repro.dynamics.availability",),
)

#: All registries by the plural axis name the CLI exposes (``python -m repro list``).
REGISTRIES: dict[str, Registry] = {
    "policies": POLICIES,
    "workloads": WORKLOADS,
    "aggregators": AGGREGATORS,
    "interference": INTERFERENCE,
    "networks": NETWORKS,
    "data-distributions": DATA_DISTRIBUTIONS,
    "settings": SETTINGS,
    "scenarios": SCENARIOS,
    "availability": AVAILABILITY,
}


def get_registry(axis: str) -> Registry:
    """Look up a registry by its plural axis name (used by the CLI)."""
    key = canonical_key(axis)
    if key not in REGISTRIES:
        message = f"unknown registry {axis!r}; expected one of {sorted(REGISTRIES)}"
        close = difflib.get_close_matches(key, REGISTRIES, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise ConfigurationError(message)
    return REGISTRIES[key]
