"""Runtime-variance substrate: co-running application interference and thermal throttling.

The paper emulates on-device interference by launching a synthetic co-running application
whose CPU and memory utilisation follow a web-browsing pattern (Section 5.2), and observes
that interference shifts the optimal participant cluster and the optimal execution target
(Sections 3.2 and 6.2).  This subpackage generates those interference patterns and converts
them into compute/memory slowdown factors.
"""

from repro.interference.corunner import (
    CoRunnerProfile,
    InterferenceGenerator,
    InterferenceScenario,
    WEB_BROWSING_PROFILE,
)
from repro.interference.slowdown import SlowdownModel
from repro.interference.thermal import ThermalModel

__all__ = [
    "CoRunnerProfile",
    "InterferenceGenerator",
    "InterferenceScenario",
    "SlowdownModel",
    "ThermalModel",
    "WEB_BROWSING_PROFILE",
]
