"""Synthetic co-running application generator.

Paper Section 5.2: "To emulate realistic on-device interference, we initiate a synthetic
co-running application on a random subset of devices, mimicking the effect of a real-world
application, i.e., web browsing.  The synthetic application generates CPU and memory
utilization patterns following those of web browsing."

The generator reproduces exactly that: each round, a configurable fraction of devices hosts
a co-runner whose CPU/memory utilisation is drawn from a web-browsing-like distribution
(bursty CPU around 30–60 %, moderate memory pressure).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.registry import INTERFERENCE


class InterferenceScenario(enum.Enum):
    """Interference execution scenarios used throughout the evaluation."""

    NONE = "none"
    MODERATE = "moderate"
    HEAVY = "heavy"

    @classmethod
    def from_name(cls, name: "str | InterferenceScenario") -> "InterferenceScenario":
        """Coerce a scenario name into an enum member via the registry."""
        if isinstance(name, cls):
            return name
        return INTERFERENCE.create(name)  # type: ignore[return-value]


INTERFERENCE.add(
    InterferenceScenario.NONE.value,
    lambda: InterferenceScenario.NONE,
    summary="No co-running applications on any device.",
)
INTERFERENCE.add(
    InterferenceScenario.MODERATE.value,
    lambda: InterferenceScenario.MODERATE,
    summary="Web-browsing-like co-runner on half of the devices.",
)
INTERFERENCE.add(
    InterferenceScenario.HEAVY.value,
    lambda: InterferenceScenario.HEAVY,
    summary="Aggressive co-runner on most devices (paper's interference study).",
)


@dataclass(frozen=True)
class CoRunnerProfile:
    """Statistical profile of a co-running application's resource usage.

    CPU and memory utilisation are sampled from Beta distributions, which are bounded on
    ``[0, 1]`` and capture the bursty, right-skewed utilisation of interactive mobile apps.
    """

    name: str
    cpu_alpha: float
    cpu_beta: float
    mem_alpha: float
    mem_beta: float

    def __post_init__(self) -> None:
        if min(self.cpu_alpha, self.cpu_beta, self.mem_alpha, self.mem_beta) <= 0:
            raise ConfigurationError("Beta distribution parameters must be positive")

    def sample(self, rng: np.random.Generator) -> tuple[float, float]:
        """Sample one (cpu_util, mem_util) pair in ``[0, 1]``."""
        cpu = float(rng.beta(self.cpu_alpha, self.cpu_beta))
        mem = float(rng.beta(self.mem_alpha, self.mem_beta))
        return cpu, mem

    @property
    def mean_cpu_util(self) -> float:
        """Mean CPU utilisation of the profile."""
        return self.cpu_alpha / (self.cpu_alpha + self.cpu_beta)

    @property
    def mean_mem_util(self) -> float:
        """Mean memory utilisation of the profile."""
        return self.mem_alpha / (self.mem_alpha + self.mem_beta)


#: Web-browsing-like co-runner: mean CPU utilisation ~45 %, mean memory usage ~35 %.
WEB_BROWSING_PROFILE = CoRunnerProfile(
    name="web-browsing",
    cpu_alpha=4.5,
    cpu_beta=5.5,
    mem_alpha=3.5,
    mem_beta=6.5,
)

#: Fraction of devices that host a co-runner in each scenario.
SCENARIO_ACTIVE_FRACTION: dict[InterferenceScenario, float] = {
    InterferenceScenario.NONE: 0.0,
    InterferenceScenario.MODERATE: 0.5,
    InterferenceScenario.HEAVY: 0.9,
}


@dataclass(frozen=True)
class InterferenceSample:
    """Co-runner activity observed on one device for one round."""

    co_cpu_util: float
    co_mem_util: float

    @property
    def active(self) -> bool:
        """Whether any co-runner activity is present."""
        return self.co_cpu_util > 0.0 or self.co_mem_util > 0.0


class InterferenceGenerator:
    """Samples per-device co-runner activity for each aggregation round."""

    def __init__(
        self,
        scenario: InterferenceScenario | str = InterferenceScenario.NONE,
        profile: CoRunnerProfile = WEB_BROWSING_PROFILE,
        active_fraction: float | None = None,
    ) -> None:
        if isinstance(scenario, str):
            try:
                scenario = InterferenceScenario(scenario.lower())
            except ValueError as exc:
                raise ConfigurationError(f"unknown interference scenario {scenario!r}") from exc
        self._scenario = scenario
        self._profile = profile
        fraction = (
            active_fraction
            if active_fraction is not None
            else SCENARIO_ACTIVE_FRACTION[scenario]
        )
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("active_fraction must be in [0, 1]")
        self._active_fraction = fraction

    @property
    def scenario(self) -> InterferenceScenario:
        """The configured interference scenario."""
        return self._scenario

    @property
    def active_fraction(self) -> float:
        """Fraction of devices hosting a co-runner each round."""
        return self._active_fraction

    def sample_arrays(
        self, rng: np.random.Generator, num_devices: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample every device's co-runner activity for one round as two arrays.

        One vectorised draw decides which devices host a co-runner and one Beta draw per
        utilisation dimension fills in their activity, so sampling cost is independent of
        Python-level fleet size — this is the fleet-wide sampler the batched round engine
        and large-fleet scenarios rely on.
        """
        if num_devices < 1:
            raise ConfigurationError("num_devices must be >= 1")
        active = rng.random(num_devices) < self._active_fraction
        cpu = np.zeros(num_devices, dtype=np.float64)
        mem = np.zeros(num_devices, dtype=np.float64)
        num_active = int(active.sum())
        if num_active:
            cpu[active] = rng.beta(
                self._profile.cpu_alpha, self._profile.cpu_beta, size=num_active
            )
            mem[active] = rng.beta(
                self._profile.mem_alpha, self._profile.mem_beta, size=num_active
            )
        return cpu, mem

    def sample(self, rng: np.random.Generator, num_devices: int) -> list[InterferenceSample]:
        """Sample the co-runner activity of every device for one round.

        The per-device draw order is part of the experiment contract: seeded runs replay
        the exact same condition trajectories across releases.  :meth:`sample_arrays` is
        the vectorised sampler (same distribution, different stream) for large fleets.
        """
        if num_devices < 1:
            raise ConfigurationError("num_devices must be >= 1")
        samples: list[InterferenceSample] = []
        for _ in range(num_devices):
            if rng.random() < self._active_fraction:
                cpu, mem = self._profile.sample(rng)
                samples.append(InterferenceSample(co_cpu_util=cpu, co_mem_util=mem))
            else:
                samples.append(InterferenceSample(co_cpu_util=0.0, co_mem_util=0.0))
        return samples
