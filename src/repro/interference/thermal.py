"""Thermal-throttling model.

Paper Section 6.2 attributes part of the CPU's degradation under interference to "frequent
thermal throttling": sustained high power draw on a passively cooled phone forces the DVFS
governor to cap the frequency.  The model here converts sustained power (training plus
co-runner) into an additional throttling slowdown applied to CPU execution.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class ThermalModel:
    """Simple steady-state thermal throttling model.

    The sustainable power budget of a passively cooled phone chassis is a few watts; power
    drawn above that budget is assumed to force a proportional frequency (and therefore
    performance) reduction once the thermal capacitance is exhausted, which is the
    steady-state behaviour relevant to multi-minute training rounds.
    """

    def __init__(
        self, sustainable_power_watt: float = 4.0, throttle_sensitivity: float = 0.12
    ) -> None:
        if sustainable_power_watt <= 0:
            raise ConfigurationError("sustainable_power_watt must be positive")
        if throttle_sensitivity < 0:
            raise ConfigurationError("throttle_sensitivity must be non-negative")
        self._budget = sustainable_power_watt
        self._sensitivity = throttle_sensitivity

    @property
    def sustainable_power_watt(self) -> float:
        """Chassis-level sustainable power budget in watts."""
        return self._budget

    def throttle_slowdown(self, sustained_power_watt: float) -> float:
        """Additional slowdown factor (>= 1.0) for a sustained power draw.

        Power at or below the budget incurs no throttling; each watt above the budget adds
        ``throttle_sensitivity`` to the slowdown.
        """
        if sustained_power_watt < 0:
            raise ConfigurationError("sustained_power_watt must be non-negative")
        excess = max(0.0, sustained_power_watt - self._budget)
        return 1.0 + self._sensitivity * excess

    def throttle_slowdown_batch(self, sustained_power_watt: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`throttle_slowdown` over per-device sustained power draws."""
        if np.any(sustained_power_watt < 0):
            raise ConfigurationError("sustained_power_watt must be non-negative")
        excess = np.maximum(0.0, sustained_power_watt - self._budget)
        return 1.0 + self._sensitivity * excess
