"""Conversion of co-runner activity into compute and memory slowdown factors.

Paper Section 6.2 observes that, under interference, CPU training performance degrades
because of (1) competition for CPU time slices and cache and (2) frequent thermal
throttling, while the GPU is largely insulated from a CPU-bound co-runner.  The model here
captures both effects: CPU compute slowdown grows super-linearly with co-runner CPU
utilisation, memory slowdown grows with co-runner memory usage (shared LLC/DRAM), and GPUs
see only the memory component.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


#: Reference compute capability (GFLOPS) the interference intensities are calibrated
#: against.  Devices weaker than the reference feel a given co-runner proportionally more,
#: stronger devices feel it less — the paper's observation that high-end devices tolerate
#: interference best (2.0x / 3.1x better performance than mid/low under interference).
REFERENCE_CAPABILITY_GFLOPS = 80.0


class SlowdownModel:
    """Maps co-runner (cpu_util, mem_util) to per-target slowdown factors (>= 1.0)."""

    def __init__(
        self,
        cpu_contention_weight: float = 1.4,
        cache_contention_weight: float = 0.5,
        memory_contention_weight: float = 0.8,
        gpu_memory_weight: float = 0.4,
    ) -> None:
        weights = (
            cpu_contention_weight,
            cache_contention_weight,
            memory_contention_weight,
            gpu_memory_weight,
        )
        if min(weights) < 0:
            raise ConfigurationError("slowdown weights must be non-negative")
        self._cpu_weight = cpu_contention_weight
        self._cache_weight = cache_contention_weight
        self._mem_weight = memory_contention_weight
        self._gpu_mem_weight = gpu_memory_weight

    @staticmethod
    def _capability_factor(capability_gflops: float | None) -> float:
        """Scale the felt co-runner intensity by the device's compute headroom."""
        if capability_gflops is None:
            return 1.0
        if capability_gflops <= 0:
            raise ConfigurationError("capability_gflops must be positive")
        return float(REFERENCE_CAPABILITY_GFLOPS / capability_gflops)

    def cpu_compute_slowdown(
        self, co_cpu_util: float, co_mem_util: float, capability_gflops: float | None = None
    ) -> float:
        """Compute-slowdown of CPU training under a co-runner.

        A co-runner at 50 % CPU roughly halves the time-slice share of the training threads
        and additionally pollutes the shared cache, so the slowdown is a convex function of
        the co-runner utilisation; powerful SoCs absorb the same co-runner with less impact.
        """
        self._validate(co_cpu_util, co_mem_util)
        felt = co_cpu_util * self._capability_factor(capability_gflops)
        contention = self._cpu_weight * felt + self._cache_weight * felt**2
        return 1.0 + contention

    def gpu_compute_slowdown(
        self, co_cpu_util: float, co_mem_util: float, capability_gflops: float | None = None
    ) -> float:
        """Compute-slowdown of GPU training under a (CPU-bound) co-runner.

        The GPU does not share execution units with the co-runner; only the kernel-dispatch
        path on the CPU is mildly affected.
        """
        self._validate(co_cpu_util, co_mem_util)
        return 1.0 + 0.15 * co_cpu_util

    def memory_slowdown(
        self,
        co_cpu_util: float,
        co_mem_util: float,
        target: str,
        capability_gflops: float | None = None,
    ) -> float:
        """Memory-bandwidth slowdown from the co-runner's DRAM/LLC pressure."""
        self._validate(co_cpu_util, co_mem_util)
        felt = co_mem_util * self._capability_factor(capability_gflops)
        if target == "cpu":
            return 1.0 + self._mem_weight * felt
        if target == "gpu":
            return 1.0 + self._gpu_mem_weight * co_mem_util
        raise ConfigurationError(f"unknown target {target!r} (expected 'cpu' or 'gpu')")

    def compute_slowdown(
        self,
        co_cpu_util: float,
        co_mem_util: float,
        target: str,
        capability_gflops: float | None = None,
    ) -> float:
        """Compute-slowdown for the requested execution target."""
        if target == "cpu":
            return self.cpu_compute_slowdown(co_cpu_util, co_mem_util, capability_gflops)
        if target == "gpu":
            return self.gpu_compute_slowdown(co_cpu_util, co_mem_util, capability_gflops)
        raise ConfigurationError(f"unknown target {target!r} (expected 'cpu' or 'gpu')")

    # ------------------------------------------------------------------ batched variants
    def compute_slowdown_batch(
        self,
        co_cpu_util: np.ndarray,
        co_mem_util: np.ndarray,
        gpu_mask: np.ndarray,
        capability_gflops: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`compute_slowdown` for per-device execution targets.

        ``gpu_mask`` selects, per device, whether the GPU formula applies; all other
        devices use the CPU formula with their capability-scaled felt utilisation.
        """
        self._validate_batch(co_cpu_util, co_mem_util)
        felt = co_cpu_util * (REFERENCE_CAPABILITY_GFLOPS / capability_gflops)
        cpu = 1.0 + (self._cpu_weight * felt + self._cache_weight * felt**2)
        gpu = 1.0 + 0.15 * co_cpu_util
        return np.where(gpu_mask, gpu, cpu)

    def memory_slowdown_batch(
        self,
        co_cpu_util: np.ndarray,
        co_mem_util: np.ndarray,
        gpu_mask: np.ndarray,
        capability_gflops: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`memory_slowdown` for per-device execution targets."""
        self._validate_batch(co_cpu_util, co_mem_util)
        felt = co_mem_util * (REFERENCE_CAPABILITY_GFLOPS / capability_gflops)
        cpu = 1.0 + self._mem_weight * felt
        gpu = 1.0 + self._gpu_mem_weight * co_mem_util
        return np.where(gpu_mask, gpu, cpu)

    @staticmethod
    def _validate(co_cpu_util: float, co_mem_util: float) -> None:
        if not 0.0 <= co_cpu_util <= 1.0 or not 0.0 <= co_mem_util <= 1.0:
            raise ConfigurationError("co-runner utilisations must be in [0, 1]")

    @staticmethod
    def _validate_batch(co_cpu_util: np.ndarray, co_mem_util: np.ndarray) -> None:
        for values in (co_cpu_util, co_mem_util):
            if np.any(values < 0.0) or np.any(values > 1.0):
                raise ConfigurationError("co-runner utilisations must be in [0, 1]")
