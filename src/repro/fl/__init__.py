"""Federated-learning framework: clients, server, aggregation algorithms, training backends.

Implements the FedAvg baseline the paper builds on (Section 2.1) plus the comparison
algorithms of Section 6.3 — FedProx, FedNova and FEDL — and the two training backends used
by the simulator: real numpy gradient training (for correctness and small-scale runs) and a
surrogate convergence model (for 200-device, 1000-round experiments).
"""

from repro.fl.aggregation import (
    Aggregator,
    ClientUpdate,
    FedAvgAggregator,
    FedNovaAggregator,
    FedProxAggregator,
    FEDLAggregator,
    get_aggregator,
)
from repro.fl.client import FLClient
from repro.fl.metrics import ConvergenceTracker, EfficiencySummary
from repro.fl.server import NumpyTrainingBackend, RoundTrainingResult, SurrogateTrainingBackend
from repro.fl.surrogate import SurrogateConvergenceModel
from repro.fl.trainer import LocalTrainer

__all__ = [
    "Aggregator",
    "ClientUpdate",
    "ConvergenceTracker",
    "EfficiencySummary",
    "FEDLAggregator",
    "FLClient",
    "FedAvgAggregator",
    "FedNovaAggregator",
    "FedProxAggregator",
    "LocalTrainer",
    "NumpyTrainingBackend",
    "RoundTrainingResult",
    "SurrogateConvergenceModel",
    "SurrogateTrainingBackend",
    "get_aggregator",
]
