"""Local on-device training loop for the numpy backend."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


@dataclass(frozen=True)
class LocalTrainingResult:
    """Outcome of one device's local training."""

    mean_loss: float
    num_steps: int
    num_samples: int


class LocalTrainer:
    """Runs the FedAvg local-training step: ``E`` epochs of minibatch SGD on the local shard."""

    def __init__(self, loss: SoftmaxCrossEntropy | None = None) -> None:
        self._loss = loss or SoftmaxCrossEntropy()

    def train(
        self,
        model: Sequential,
        features: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        epochs: int,
        optimizer: SGD,
        rng: np.random.Generator,
    ) -> LocalTrainingResult:
        """Train ``model`` in place and return the mean loss and step count."""
        if len(features) != len(labels):
            raise ModelError("features and labels must be aligned")
        if len(features) == 0:
            return LocalTrainingResult(mean_loss=0.0, num_steps=0, num_samples=0)
        if batch_size <= 0 or epochs <= 0:
            raise ModelError("batch_size and epochs must be positive")
        losses: list[float] = []
        steps = 0
        for _ in range(epochs):
            order = rng.permutation(len(features))
            for start in range(0, len(order), batch_size):
                batch = order[start : start + batch_size]
                logits = model.forward(features[batch], training=True)
                loss_value = self._loss.forward(logits, labels[batch])
                model.backward(self._loss.backward())
                optimizer.step(model)
                model.zero_grads()
                losses.append(loss_value)
                steps += 1
        return LocalTrainingResult(
            mean_loss=float(np.mean(losses)), num_steps=steps, num_samples=len(features)
        )

    def evaluate(self, model: Sequential, features: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of ``model`` on the given evaluation set."""
        if len(features) == 0:
            raise ModelError("cannot evaluate on an empty dataset")
        logits = model.predict(features)
        return SoftmaxCrossEntropy.accuracy(logits, labels)
