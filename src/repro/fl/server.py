"""Model-aggregation server and its two training backends.

The server side of Figure 2: select K participants (done by a selection policy), broadcast
the global model, collect local updates, aggregate and evaluate.  Two interchangeable
backends implement the "train and evaluate" part:

* :class:`NumpyTrainingBackend` performs real local SGD on per-device shards with the numpy
  neural-network library and evaluates the aggregated model on a held-out test set.
* :class:`SurrogateTrainingBackend` advances the analytical convergence model of
  :mod:`repro.fl.surrogate`, which is what the large-scale experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GlobalParams
from repro.data.federated import FederatedDataset
from repro.data.profiles import DeviceDataProfile
from repro.exceptions import SimulationError
from repro.fl.aggregation import Aggregator, ClientUpdate
from repro.fl.client import FLClient
from repro.fl.surrogate import SurrogateConvergenceModel
from repro.fl.trainer import LocalTrainer
from repro.nn.model import Sequential
from repro.nn.workloads import WorkloadProfile


@dataclass(frozen=True)
class RoundTrainingResult:
    """Statistical outcome of one aggregation round."""

    accuracy: float
    previous_accuracy: float
    mean_train_loss: float
    num_updates: int

    @property
    def accuracy_improvement(self) -> float:
        """Accuracy delta relative to the previous round (drives the AutoFL reward)."""
        return self.accuracy - self.previous_accuracy


class TrainingBackend:
    """Interface shared by the surrogate and numpy training backends."""

    @property
    def accuracy(self) -> float:
        """Current global-model accuracy."""
        raise NotImplementedError

    def run_round(self, participant_ids: list[int]) -> RoundTrainingResult:
        """Execute one aggregation round with the given participants."""
        raise NotImplementedError


class SurrogateTrainingBackend(TrainingBackend):
    """Training backend driven by the analytical convergence model."""

    def __init__(
        self,
        workload: WorkloadProfile,
        data_profiles: dict[int, DeviceDataProfile],
        aggregator: Aggregator,
        global_params: GlobalParams,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not data_profiles:
            raise SimulationError("data_profiles must not be empty")
        self._data_profiles = data_profiles
        self._global_params = global_params
        self._model = SurrogateConvergenceModel(
            workload,
            aggregator_robustness=aggregator.surrogate_robustness,
            rng=rng if rng is not None else np.random.default_rng(0),
        )

    @property
    def accuracy(self) -> float:
        return self._model.accuracy

    def run_round(self, participant_ids: list[int]) -> RoundTrainingResult:
        previous = self._model.accuracy
        try:
            profiles = [self._data_profiles[device_id] for device_id in participant_ids]
        except KeyError as exc:
            raise SimulationError(f"no data profile for device {exc.args[0]}") from exc
        accuracy = self._model.step(
            profiles,
            local_epochs=self._global_params.local_epochs,
            num_expected_participants=self._global_params.num_participants,
        )
        return RoundTrainingResult(
            accuracy=accuracy,
            previous_accuracy=previous,
            mean_train_loss=max(0.0, 1.0 - accuracy),
            num_updates=len(participant_ids),
        )


class NumpyTrainingBackend(TrainingBackend):
    """Training backend running real local SGD with the numpy neural-network library."""

    def __init__(
        self,
        model: Sequential,
        federated_dataset: FederatedDataset,
        aggregator: Aggregator,
        global_params: GlobalParams,
        test_features: np.ndarray,
        test_labels: np.ndarray,
        learning_rate: float = 0.05,
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(test_features) == 0:
            raise SimulationError("test set must not be empty")
        self._model = model
        self._dataset = federated_dataset
        self._aggregator = aggregator
        self._global_params = global_params
        self._test_features = test_features
        self._test_labels = test_labels
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._trainer = LocalTrainer()
        self._clients: dict[int, FLClient] = {}
        self._learning_rate = learning_rate
        self._global_weights = model.get_weights()
        self._accuracy = self._evaluate()

    @property
    def accuracy(self) -> float:
        return self._accuracy

    @property
    def global_weights(self) -> list[dict[str, np.ndarray]]:
        """Copy of the current global model weights."""
        return [{name: value.copy() for name, value in layer.items()} for layer in self._global_weights]

    def _client(self, device_id: int) -> FLClient:
        if device_id not in self._clients:
            local = self._dataset.local_dataset(device_id)
            self._clients[device_id] = FLClient(
                device_id=device_id,
                features=local.features,
                labels=local.labels,
                learning_rate=self._learning_rate,
            )
        return self._clients[device_id]

    def _evaluate(self) -> float:
        self._model.set_weights(self._global_weights)
        return self._trainer.evaluate(self._model, self._test_features, self._test_labels)

    def run_round(self, participant_ids: list[int]) -> RoundTrainingResult:
        if not participant_ids:
            return RoundTrainingResult(
                accuracy=self._accuracy,
                previous_accuracy=self._accuracy,
                mean_train_loss=0.0,
                num_updates=0,
            )
        previous = self._accuracy
        updates: list[ClientUpdate] = []
        for device_id in participant_ids:
            client = self._client(device_id)
            if client.num_samples == 0:
                continue
            updates.append(
                client.local_update(
                    self._model,
                    self._global_weights,
                    batch_size=self._global_params.batch_size,
                    epochs=self._global_params.local_epochs,
                    rng=self._rng,
                    proximal_mu=self._aggregator.client_proximal_mu,
                )
            )
        if updates:
            self._global_weights = self._aggregator.aggregate(self._global_weights, updates)
        self._accuracy = self._evaluate()
        mean_loss = float(np.mean([update.train_loss for update in updates])) if updates else 0.0
        return RoundTrainingResult(
            accuracy=self._accuracy,
            previous_accuracy=previous,
            mean_train_loss=mean_loss,
            num_updates=len(updates),
        )
