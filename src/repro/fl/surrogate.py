"""Surrogate convergence model: fast analytical FL accuracy dynamics.

Running the paper's large experiments (200 devices, up to 1000 aggregation rounds, a dozen
policies) with real gradient computation would take hours per figure; the paper's *systems*
conclusions, however, depend only on the shape of the convergence curve, not on the exact
gradient values.  The surrogate model reproduces that shape with a saturating learning
curve whose per-round gain is driven by the statistical quality of the selected
participants:

* Rounds whose participants hold balanced, full-coverage (IID-like) data make progress at
  the workload's base rate toward its achievable accuracy.
* Rounds dominated by Dirichlet-concentrated (non-IID) participants make little progress
  and — below a quality threshold — actively regress the global model, which is what makes
  random selection fail to converge within 1000 rounds in the paper's Non-IID(75 %/100 %)
  scenarios (Figure 11).
* Robust aggregators (FedNova, FEDL, FedProx) recover part of the lost progress, matching
  their relative standing in Section 6.3.
* More local work (epochs, participants) increases the per-round gain with diminishing
  returns, consistent with the FedAvg convergence literature the paper cites.
"""

from __future__ import annotations

import numpy as np

from repro.data.profiles import DeviceDataProfile
from repro.exceptions import SimulationError
from repro.nn.workloads import WorkloadProfile

#: Round quality below which conflicting non-IID updates regress the global model.  The
#: value is calibrated so that — matching paper Figure 11 — random selection still converges
#: (slowly) under Non-IID(50 %) but fails to converge within 1000 rounds under
#: Non-IID(75 %) and Non-IID(100 %), while selections composed of IID devices always clear it.
STALL_QUALITY_THRESHOLD = 0.56

#: Initial accuracy of an untrained classifier (roughly random guessing for >= 10 classes).
INITIAL_ACCURACY = 0.10


class SurrogateConvergenceModel:
    """Analytical global-accuracy dynamics for one FL training job."""

    def __init__(
        self,
        workload: WorkloadProfile,
        aggregator_robustness: float = 0.0,
        rng: np.random.Generator | None = None,
        initial_accuracy: float = INITIAL_ACCURACY,
        noise_scale: float = 0.004,
    ) -> None:
        if not 0.0 <= aggregator_robustness < 1.0:
            raise SimulationError("aggregator_robustness must be in [0, 1)")
        if not 0.0 <= initial_accuracy < workload.max_accuracy:
            raise SimulationError("initial_accuracy must be below the workload's max accuracy")
        self._workload = workload
        self._robustness = aggregator_robustness
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._initial_accuracy = initial_accuracy
        self._noise_scale = noise_scale
        self._accuracy = initial_accuracy

    @property
    def accuracy(self) -> float:
        """Current global model accuracy."""
        return self._accuracy

    def reset(self) -> None:
        """Reset the model to its untrained state."""
        self._accuracy = self._initial_accuracy

    def round_quality(self, participants: list[DeviceDataProfile]) -> float:
        """Sample-weighted statistical quality of a round's participant set, in ``[0, 1]``."""
        if not participants:
            return 0.0
        total_samples = sum(profile.num_samples for profile in participants)
        if total_samples == 0:
            return 0.0
        return sum(
            profile.data_quality * profile.num_samples for profile in participants
        ) / total_samples

    def step(
        self,
        participants: list[DeviceDataProfile],
        local_epochs: int,
        num_expected_participants: int,
    ) -> float:
        """Advance the global accuracy by one aggregation round and return the new value.

        Parameters
        ----------
        participants:
            Data profiles of the devices whose updates were actually aggregated this round
            (stragglers excluded by the protocol do not appear here).
        local_epochs:
            The FL global parameter ``E``.
        num_expected_participants:
            The FL global parameter ``K`` — used to penalise rounds that aggregated fewer
            updates than intended (e.g. because stragglers were dropped).
        """
        if local_epochs <= 0 or num_expected_participants <= 0:
            raise SimulationError("local_epochs and num_expected_participants must be positive")
        if not participants:
            # No update arrived: accuracy merely drifts with evaluation noise.
            self._accuracy = self._clip(self._accuracy + self._rng.normal(0.0, self._noise_scale))
            return self._accuracy

        quality = self.round_quality(participants)
        # Robust aggregators recover part of the quality lost to non-IID drift.
        effective_quality = quality + self._robustness * (1.0 - quality) * 0.6

        epochs_factor = (local_epochs / 5.0) ** 0.5
        participation_factor = min(1.0, len(participants) / num_expected_participants) ** 0.5
        headroom = self._workload.max_accuracy - self._accuracy

        if effective_quality < STALL_QUALITY_THRESHOLD:
            # Conflicting, class-concentrated updates: progress stalls and the model can
            # regress slightly (paper Figure 6(a) / Figure 11(c)(d)).
            deficit = STALL_QUALITY_THRESHOLD - effective_quality
            regression = 0.02 * deficit * (self._accuracy - self._initial_accuracy)
            delta = -regression
        else:
            gain_scale = (effective_quality - STALL_QUALITY_THRESHOLD) / (
                1.0 - STALL_QUALITY_THRESHOLD
            )
            delta = (
                self._workload.base_gain
                * gain_scale
                * epochs_factor
                * participation_factor
                * headroom
            )
        delta += self._rng.normal(0.0, self._noise_scale)
        self._accuracy = self._clip(self._accuracy + delta)
        return self._accuracy

    def _clip(self, value: float) -> float:
        return float(np.clip(value, 0.0, self._workload.max_accuracy))
