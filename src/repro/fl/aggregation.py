"""Gradient-aggregation algorithms: FedAvg, FedProx, FedNova and FEDL.

Each aggregator consumes the per-client :class:`ClientUpdate` objects collected during a
round and produces the new global model weights.  In addition to the real weight-space
aggregation used by the numpy backend, every aggregator publishes a
``surrogate_robustness`` scalar in ``[0, 1)`` describing how strongly it mitigates non-IID
client drift; the surrogate convergence backend uses it to reproduce the relative ordering
of Section 6.3 (FedNova/FEDL are more robust than plain FedAvg but still lose to AutoFL's
explicit participant selection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PolicyError
from repro.registry import AGGREGATORS as AGGREGATOR_REGISTRY

Weights = list[dict[str, np.ndarray]]


@dataclass
class ClientUpdate:
    """One client's contribution to a round."""

    device_id: int
    weights: Weights
    num_samples: int
    num_steps: int
    train_loss: float = 0.0

    def __post_init__(self) -> None:
        if self.num_samples < 0 or self.num_steps < 0:
            raise PolicyError("num_samples and num_steps must be non-negative")


def _zeros_like(weights: Weights) -> Weights:
    return [{name: np.zeros_like(value) for name, value in layer.items()} for layer in weights]


def _add_scaled(target: Weights, source: Weights, scale: float) -> None:
    for target_layer, source_layer in zip(target, source):
        for name in target_layer:
            target_layer[name] += scale * source_layer[name]


def _subtract(left: Weights, right: Weights) -> Weights:
    return [
        {name: left_layer[name] - right_layer[name] for name in left_layer}
        for left_layer, right_layer in zip(left, right)
    ]


class Aggregator:
    """Base class for aggregation algorithms."""

    #: Name used in experiment reports.
    name: str = "base"
    #: How strongly the algorithm mitigates non-IID drift (used by the surrogate backend).
    surrogate_robustness: float = 0.0
    #: Whether local clients should apply a proximal term (FedProx).
    client_proximal_mu: float = 0.0

    def aggregate(self, global_weights: Weights, updates: list[ClientUpdate]) -> Weights:
        """Combine client updates into new global weights."""
        raise NotImplementedError

    @staticmethod
    def _validate(updates: list[ClientUpdate]) -> None:
        if not updates:
            raise PolicyError("cannot aggregate an empty set of client updates")
        if all(update.num_samples == 0 for update in updates):
            raise PolicyError("all client updates report zero samples")


@AGGREGATOR_REGISTRY.register("fedavg")
class FedAvgAggregator(Aggregator):
    """FedAvg: sample-count-weighted average of client weights (McMahan et al.)."""

    name = "fedavg"
    surrogate_robustness = 0.0

    def aggregate(self, global_weights: Weights, updates: list[ClientUpdate]) -> Weights:
        self._validate(updates)
        total_samples = sum(update.num_samples for update in updates)
        new_weights = _zeros_like(global_weights)
        for update in updates:
            _add_scaled(new_weights, update.weights, update.num_samples / total_samples)
        return new_weights


@AGGREGATOR_REGISTRY.register("fedprox")
class FedProxAggregator(FedAvgAggregator):
    """FedProx: FedAvg aggregation with a client-side proximal term.

    The aggregation rule is identical to FedAvg; the difference is the local objective —
    clients regularise toward the global model with strength ``mu`` — which the numpy
    backend honours through :class:`~repro.nn.optimizers.ProximalSGD`.
    """

    name = "fedprox"
    surrogate_robustness = 0.30

    def __init__(self, mu: float = 0.01) -> None:
        if mu < 0:
            raise PolicyError("mu must be non-negative")
        self.client_proximal_mu = mu


@AGGREGATOR_REGISTRY.register("fednova")
class FedNovaAggregator(Aggregator):
    """FedNova: normalised averaging of client progress (Wang et al., NeurIPS 2020).

    Each client's cumulative progress is normalised by its number of local steps before
    averaging, which removes the objective inconsistency introduced by heterogeneous local
    work (stragglers performing fewer steps, non-IID clients drifting further per step).
    """

    name = "fednova"
    surrogate_robustness = 0.45

    def aggregate(self, global_weights: Weights, updates: list[ClientUpdate]) -> Weights:
        self._validate(updates)
        total_samples = sum(update.num_samples for update in updates)
        normalized_direction = _zeros_like(global_weights)
        effective_steps = 0.0
        for update in updates:
            if update.num_steps == 0:
                continue
            weight = update.num_samples / total_samples
            delta = _subtract(global_weights, update.weights)
            _add_scaled(normalized_direction, delta, weight / update.num_steps)
            effective_steps += weight * update.num_steps
        new_weights = [
            {name: value.copy() for name, value in layer.items()} for layer in global_weights
        ]
        _add_scaled(new_weights, normalized_direction, -effective_steps)
        return new_weights


@AGGREGATOR_REGISTRY.register("fedl")
class FEDLAggregator(Aggregator):
    """FEDL: server-side relaxation of the averaged update (Dinh et al., ToN 2021).

    Clients approximately solve a local problem built from the global weights; the server
    then moves the global model a fraction ``eta`` of the way toward the weighted average of
    the local solutions, damping the impact of any single round's (possibly skewed) updates.
    """

    name = "fedl"
    surrogate_robustness = 0.40

    def __init__(self, eta: float = 0.7) -> None:
        if not 0.0 < eta <= 1.0:
            raise PolicyError("eta must be in (0, 1]")
        self.eta = eta

    def aggregate(self, global_weights: Weights, updates: list[ClientUpdate]) -> Weights:
        self._validate(updates)
        total_samples = sum(update.num_samples for update in updates)
        average = _zeros_like(global_weights)
        for update in updates:
            _add_scaled(average, update.weights, update.num_samples / total_samples)
        movement = _subtract(average, global_weights)
        new_weights = [
            {name: value.copy() for name, value in layer.items()} for layer in global_weights
        ]
        _add_scaled(new_weights, movement, self.eta)
        return new_weights


#: Built-in aggregation algorithms by name (kept for introspection; the authoritative
#: lookup is :data:`repro.registry.AGGREGATORS`, which third parties can extend).
AGGREGATORS: dict[str, type[Aggregator]] = {
    FedAvgAggregator.name: FedAvgAggregator,
    FedProxAggregator.name: FedProxAggregator,
    FedNovaAggregator.name: FedNovaAggregator,
    FEDLAggregator.name: FEDLAggregator,
}


def get_aggregator(name: "str | Aggregator") -> Aggregator:
    """Instantiate an aggregator by registered name (``fedavg``, ``fedprox``, …)."""
    if isinstance(name, Aggregator):
        return name
    return AGGREGATOR_REGISTRY.create(name)  # type: ignore[return-value]
