"""Convergence and energy-efficiency metrics.

The paper reports three quantities per configuration (Figures 8-11, 13-14): energy
efficiency in performance-per-watt (PPW), time-to-convergence, and training accuracy, with
PPW and convergence time normalised to the FedAvg-Random baseline.  Following the paper's
definition, "performance" is the fixed amount of learning work needed to reach the target
accuracy, so PPW reduces to the reciprocal of the energy consumed to get there (lower
energy-to-target means proportionally higher PPW).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class EfficiencySummary:
    """Aggregate efficiency metrics of one simulated FL training job."""

    converged: bool
    rounds_executed: int
    convergence_round: int | None
    convergence_time_s: float
    total_time_s: float
    final_accuracy: float
    participant_energy_j: float
    global_energy_j: float

    @property
    def local_ppw(self) -> float:
        """Performance-per-watt of the participating devices (paper's "local" efficiency)."""
        if self.participant_energy_j <= 0:
            return 0.0
        return 1.0 / self.participant_energy_j

    @property
    def global_ppw(self) -> float:
        """Performance-per-watt over the whole cluster including idle devices."""
        if self.global_energy_j <= 0:
            return 0.0
        return 1.0 / self.global_energy_j

    @property
    def convergence_speedup_reference_s(self) -> float:
        """Time used for convergence-time comparisons (total time when never converged)."""
        return self.convergence_time_s if self.converged else self.total_time_s


class ConvergenceTracker:
    """Tracks accuracy progress and detects when the target accuracy is first sustained."""

    def __init__(self, target_accuracy: float, patience: int = 1) -> None:
        if not 0.0 < target_accuracy <= 1.0:
            raise SimulationError("target_accuracy must be in (0, 1]")
        if patience < 1:
            raise SimulationError("patience must be >= 1")
        self._target = target_accuracy
        self._patience = patience
        self._hits = 0
        self._converged_round: int | None = None

    @property
    def target_accuracy(self) -> float:
        """The accuracy threshold being tracked."""
        return self._target

    @property
    def converged(self) -> bool:
        """Whether the target has been reached (and sustained for ``patience`` rounds)."""
        return self._converged_round is not None

    @property
    def converged_round(self) -> int | None:
        """Round index at which convergence was declared (None if not converged)."""
        return self._converged_round

    def update(self, round_index: int, accuracy: float) -> bool:
        """Record one round's accuracy; returns True if convergence is (now) declared."""
        if self._converged_round is not None:
            return True
        if accuracy >= self._target:
            self._hits += 1
            if self._hits >= self._patience:
                self._converged_round = round_index
                return True
        else:
            self._hits = 0
        return False


def relative_improvement(value: float, baseline: float) -> float:
    """``value / baseline`` guarding against a zero baseline."""
    if baseline == 0:
        raise SimulationError("baseline must be non-zero for a relative comparison")
    return value / baseline
