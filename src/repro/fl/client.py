"""FL client: a device-side wrapper around local training (paper Figure 2, steps 3-4)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.fl.aggregation import ClientUpdate, Weights
from repro.fl.trainer import LocalTrainer
from repro.nn.model import Sequential
from repro.nn.optimizers import ProximalSGD, SGD


class FLClient:
    """One data owner: holds a local shard and produces model updates on request."""

    def __init__(
        self,
        device_id: int,
        features: np.ndarray,
        labels: np.ndarray,
        learning_rate: float = 0.05,
    ) -> None:
        if len(features) != len(labels):
            raise DataError("client features and labels must be aligned")
        self._device_id = device_id
        self._features = features
        self._labels = labels
        self._learning_rate = learning_rate
        self._trainer = LocalTrainer()

    @property
    def device_id(self) -> int:
        """Identifier of the device this client runs on."""
        return self._device_id

    @property
    def num_samples(self) -> int:
        """Number of local training samples."""
        return len(self._labels)

    def local_update(
        self,
        model: Sequential,
        global_weights: Weights,
        batch_size: int,
        epochs: int,
        rng: np.random.Generator,
        proximal_mu: float = 0.0,
    ) -> ClientUpdate:
        """Run local training starting from ``global_weights`` and return the update.

        The shared ``model`` instance is reused across clients (weights are overwritten
        before training), which keeps memory bounded when simulating many clients.
        """
        model.set_weights(global_weights)
        if proximal_mu > 0.0:
            optimizer: SGD = ProximalSGD(learning_rate=self._learning_rate, mu=proximal_mu)
            optimizer.set_reference(global_weights)
        else:
            optimizer = SGD(learning_rate=self._learning_rate)
        result = self._trainer.train(
            model,
            self._features,
            self._labels,
            batch_size=batch_size,
            epochs=epochs,
            optimizer=optimizer,
            rng=rng,
        )
        return ClientUpdate(
            device_id=self._device_id,
            weights=model.get_weights(),
            num_samples=result.num_samples,
            num_steps=result.num_steps,
            train_loss=result.mean_loss,
        )
