"""Process-wide metrics registry: counters, gauges and fixed-bucket histograms.

Design constraints (see the Observability section of the README):

* **Zero dependencies** — stdlib only, so the registry can be imported from any layer
  (engine, service, analytics, CLI) without widening the dependency surface.
* **True no-op when disabled.** Every mutating call checks ``registry.enabled`` first
  and returns before taking a lock or touching a dict, so instrumented hot paths cost
  one attribute load + branch per call when telemetry is off (the microbenchmark in
  ``tests/telemetry/test_instrumentation.py`` pins this below 2% of a fleet-1k round).
* **Fixed-bucket histograms.** Quantiles are computed from cumulative bucket counts
  using the *smallest upper bound whose cumulative count reaches ``q x count``* rule —
  the same convention Prometheus' ``histogram_quantile`` converges to at bucket
  boundaries — so snapshots can be merged across processes by adding bucket counts.
* **Snapshot / merge.** ``MetricsRegistry.snapshot()`` returns plain JSON-able dicts
  and ``merge()`` folds such a snapshot back in (counters and histograms add, gauges
  overwrite).  The scheduler uses this to ship child-process metrics through its
  result pipe into the parent registry that backs ``--metrics-port``.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

from repro.exceptions import TelemetryError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile_from_buckets",
]

#: Default histogram bounds (seconds-flavoured): log-spaced from 0.1 ms to 10 000 s.
#: ``+Inf`` is always appended implicitly, so any observation lands in a bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Quantile ``q`` in (0, 1] from per-bucket ``counts`` under upper ``bounds``.

    Returns the smallest bucket upper bound whose cumulative count is >= ``q * total``.
    When that bound is ``+Inf`` (observations beyond the last finite bucket) the last
    finite bound is returned as the best available estimate; with no observations the
    result is ``nan``.
    """
    total = sum(counts)
    if total == 0:
        return math.nan
    rank = q * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= rank:
            if math.isinf(bound):
                finite = [b for b in bounds if not math.isinf(b)]
                return finite[-1] if finite else math.nan
            return float(bound)
    return math.nan  # pragma: no cover - cumulative always reaches total


class _Instrument:
    """Shared plumbing: a name, help text, a lock and the owning registry."""

    kind = "instrument"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self._registry = registry
        self.name = name
        self.help = help
        self._lock = threading.Lock()


class Counter(_Instrument):
    """Monotonically increasing sum, one series per label combination."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        super().__init__(registry, name, help)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease (got {amount})")
        self._add(float(amount), labels)

    def _add(self, amount: float, labels: Mapping[str, object]) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def _entries(self) -> list[dict]:
        with self._lock:
            items = list(self._values.items())
        return [
            {"name": self.name, "kind": self.kind, "help": self.help,
             "labels": dict(key), "value": value}
            for key, value in items
        ]


class Gauge(_Instrument):
    """Last-write-wins point value, one series per label combination."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        super().__init__(registry, name, help)
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._set(float(value), labels)

    def _set(self, value: float, labels: Mapping[str, object]) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), math.nan)

    def _entries(self) -> list[dict]:
        with self._lock:
            items = list(self._values.items())
        return [
            {"name": self.name, "kind": self.kind, "help": self.help,
             "labels": dict(key), "value": value}
            for key, value in items
        ]


class _HistogramSeries:
    __slots__ = ("buckets", "sum", "count")

    def __init__(self, n_buckets: int):
        self.buckets = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram with per-label series and bucket-rule quantiles."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
    ):
        super().__init__(registry, name, help)
        if buckets is None:
            buckets = DEFAULT_BUCKETS
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError(f"histogram {self.name!r} needs at least one bucket")
        if not math.isinf(bounds[-1]):
            bounds = bounds + (math.inf,)
        self.bounds = bounds
        self._series: dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    series.buckets[index] += 1
                    break
            series.sum += value
            series.count += 1

    def _merge_series(
        self, labels: Mapping[str, object], buckets: Sequence[int], total: float, count: int
    ) -> None:
        if len(buckets) != len(self.bounds):
            raise TelemetryError(
                f"histogram {self.name!r}: cannot merge snapshot with "
                f"{len(buckets)} buckets into {len(self.bounds)} bounds"
            )
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            for index, bucket_count in enumerate(buckets):
                series.buckets[index] += int(bucket_count)
            series.sum += float(total)
            series.count += int(count)

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        if series is None:
            return math.nan
        with self._lock:
            counts = list(series.buckets)
        return quantile_from_buckets(self.bounds, counts, q)

    def _entries(self) -> list[dict]:
        with self._lock:
            items = [(key, list(s.buckets), s.sum, s.count) for key, s in self._series.items()]
        entries = []
        for key, buckets, total, count in items:
            entries.append(
                {
                    "name": self.name,
                    "kind": self.kind,
                    "help": self.help,
                    "labels": dict(key),
                    "count": count,
                    "sum": total,
                    "bounds": list(self.bounds),
                    "buckets": buckets,
                    "p50": quantile_from_buckets(self.bounds, buckets, 0.50),
                    "p95": quantile_from_buckets(self.bounds, buckets, 0.95),
                    "p99": quantile_from_buckets(self.bounds, buckets, 0.99),
                }
            )
        return entries


class MetricsRegistry:
    """A named collection of instruments with get-or-create registration.

    ``enabled`` is the single switch every instrument checks before recording; it is
    mutable so :func:`repro.telemetry.configure` can flip one long-lived process-wide
    registry on and off without re-wiring instrumented call sites.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(self, name, help=help, **kwargs)
            elif not isinstance(instrument, cls):
                raise TelemetryError(
                    f"metric {name!r} is already registered as a "
                    f"{instrument.kind}, not a {cls.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> list[dict]:
        """All series as JSON-able dicts, sorted by (name, labels) for determinism."""
        entries: list[dict] = []
        for instrument in self.instruments():
            entries.extend(instrument._entries())
        entries.sort(key=lambda e: (e["name"], sorted(e["labels"].items())))
        return entries

    def merge(self, entries: Iterable[Mapping]) -> None:
        """Fold a :meth:`snapshot` back in: counters/histograms add, gauges overwrite.

        Works regardless of ``self.enabled`` — merging is administrative plumbing
        (e.g. the ``repro metrics`` CLI builds a fresh registry from a snapshot file),
        not hot-path recording.
        """
        for entry in entries:
            kind = entry.get("kind")
            name = entry["name"]
            labels = entry.get("labels", {})
            help_text = entry.get("help", "")
            if kind == "counter":
                self.counter(name, help=help_text)._add(float(entry["value"]), labels)
            elif kind == "gauge":
                self.gauge(name, help=help_text)._set(float(entry["value"]), labels)
            elif kind == "histogram":
                histogram = self.histogram(
                    name, help=help_text, buckets=tuple(entry["bounds"])
                )
                histogram._merge_series(
                    labels, entry["buckets"], entry["sum"], entry["count"]
                )
            else:
                raise TelemetryError(f"cannot merge unknown instrument kind {kind!r}")

    def reset(self) -> None:
        """Drop every registered instrument (test isolation helper)."""
        with self._lock:
            self._instruments.clear()
