"""Exposition surfaces for the metrics registry.

* :func:`render_prometheus` — Prometheus text format 0.0.4 (``# HELP``/``# TYPE``
  headers, cumulative ``_bucket{le=...}`` series, ``_sum``/``_count``).
* :func:`write_snapshot` / :func:`read_snapshot` — atomic JSON snapshot files; the
  scheduler drops one next to the queue after every job so ``python -m repro metrics``
  can inspect a live (or finished) service without scraping HTTP.
* :class:`MetricsServer` — a stdlib ``http.server`` thread behind ``serve
  --metrics-port``, answering ``/metrics`` (exposition text) and ``/healthz``.
* :func:`metrics_table_rows` — flatten a snapshot into rows for the shared
  ``--format {table,csv,json}`` renderer.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.exceptions import TelemetryError
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "METRICS_FILENAME",
    "METRICS_HEADERS",
    "MetricsServer",
    "metrics_table_rows",
    "read_snapshot",
    "render_prometheus",
    "snapshot_payload",
    "write_snapshot",
]

SNAPSHOT_SCHEMA_VERSION = 1

#: Default snapshot filename inside a service root (next to ``queue/`` and
#: ``events.jsonl``).
METRICS_FILENAME = "metrics.json"

METRICS_HEADERS = ("metric", "kind", "labels", "value", "count", "sum", "p50", "p95", "p99")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    formatted = repr(float(value))
    return formatted[:-2] if formatted.endswith(".0") else formatted


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every registered series in the Prometheus text exposition format."""
    lines: list[str] = []
    entries = registry.snapshot()
    seen_headers: set[str] = set()
    for entry in entries:
        name = entry["name"]
        if name not in seen_headers:
            seen_headers.add(name)
            if entry.get("help"):
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['kind']}")
        labels = entry.get("labels", {})
        if entry["kind"] == "histogram":
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["buckets"]):
                cumulative += count
                bucket_labels = _format_labels(labels, {"le": _format_bound(bound)})
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(entry['sum'])}")
            lines.append(f"{name}_count{_format_labels(labels)} {entry['count']}")
        else:
            lines.append(f"{name}{_format_labels(labels)} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n"


# -- snapshot files ------------------------------------------------------------


def snapshot_payload(registry: MetricsRegistry) -> dict:
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "ts": time.time(),
        "metrics": registry.snapshot(),
    }


def write_snapshot(registry: MetricsRegistry, path: str | os.PathLike) -> Path:
    """Atomically write a snapshot JSON (unique temp file + ``os.replace``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(
        f".{target.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(snapshot_payload(registry), handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, target)
    return target


def read_snapshot(path: str | os.PathLike) -> dict:
    """Read a snapshot file back; raises :class:`TelemetryError` on corruption."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, OSError) as exc:
        raise TelemetryError(f"corrupt metrics snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise TelemetryError(f"metrics snapshot {path} has no 'metrics' key")
    return payload


# -- table rows ----------------------------------------------------------------


def _labels_text(labels: Mapping[str, str]) -> str:
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items()))


def metrics_table_rows(entries: Iterable[Mapping]) -> list[tuple]:
    """Flatten snapshot entries into ``METRICS_HEADERS`` rows for ``render_rows``."""
    rows = []
    for entry in entries:
        labels = _labels_text(entry.get("labels", {}))
        if entry["kind"] == "histogram":
            rows.append(
                (
                    entry["name"], entry["kind"], labels, "",
                    entry["count"], f"{entry['sum']:.6g}",
                    f"{entry['p50']:.6g}", f"{entry['p95']:.6g}", f"{entry['p99']:.6g}",
                )
            )
        else:
            rows.append(
                (entry["name"], entry["kind"], labels, f"{entry['value']:.6g}",
                 "", "", "", "", "")
            )
    return rows


# -- HTTP exposition -----------------------------------------------------------


class MetricsServer:
    """Serve ``render_prometheus`` over a daemonised stdlib HTTP server thread.

    ``refresh`` (if given) runs before each scrape — the serve CLI uses it to update
    queue gauges so ``/metrics`` reflects the on-disk queue at scrape time, not at the
    last scheduler poll.  Pass ``port=0`` to bind an ephemeral port (tests); the bound
    port is available as ``server.port``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        refresh: Callable[[], None] | None = None,
    ):
        self.registry = registry
        self.refresh = refresh
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                route = self.path.split("?", 1)[0].rstrip("/") or "/"
                if route in ("/", "/metrics"):
                    if outer.refresh is not None:
                        try:
                            outer.refresh()
                        except Exception:  # pragma: no cover - scrape must not die
                            pass
                    body = render_prometheus(outer.registry).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif route == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain; charset=utf-8")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404, "unknown path (try /metrics)")

            def log_message(self, *args):  # noqa: A002 - silence per-request logging
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics-server", daemon=True
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
