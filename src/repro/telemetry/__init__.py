"""Zero-dependency observability: metrics registry, span tracing, exposition.

The package keeps one process-wide :class:`~repro.telemetry.metrics.MetricsRegistry`
and one :class:`~repro.telemetry.tracing.SpanTracer`, both **disabled by default** so
instrumented hot paths are a single attribute check when nobody is watching (the
committed golden trajectories stay byte-identical — telemetry only ever reads clocks,
never RNG state).

Typical use::

    from repro import telemetry

    telemetry.configure(enabled=True, trace_path="spans.jsonl")
    with telemetry.span("my_phase", category="engine"):
        ...
    print(telemetry.get_registry().snapshot())

Child processes started with the ``spawn`` method do not inherit in-process
configuration, so :func:`configure` mirrors the switch into the ``REPRO_TELEMETRY`` /
``REPRO_TRACE_FILE`` environment variables and this module re-applies them at import
time.  Fork-started children (the scheduler default on Linux) inherit both the flag
and the sink path directly.
"""

from __future__ import annotations

import os

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.telemetry.tracing import (
    Span,
    SpanTracer,
    chrome_trace_events,
    load_spans,
    write_chrome_trace,
)
from repro.telemetry.exporter import (
    METRICS_FILENAME,
    METRICS_HEADERS,
    MetricsServer,
    metrics_table_rows,
    read_snapshot,
    render_prometheus,
    snapshot_payload,
    write_snapshot,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "ENV_ENABLED",
    "ENV_TRACE_FILE",
    "METRICS_FILENAME",
    "METRICS_HEADERS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "SpanTracer",
    "chrome_trace_events",
    "configure",
    "counter",
    "enabled",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "load_spans",
    "metrics_table_rows",
    "quantile_from_buckets",
    "read_snapshot",
    "render_prometheus",
    "reset",
    "snapshot_payload",
    "span",
    "write_chrome_trace",
    "write_snapshot",
]

ENV_ENABLED = "REPRO_TELEMETRY"
ENV_TRACE_FILE = "REPRO_TRACE_FILE"

_TRUTHY = {"1", "true", "yes", "on"}

_UNSET = object()

_REGISTRY = MetricsRegistry(enabled=False)
_TRACER = SpanTracer(registry=_REGISTRY, enabled=False)


def configure(enabled: bool | None = None, trace_path=_UNSET, propagate_env: bool = True):
    """Flip the process-wide telemetry switch and (optionally) attach a span sink.

    ``enabled=None`` leaves the current switch untouched; ``trace_path`` accepts a
    path (enable the JSONL sink), ``None`` (detach it), or may be omitted entirely.
    With ``propagate_env`` (the default) the settings are mirrored into the
    ``REPRO_TELEMETRY`` / ``REPRO_TRACE_FILE`` environment variables so spawned child
    processes pick them up at import time.
    """
    if enabled is not None:
        _REGISTRY.enabled = bool(enabled)
        _TRACER.enabled = bool(enabled)
        if propagate_env:
            if enabled:
                os.environ[ENV_ENABLED] = "1"
            else:
                os.environ.pop(ENV_ENABLED, None)
    if trace_path is not _UNSET:
        _TRACER.set_sink(trace_path)
        if propagate_env:
            if trace_path is not None:
                os.environ[ENV_TRACE_FILE] = str(trace_path)
            else:
                os.environ.pop(ENV_TRACE_FILE, None)


def enabled() -> bool:
    """True when the process-wide registry/tracer are recording."""
    return _REGISTRY.enabled


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry (disabled by default)."""
    return _REGISTRY


def get_tracer() -> SpanTracer:
    """The process-wide span tracer (disabled by default)."""
    return _TRACER


def counter(name: str, help: str = "") -> Counter:
    return _REGISTRY.counter(name, help=help)


def gauge(name: str, help: str = "") -> Gauge:
    return _REGISTRY.gauge(name, help=help)


def histogram(name: str, help: str = "", buckets=None) -> Histogram:
    return _REGISTRY.histogram(name, help=help, buckets=buckets)


def span(name: str, category: str = "app", **attrs):
    """Shortcut for ``get_tracer().span(...)``."""
    return _TRACER.span(name, category=category, **attrs)


def reset(disable: bool = True) -> None:
    """Drop all metrics and spans, detach the sink, optionally disable (tests)."""
    _REGISTRY.reset()
    _TRACER.reset()
    if disable:
        configure(enabled=False, trace_path=None, propagate_env=True)


def _apply_environment() -> None:
    flag = os.environ.get(ENV_ENABLED, "").strip().lower()
    if flag in _TRUTHY:
        trace_file = os.environ.get(ENV_TRACE_FILE) or None
        if trace_file is not None:
            configure(enabled=True, trace_path=trace_file, propagate_env=False)
        else:
            configure(enabled=True, propagate_env=False)


_apply_environment()
