"""Span tracer: nested timing spans with Chrome-trace / Perfetto export.

Spans are recorded with a context manager::

    with tracer.span("control_plane", category="engine", round=3):
        ...

Nesting is tracked per thread (a ``threading.local`` stack), ids are unique per
process, and timestamps come from ``time.perf_counter`` (CLOCK_MONOTONIC on Linux, so
spans from a parent and its forked children share one timebase and line up in a single
trace).  Finished spans go three places:

* an in-memory ring buffer (``tracer.spans()``), capped so a long-running ``serve``
  cannot grow without bound;
* an optional JSONL *sink file* — one span per line, appended atomically — which is how
  spans from scheduler child processes reach ``python -m repro trace``;
* an optional metrics registry, where every span feeds the ``repro_span_s`` histogram
  labelled by span name and category.

``chrome_trace_events`` / ``write_chrome_trace`` convert recorded spans into the
Chrome trace-event JSON format that https://ui.perfetto.dev and ``chrome://tracing``
load directly.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Span",
    "SpanTracer",
    "chrome_trace_events",
    "load_spans",
    "write_chrome_trace",
]

TRACE_SCHEMA_VERSION = 1

#: Ring-buffer cap on in-memory finished spans.
DEFAULT_MAX_SPANS = 10_000


@dataclass
class Span:
    """One finished (or in-flight) timing span."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float = 0.0
    pid: int = 0
    tid: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def dur_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "cat": self.category,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Span":
        return cls(
            name=payload["name"],
            category=payload.get("cat", "app"),
            span_id=payload.get("id", 0),
            parent_id=payload.get("parent"),
            start_s=payload.get("start_s", 0.0),
            end_s=payload.get("end_s", 0.0),
            pid=payload.get("pid", 0),
            tid=payload.get("tid", 0),
            attrs=dict(payload.get("attrs", {})),
        )


class _NullSpan:
    """Returned when tracing is disabled: a context manager that does nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", name: str, category: str, attrs: dict):
        self._tracer = tracer
        self.span = Span(
            name=name,
            category=category,
            span_id=next(tracer._ids),
            parent_id=None,
            start_s=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=attrs,
        )

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        if stack:
            self.span.parent_id = stack[-1].span_id
        stack.append(self.span)
        self.span.start_s = time.perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.end_s = time.perf_counter()
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self.span:
            stack.pop()
        elif self.span in stack:  # pragma: no cover - defensive unwind
            stack.remove(self.span)
        self._tracer._finish(self.span)
        return False


class SpanTracer:
    """Thread-safe span recorder with an optional JSONL sink and metrics bridge."""

    def __init__(
        self,
        registry=None,
        enabled: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self.enabled = enabled
        self._registry = registry
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sink_path: Path | None = None
        self._sink_handle = None
        self._sink_pid: int | None = None

    # -- recording -------------------------------------------------------------

    def span(self, name: str, category: str = "app", **attrs: object):
        """Open a timing span; use as ``with tracer.span("name"): ...``.

        When tracing is disabled this returns a shared null context manager without
        allocating, so instrumented hot paths stay near-free.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, category, attrs)

    def record(
        self,
        name: str,
        category: str = "app",
        start_s: float = 0.0,
        end_s: float = 0.0,
        **attrs: object,
    ) -> Span | None:
        """Record an already-timed span (e.g. a queue claim measured manually)."""
        if not self.enabled:
            return None
        span = Span(
            name=name,
            category=category,
            span_id=next(self._ids),
            parent_id=None,
            start_s=start_s,
            end_s=end_s,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        )
        self._finish(span)
        return span

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._write_sink(span)
        registry = self._registry
        if registry is not None and registry.enabled:
            registry.histogram(
                "repro_span_s", help="Wall-clock duration of traced spans."
            ).observe(span.dur_s, name=span.name, cat=span.category)

    # -- sink ------------------------------------------------------------------

    def set_sink(self, path: str | os.PathLike | None) -> None:
        """Append finished spans as JSONL to ``path`` (``None`` disables the sink)."""
        with self._lock:
            self._close_sink()
            self._sink_path = Path(path) if path is not None else None

    @property
    def sink_path(self) -> Path | None:
        return self._sink_path

    def _write_sink(self, span: Span) -> None:
        if self._sink_path is None:
            return
        # Re-open after fork so each process appends through its own descriptor;
        # single sub-PIPE_BUF writes keep concurrent lines intact.
        if self._sink_handle is None or self._sink_pid != os.getpid():
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink_handle = open(self._sink_path, "a", encoding="utf-8")
            self._sink_pid = os.getpid()
        self._sink_handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self._sink_handle.flush()

    def _close_sink(self) -> None:
        if self._sink_handle is not None and self._sink_pid == os.getpid():
            self._sink_handle.close()
        self._sink_handle = None
        self._sink_pid = None

    # -- inspection ------------------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def reset(self) -> None:
        """Drop recorded spans and detach the sink (test isolation helper)."""
        with self._lock:
            self._spans.clear()
            self._close_sink()
            self._sink_path = None
        self._local = threading.local()


# -- export --------------------------------------------------------------------


def load_spans(path: str | os.PathLike) -> list[Span]:
    """Read a JSONL span sink back into :class:`Span` objects (bad lines skipped)."""
    spans: list[Span] = []
    sink = Path(path)
    if not sink.exists():
        return spans
    with open(sink, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
    return spans


def chrome_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Convert spans to Chrome trace-event dicts (``"ph": "X"`` complete events).

    Timestamps are microseconds relative to the earliest span so the trace starts at
    t=0 regardless of process uptime.
    """
    spans = list(spans)
    if not spans:
        return []
    origin = min(span.start_s for span in spans)
    events = []
    for span in sorted(spans, key=lambda s: s.start_s):
        args = {key: value for key, value in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round((span.start_s - origin) * 1e6, 3),
                "dur": round(span.dur_s * 1e6, 3),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return events


def write_chrome_trace(spans: Sequence[Span], path: str | os.PathLike) -> dict:
    """Write spans as a Chrome/Perfetto-loadable trace JSON; returns the payload."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry", "schema": TRACE_SCHEMA_VERSION},
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
