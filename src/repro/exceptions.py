"""Exception hierarchy for the AutoFL reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can catch a single
base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class DeviceError(ReproError):
    """Raised for invalid device specifications or execution-target requests."""


class DataError(ReproError):
    """Raised for invalid dataset or partitioning requests."""


class ModelError(ReproError):
    """Raised for invalid neural-network construction or shape mismatches."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. no eligible participants)."""


class PolicyError(ReproError):
    """Raised for invalid selection-policy configuration or unknown policy names."""


class ValidationError(ReproError):
    """Raised when a simulation outcome violates a promised invariant or golden trace.

    When the violation was detected by an :class:`~repro.validation.invariants.\
InvariantAuditor`, the full :class:`~repro.validation.invariants.ValidationReport` is
    attached as the ``report`` attribute so callers (e.g. the orchestration scheduler)
    can persist it as an artifact.
    """

    report = None


class ExecutionError(ReproError):
    """Raised when one or more specs of a batch failed while the rest completed.

    ``failures`` holds one :class:`~repro.experiments.runner.SpecFailure` per failing
    spec (naming its hash and carrying the original worker traceback); ``completed``
    holds the results that did finish — by the time this is raised they have already
    been flushed to the result store, so a re-run only re-executes the failures.
    """

    def __init__(self, message: str, failures=(), completed=()):
        super().__init__(message)
        self.failures = tuple(failures)
        self.completed = tuple(completed)


class ServiceError(ReproError):
    """Raised for orchestration-service misuse: illegal job-state transitions,
    double claims, cancelling a finished job, or a corrupt queue/store entry."""


class QueueSaturated(ServiceError):
    """Raised when admission control refuses a submission because the queue depth or
    the store's p95 operation latency crossed the configured threshold.  The CLI maps
    this to exit code 3 so callers can tell "back off and retry" apart from plain
    usage errors (exit 2)."""


class WebhookError(ServiceError):
    """Raised for webhook misuse or delivery failure: unknown hook ids, invalid
    callback URLs, or an endpoint that rejected a delivery."""


class TelemetryError(ReproError):
    """Raised for telemetry misuse: registering the same metric name with a different
    instrument kind, negative counter increments, or merging histogram snapshots whose
    bucket bounds disagree."""


class AnalyticsError(ReproError):
    """Raised for results-warehouse misuse: unknown tables/columns/labels, a backend
    mismatch against an existing warehouse, or a corrupt columnar file."""
