"""Exception hierarchy for the AutoFL reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can catch a single
base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class DeviceError(ReproError):
    """Raised for invalid device specifications or execution-target requests."""


class DataError(ReproError):
    """Raised for invalid dataset or partitioning requests."""


class ModelError(ReproError):
    """Raised for invalid neural-network construction or shape mismatches."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. no eligible participants)."""


class PolicyError(ReproError):
    """Raised for invalid selection-policy configuration or unknown policy names."""


class ValidationError(ReproError):
    """Raised when a simulation outcome violates a promised invariant or golden trace."""
