"""The :class:`Sequential` model container."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.nn.layers.base import Layer, LayerCost


class Sequential:
    """A feed-forward stack of layers with weight (de)serialisation and cost accounting."""

    def __init__(self, layers: Sequence[Layer], input_shape: tuple[int, ...], name: str = "") -> None:
        if not layers:
            raise ModelError("a Sequential model needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name or "sequential"

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        """Run the full forward pass."""
        outputs = inputs
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Run the full backward pass, populating every layer's gradients."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass in inference mode (no caches, dropout disabled)."""
        return self.forward(inputs, training=False)

    def zero_grads(self) -> None:
        """Reset gradient accumulators in every layer."""
        for layer in self.layers:
            layer.zero_grads()

    # ------------------------------------------------------------------ weights
    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copy of all layer parameters, ordered by layer."""
        return [layer.get_weights() for layer in self.layers]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Overwrite all layer parameters from :meth:`get_weights`-formatted data."""
        if len(weights) != len(self.layers):
            raise ModelError(
                f"expected weights for {len(self.layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(self.layers, weights):
            layer.set_weights(layer_weights)

    @property
    def num_params(self) -> int:
        """Total number of trainable scalars."""
        return sum(layer.num_params for layer in self.layers)

    @property
    def model_size_mb(self) -> float:
        """Serialized model size in megabytes (float32 parameters)."""
        return self.num_params * 4 / 1e6

    # ------------------------------------------------------------------ structure
    def layer_counts(self) -> dict[str, int]:
        """Count layers per family (``conv`` / ``fc`` / ``rc`` / ``other``)."""
        counts = {"conv": 0, "fc": 0, "rc": 0, "other": 0}
        for layer in self.layers:
            counts[layer.kind] = counts.get(layer.kind, 0) + 1
        return counts

    def per_sample_cost(self) -> LayerCost:
        """Aggregate per-sample training cost (FLOPs and DRAM bytes) over all layers."""
        total = LayerCost(flops=0.0, memory_bytes=0.0)
        shape = self.input_shape
        for layer in self.layers:
            total = total + layer.cost(shape)
            shape = layer.output_shape(shape)
        return total

    def output_shape(self) -> tuple[int, ...]:
        """Per-sample output shape of the full model."""
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def summary(self) -> str:
        """Human-readable model summary."""
        lines = [f"Model: {self.name} (input {self.input_shape})"]
        shape = self.input_shape
        for index, layer in enumerate(self.layers):
            shape = layer.output_shape(shape)
            lines.append(
                f"  [{index:02d}] {type(layer).__name__:<18s} out={shape} params={layer.num_params}"
            )
        lines.append(f"Total params: {self.num_params} ({self.model_size_mb:.2f} MB)")
        return "\n".join(lines)
