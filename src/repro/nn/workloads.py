"""Workload profiles: the systems-side description of each FL use case.

A :class:`WorkloadProfile` carries everything the edge-cloud simulator and the AutoFL state
features need to know about a workload *without* instantiating the numpy model:

* NN-characteristic counts (number of CONV / FC / RC layers) — the paper's ``S_CONV``,
  ``S_FC``, ``S_RC`` state features (Table 1);
* per-sample training FLOPs and DRAM traffic of the full-size model — these drive the
  training-time and energy models (the numpy models are width-reduced for fast real
  training, so the cost numbers here are the full-size ones, estimated from the published
  architectures);
* the model's over-the-air size in MB — this drives communication time/energy;
* surrogate-convergence parameters (achievable accuracy, base per-round gain) used by the
  fast analytical training backend.

Profiles for the paper's three workloads are predefined; custom profiles can be created for
new workloads, including directly from a numpy :class:`~repro.nn.model.Sequential` via
:meth:`WorkloadProfile.from_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError, ModelError
from repro.nn.model import Sequential
from repro.registry import WORKLOADS as WORKLOAD_REGISTRY


@dataclass(frozen=True)
class WorkloadProfile:
    """Systems-level description of one FL workload."""

    name: str
    num_conv_layers: int
    num_fc_layers: int
    num_rc_layers: int
    flops_per_sample: float
    bytes_per_sample: float
    model_size_mb: float
    max_accuracy: float
    base_gain: float
    target_accuracy: float
    samples_per_device: int = 300
    #: Size of the workload's global label space.  Required when per-device data
    #: profiles are synthesised from a heterogeneity scenario; the environment raises a
    #: clear error for profiles that leave it unset instead of assuming a default.
    num_classes: int | None = None

    def __post_init__(self) -> None:
        if min(self.num_conv_layers, self.num_fc_layers, self.num_rc_layers) < 0:
            raise ConfigurationError(f"{self.name}: layer counts must be non-negative")
        if self.flops_per_sample <= 0 or self.bytes_per_sample <= 0:
            raise ConfigurationError(f"{self.name}: per-sample costs must be positive")
        if self.model_size_mb <= 0:
            raise ConfigurationError(f"{self.name}: model_size_mb must be positive")
        if not 0.0 < self.max_accuracy <= 1.0:
            raise ConfigurationError(f"{self.name}: max_accuracy must be in (0, 1]")
        if not 0.0 < self.base_gain < 1.0:
            raise ConfigurationError(f"{self.name}: base_gain must be in (0, 1)")
        if not 0.0 < self.target_accuracy <= self.max_accuracy:
            raise ConfigurationError(
                f"{self.name}: target_accuracy must be in (0, max_accuracy]"
            )
        if self.samples_per_device <= 0:
            raise ConfigurationError(f"{self.name}: samples_per_device must be positive")
        if self.num_classes is not None and self.num_classes < 2:
            raise ConfigurationError(f"{self.name}: num_classes must be >= 2")

    @property
    def compute_intensity(self) -> float:
        """FLOPs per DRAM byte — high for CONV-dominated models, low for RC-dominated ones."""
        return self.flops_per_sample / self.bytes_per_sample

    def with_overrides(self, **changes: object) -> "WorkloadProfile":
        """Return a copy of the profile with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def from_model(
        cls,
        model: Sequential,
        name: str | None = None,
        max_accuracy: float = 0.95,
        base_gain: float = 0.10,
        target_accuracy: float = 0.90,
        samples_per_device: int = 300,
        num_classes: int | None = None,
    ) -> "WorkloadProfile":
        """Derive a profile directly from a numpy model's structure and cost accounting."""
        if not isinstance(model, Sequential):
            raise ModelError("from_model expects a Sequential model")
        counts = model.layer_counts()
        cost = model.per_sample_cost()
        return cls(
            name=name or model.name,
            num_conv_layers=counts.get("conv", 0),
            num_fc_layers=counts.get("fc", 0),
            num_rc_layers=counts.get("rc", 0),
            flops_per_sample=cost.flops,
            bytes_per_sample=cost.memory_bytes,
            model_size_mb=model.model_size_mb,
            max_accuracy=max_accuracy,
            base_gain=base_gain,
            target_accuracy=target_accuracy,
            samples_per_device=samples_per_device,
            num_classes=num_classes,
        )


#: CNN-MNIST: the FedAvg 2-conv CNN (~1.6 M params).  Compute-dominated (CONV + FC), small
#: gradient payload, converges quickly to ~99 % on MNIST.
CNN_MNIST = WorkloadProfile(
    name="cnn-mnist",
    num_conv_layers=2,
    num_fc_layers=2,
    num_rc_layers=0,
    flops_per_sample=45e6,
    bytes_per_sample=1.5e6,
    model_size_mb=6.4,
    max_accuracy=0.99,
    base_gain=0.14,
    target_accuracy=0.95,
    samples_per_device=300,
    num_classes=10,
)

#: LSTM-Shakespeare: 2-layer 256-unit character LSTM (~0.8 M params).  Memory-intensive RC
#: layers — the compute intensity is an order of magnitude lower than the CNN, which is
#: what compresses the tier performance gap (paper Section 3.1).
LSTM_SHAKESPEARE = WorkloadProfile(
    name="lstm-shakespeare",
    num_conv_layers=0,
    num_fc_layers=1,
    num_rc_layers=2,
    flops_per_sample=95e6,
    bytes_per_sample=48e6,
    model_size_mb=3.3,
    max_accuracy=0.58,
    base_gain=0.09,
    target_accuracy=0.50,
    samples_per_device=400,
    num_classes=40,
)

#: MobileNet-ImageNet: MobileNetV1 at 224x224 (~4.2 M params, ~0.57 GFLOPs forward per
#: sample → ~1.7 GFLOPs training).  Largest compute and communication payload of the three.
MOBILENET_IMAGENET = WorkloadProfile(
    name="mobilenet-imagenet",
    num_conv_layers=27,
    num_fc_layers=1,
    num_rc_layers=0,
    flops_per_sample=1.7e9,
    bytes_per_sample=40e6,
    model_size_mb=16.8,
    max_accuracy=0.70,
    base_gain=0.05,
    target_accuracy=0.60,
    samples_per_device=200,
    num_classes=100,
)

#: The paper's three workloads by canonical name (kept for introspection; the
#: authoritative lookup is :data:`repro.registry.WORKLOADS`).
WORKLOAD_PROFILES: dict[str, WorkloadProfile] = {
    CNN_MNIST.name: CNN_MNIST,
    LSTM_SHAKESPEARE.name: LSTM_SHAKESPEARE,
    MOBILENET_IMAGENET.name: MOBILENET_IMAGENET,
}

WORKLOAD_REGISTRY.add(
    CNN_MNIST.name,
    lambda: CNN_MNIST,
    aliases=("cnn", "mnist"),
    summary="FedAvg 2-conv CNN on MNIST (~1.6 M params, compute-dominated).",
)
WORKLOAD_REGISTRY.add(
    LSTM_SHAKESPEARE.name,
    lambda: LSTM_SHAKESPEARE,
    aliases=("lstm", "shakespeare"),
    summary="2-layer character LSTM on Shakespeare (~0.8 M params, memory-bound).",
)
WORKLOAD_REGISTRY.add(
    MOBILENET_IMAGENET.name,
    lambda: MOBILENET_IMAGENET,
    aliases=("mobilenet", "imagenet"),
    summary="MobileNetV1 on ImageNet (~4.2 M params, largest compute and payload).",
)


def get_workload_profile(name: "str | WorkloadProfile") -> WorkloadProfile:
    """Look up a registered workload profile by name (several aliases accepted)."""
    if isinstance(name, WorkloadProfile):
        return name
    return WORKLOAD_REGISTRY.create(name)  # type: ignore[return-value]
