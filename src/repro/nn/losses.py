"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError


class SoftmaxCrossEntropy:
    """Combined softmax + cross-entropy loss for integer class labels."""

    def __init__(self) -> None:
        self._probabilities: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    @staticmethod
    def softmax(logits: np.ndarray) -> np.ndarray:
        """Numerically stable softmax over the last axis."""
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exponentials = np.exp(shifted)
        return exponentials / exponentials.sum(axis=-1, keepdims=True)

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of ``logits`` of shape ``(N, C)`` against integer ``labels``."""
        if logits.ndim != 2:
            raise ModelError(f"logits must have shape (N, C), got {logits.shape}")
        labels = np.asarray(labels)
        if labels.ndim != 1 or len(labels) != len(logits):
            raise ModelError("labels must be 1-D and aligned with logits")
        probabilities = self.softmax(logits)
        self._probabilities = probabilities
        self._labels = labels
        selected = probabilities[np.arange(len(labels)), labels]
        return float(-np.log(np.clip(selected, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probabilities is None or self._labels is None:
            raise ModelError("SoftmaxCrossEntropy.backward called before forward")
        grad = self._probabilities.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)

    @staticmethod
    def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of ``logits`` against integer ``labels``."""
        predictions = logits.argmax(axis=-1)
        return float((predictions == np.asarray(labels)).mean())
