"""MobileNet-ImageNet workload model (paper workload 3), scaled down ("lite").

The defining structure of MobileNet — a stem convolution followed by depthwise-separable
blocks (depthwise conv + pointwise 1x1 conv) and a global-average-pooled classifier — is
preserved; width and depth are reduced so numpy training remains tractable on 32x32 inputs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool2D,
    Layer,
    ReLU,
)
from repro.nn.model import Sequential


def _separable_block(
    channels_in: int, channels_out: int, rng: np.random.Generator, stride: int = 1
) -> list[Layer]:
    """One depthwise-separable convolution block (depthwise 3x3 + pointwise 1x1)."""
    return [
        DepthwiseConv2D(channels_in, kernel_size=3, rng=rng, stride=stride, padding=1),
        ReLU(),
        Conv2D(channels_in, channels_out, kernel_size=1, rng=rng, stride=1, padding=0),
        ReLU(),
    ]


def build_mobilenet_lite(
    num_classes: int = 100,
    image_size: int = 32,
    channels: int = 3,
    seed: int = 0,
) -> Sequential:
    """Build the scaled-down MobileNet image classifier."""
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        Conv2D(channels, 8, kernel_size=3, rng=rng, stride=2, padding=1),
        ReLU(),
    ]
    layers += _separable_block(8, 16, rng)
    layers += _separable_block(16, 24, rng, stride=2)
    layers += _separable_block(24, 32, rng)
    layers += [
        GlobalAvgPool2D(),
        Dense(32, num_classes, rng=rng),
    ]
    return Sequential(
        layers, input_shape=(channels, image_size, image_size), name="mobilenet-lite"
    )
