"""CNN-MNIST workload model (paper workload 1).

A down-scaled version of the two-conv-layer CNN used by FedAvg for MNIST: two convolution
blocks followed by two fully-connected layers.  Channel counts are reduced so from-scratch
numpy training remains fast; the systems-side FLOP/byte accounting of the full-size model
is provided separately by :mod:`repro.nn.workloads`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential


def build_cnn_mnist(
    num_classes: int = 10,
    image_size: int = 28,
    channels: int = 1,
    seed: int = 0,
) -> Sequential:
    """Build the CNN-MNIST model for ``image_size`` x ``image_size`` inputs."""
    rng = np.random.default_rng(seed)
    conv1_channels, conv2_channels, hidden = 8, 16, 64
    pooled = image_size // 4
    layers = [
        Conv2D(channels, conv1_channels, kernel_size=3, rng=rng, padding=1),
        ReLU(),
        MaxPool2D(2),
        Conv2D(conv1_channels, conv2_channels, kernel_size=3, rng=rng, padding=1),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(conv2_channels * pooled * pooled, hidden, rng=rng),
        ReLU(),
        Dense(hidden, num_classes, rng=rng),
    ]
    return Sequential(layers, input_shape=(channels, image_size, image_size), name="cnn-mnist")
