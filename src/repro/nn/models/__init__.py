"""Builders for the paper's three FL workload models (scaled to numpy-trainable sizes)."""

from repro.nn.models.cnn_mnist import build_cnn_mnist
from repro.nn.models.lstm_shakespeare import build_lstm_shakespeare
from repro.nn.models.mobilenet import build_mobilenet_lite

__all__ = ["build_cnn_mnist", "build_lstm_shakespeare", "build_mobilenet_lite"]
