"""LSTM-Shakespeare workload model (paper workload 2).

Next-character prediction: an embedding, an LSTM over the character window and a dense
classifier over the final hidden state.  Hidden sizes are reduced from the paper's 256-unit
stacked LSTM so numpy BPTT stays fast; the full-size cost profile lives in
:mod:`repro.nn.workloads`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, Embedding, LSTM
from repro.nn.model import Sequential


def build_lstm_shakespeare(
    vocab_size: int = 40,
    sequence_length: int = 20,
    embedding_dim: int = 16,
    hidden_dim: int = 32,
    seed: int = 0,
) -> Sequential:
    """Build the LSTM next-character-prediction model."""
    rng = np.random.default_rng(seed)
    layers = [
        Embedding(vocab_size, embedding_dim, rng=rng),
        LSTM(embedding_dim, hidden_dim, rng=rng),
        Dense(hidden_dim, vocab_size, rng=rng),
    ]
    return Sequential(layers, input_shape=(sequence_length,), name="lstm-shakespeare")
