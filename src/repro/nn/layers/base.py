"""Base class and cost accounting shared by every layer."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError

#: Backward pass costs roughly twice the forward pass (gradients w.r.t. inputs and weights),
#: so training FLOPs per sample are about three times the forward FLOPs.
TRAINING_FLOP_MULTIPLIER = 3.0

#: Bytes per element for the float32 arithmetic assumed by the on-device cost model.
BYTES_PER_ELEMENT = 4


@dataclass(frozen=True)
class LayerCost:
    """Per-sample computational cost of one layer during training."""

    flops: float
    memory_bytes: float

    def __add__(self, other: "LayerCost") -> "LayerCost":
        return LayerCost(
            flops=self.flops + other.flops,
            memory_bytes=self.memory_bytes + other.memory_bytes,
        )


class Layer:
    """Base class for all layers.

    Sub-classes implement :meth:`forward` and :meth:`backward` and expose their trainable
    parameters and gradients through the ``params`` / ``grads`` dictionaries.  ``kind``
    labels the layer family (``"conv"``, ``"fc"``, ``"rc"``, ``"other"``), which is what the
    AutoFL state features count (paper Table 1: ``S_CONV``, ``S_FC``, ``S_RC``).
    """

    #: Layer family used by the AutoFL NN-characteristic state features.
    kind: str = "other"

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output for a batch of inputs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the gradient w.r.t. the inputs."""
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-sample output shape for a per-sample ``input_shape``."""
        raise NotImplementedError

    def cost(self, input_shape: tuple[int, ...]) -> LayerCost:
        """Per-sample training cost for a per-sample ``input_shape``.

        The default accounts only for activation traffic; layers with parameters or heavy
        arithmetic override this.
        """
        activations = float(np.prod(input_shape)) + float(np.prod(self.output_shape(input_shape)))
        return LayerCost(flops=0.0, memory_bytes=activations * BYTES_PER_ELEMENT)

    @property
    def num_params(self) -> int:
        """Total number of trainable scalars in the layer."""
        return int(sum(param.size for param in self.params.values()))

    def zero_grads(self) -> None:
        """Reset all gradient accumulators to zero."""
        for name, param in self.params.items():
            self.grads[name] = np.zeros_like(param)

    def get_weights(self) -> dict[str, np.ndarray]:
        """Copy of the layer's parameters."""
        return {name: param.copy() for name, param in self.params.items()}

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        """Overwrite the layer's parameters (shapes must match)."""
        for name, value in weights.items():
            if name not in self.params:
                raise ModelError(f"{type(self).__name__}: unknown parameter {name!r}")
            if self.params[name].shape != value.shape:
                raise ModelError(
                    f"{type(self).__name__}: shape mismatch for {name!r}: "
                    f"{self.params[name].shape} vs {value.shape}"
                )
            self.params[name] = value.copy()


def dense_cost(
    fan_in: int, fan_out: int, input_elements: float, output_elements: float, num_params: int
) -> LayerCost:
    """Shared cost formula for matmul-style layers (Dense and the conv im2col matmul)."""
    forward_flops = 2.0 * fan_in * fan_out
    flops = TRAINING_FLOP_MULTIPLIER * forward_flops
    memory = (input_elements + output_elements + 3.0 * num_params) * BYTES_PER_ELEMENT
    return LayerCost(flops=flops, memory_bytes=memory)
