"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.layers.base import BYTES_PER_ELEMENT, Layer, LayerCost, TRAINING_FLOP_MULTIPLIER


class Dense(Layer):
    """Affine transform ``y = x W + b`` over the last axis of a 2-D input."""

    kind = "fc"

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ModelError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "weight": glorot_uniform(rng, (in_features, out_features), in_features, out_features),
            "bias": zeros((out_features,)),
        }
        self.zero_grads()
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ModelError(
                f"Dense expects input of shape (N, {self.in_features}), got {inputs.shape}"
            )
        if training:
            self._inputs = inputs
        return inputs @ self.params["weight"] + self.params["bias"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ModelError("Dense.backward called before forward")
        self.grads["weight"] = self._inputs.T @ grad_output
        self.grads["bias"] = grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.out_features,)

    def cost(self, input_shape: tuple[int, ...]) -> LayerCost:
        forward_flops = 2.0 * self.in_features * self.out_features
        memory = (
            self.in_features + self.out_features + 3.0 * self.num_params
        ) * BYTES_PER_ELEMENT
        return LayerCost(
            flops=TRAINING_FLOP_MULTIPLIER * forward_flops, memory_bytes=memory
        )
