"""Utility layers: flatten and dropout."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ModelError
from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Flattens every per-sample dimension into one feature axis."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ModelError("Flatten.backward called before forward")
        return grad_output.reshape(self._input_shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(math.prod(input_shape)),)


class Dropout(Layer):
    """Inverted dropout: zeroes activations with probability ``rate`` during training."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape
