"""Layer implementations for the numpy neural-network library."""

from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.base import Layer, LayerCost
from repro.nn.layers.conv import Conv2D, DepthwiseConv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.misc import Dropout, Flatten
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.recurrent import LSTM

__all__ = [
    "AvgPool2D",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Dropout",
    "Embedding",
    "Flatten",
    "GlobalAvgPool2D",
    "LSTM",
    "Layer",
    "LayerCost",
    "MaxPool2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
]
