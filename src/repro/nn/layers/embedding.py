"""Token embedding layer for sequence models."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.layers.base import BYTES_PER_ELEMENT, Layer, LayerCost


class Embedding(Layer):
    """Maps integer token ids of shape ``(N, T)`` to vectors of shape ``(N, T, D)``."""

    def __init__(self, vocab_size: int, embedding_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        if vocab_size < 1 or embedding_dim < 1:
            raise ModelError("vocab_size and embedding_dim must be positive")
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.params = {"weight": rng.normal(0.0, 0.1, size=(vocab_size, embedding_dim))}
        self.zero_grads()
        self._token_ids: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        tokens = np.asarray(inputs)
        if tokens.ndim != 2:
            raise ModelError(f"Embedding expects (N, T) token ids, got shape {tokens.shape}")
        if tokens.min() < 0 or tokens.max() >= self.vocab_size:
            raise ModelError("token ids out of vocabulary range")
        if training:
            self._token_ids = tokens
        return self.params["weight"][tokens]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._token_ids is None:
            raise ModelError("Embedding.backward called before forward")
        grad_weight = np.zeros_like(self.params["weight"])
        np.add.at(
            grad_weight,
            self._token_ids.reshape(-1),
            grad_output.reshape(-1, self.embedding_dim),
        )
        self.grads["weight"] = grad_weight
        # Token ids are discrete inputs; there is no gradient to propagate further back.
        return np.zeros(self._token_ids.shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        (sequence_length,) = input_shape
        return (sequence_length, self.embedding_dim)

    def cost(self, input_shape: tuple[int, ...]) -> LayerCost:
        (sequence_length,) = input_shape
        lookups = float(sequence_length * self.embedding_dim)
        memory = (lookups * 2.0 + self.num_params) * BYTES_PER_ELEMENT
        return LayerCost(flops=lookups, memory_bytes=memory)
