"""Spatial pooling layers for 4-D (N, C, H, W) activations."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.layers.base import Layer


def _check_4d(inputs: np.ndarray, layer: str) -> None:
    if inputs.ndim != 4:
        raise ModelError(f"{layer} expects (N, C, H, W) input, got shape {inputs.shape}")


class MaxPool2D(Layer):
    """Non-overlapping max pooling with a square window."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ModelError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._inputs: np.ndarray | None = None
        self._max_mask: np.ndarray | None = None

    def _window(self, inputs: np.ndarray) -> np.ndarray:
        size = self.pool_size
        batch, channels, height, width = inputs.shape
        out_h, out_w = height // size, width // size
        trimmed = inputs[:, :, : out_h * size, : out_w * size]
        return trimmed.reshape(batch, channels, out_h, size, out_w, size)

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        _check_4d(inputs, "MaxPool2D")
        windows = self._window(inputs)
        outputs = windows.max(axis=(3, 5))
        if training:
            self._inputs = inputs
            self._max_mask = windows == outputs[:, :, :, None, :, None]
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None or self._max_mask is None:
            raise ModelError("MaxPool2D.backward called before forward")
        size = self.pool_size
        grad_windows = self._max_mask * grad_output[:, :, :, None, :, None]
        batch, channels, height, width = self._inputs.shape
        out_h, out_w = height // size, width // size
        grad_input = np.zeros_like(self._inputs)
        grad_input[:, :, : out_h * size, : out_w * size] = grad_windows.reshape(
            batch, channels, out_h * size, out_w * size
        )
        return grad_input

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, height, width = input_shape
        return (channels, height // self.pool_size, width // self.pool_size)


class AvgPool2D(Layer):
    """Non-overlapping average pooling with a square window."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ModelError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        _check_4d(inputs, "AvgPool2D")
        size = self.pool_size
        batch, channels, height, width = inputs.shape
        out_h, out_w = height // size, width // size
        trimmed = inputs[:, :, : out_h * size, : out_w * size]
        windows = trimmed.reshape(batch, channels, out_h, size, out_w, size)
        if training:
            self._input_shape = inputs.shape
        return windows.mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ModelError("AvgPool2D.backward called before forward")
        size = self.pool_size
        batch, channels, height, width = self._input_shape
        out_h, out_w = height // size, width // size
        grad_input = np.zeros(self._input_shape)
        expanded = np.repeat(np.repeat(grad_output, size, axis=2), size, axis=3) / (size * size)
        grad_input[:, :, : out_h * size, : out_w * size] = expanded
        return grad_input

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, height, width = input_shape
        return (channels, height // self.pool_size, width // self.pool_size)


class GlobalAvgPool2D(Layer):
    """Averages each channel over its full spatial extent, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        _check_4d(inputs, "GlobalAvgPool2D")
        if training:
            self._input_shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ModelError("GlobalAvgPool2D.backward called before forward")
        batch, channels, height, width = self._input_shape
        scale = 1.0 / (height * width)
        return np.broadcast_to(
            grad_output[:, :, None, None] * scale, self._input_shape
        ).copy()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, _height, _width = input_shape
        return (channels,)
