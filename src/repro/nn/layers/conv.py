"""2-D convolution layers (standard and depthwise) implemented with im2col."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.initializers import he_uniform, zeros
from repro.nn.layers.base import BYTES_PER_ELEMENT, Layer, LayerCost, TRAINING_FLOP_MULTIPLIER


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ModelError(
            f"convolution produces non-positive output size for input {size}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return out


def im2col(
    inputs: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` inputs into ``(N * out_h * out_w, C * kernel * kernel)`` columns."""
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    padded = np.pad(
        inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    columns = np.empty((batch, channels, kernel, kernel, out_h, out_w))
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            columns[:, :, ky, kx, :, :] = padded[:, :, ky:y_end:stride, kx:x_end:stride]
    flat = columns.transpose(0, 4, 5, 1, 2, 3).reshape(batch * out_h * out_w, -1)
    return flat, out_h, out_w


def col2im(
    columns: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Fold ``im2col`` columns back into an ``(N, C, H, W)`` gradient (inverse scatter-add)."""
    batch, channels, height, width = input_shape
    reshaped = columns.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += reshaped[:, :, ky, kx, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


class Conv2D(Layer):
    """Standard 2-D convolution with square kernels."""

    kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 1,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ModelError("invalid Conv2D hyperparameters")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.params = {
            "weight": he_uniform(rng, (out_channels, fan_in), fan_in),
            "bias": zeros((out_channels,)),
        }
        self.zero_grads()
        self._columns: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self._spatial: tuple[int, int] | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ModelError(
                f"Conv2D expects (N, {self.in_channels}, H, W) input, got {inputs.shape}"
            )
        columns, out_h, out_w = im2col(inputs, self.kernel_size, self.stride, self.padding)
        outputs = columns @ self.params["weight"].T + self.params["bias"]
        batch = inputs.shape[0]
        outputs = outputs.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._columns = columns
            self._input_shape = inputs.shape
            self._spatial = (out_h, out_w)
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._columns is None or self._input_shape is None or self._spatial is None:
            raise ModelError("Conv2D.backward called before forward")
        out_h, out_w = self._spatial
        batch = self._input_shape[0]
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(
            batch * out_h * out_w, self.out_channels
        )
        self.grads["weight"] = grad_flat.T @ self._columns
        self.grads["bias"] = grad_flat.sum(axis=0)
        grad_columns = grad_flat @ self.params["weight"]
        return col2im(
            grad_columns,
            self._input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        _channels, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def cost(self, input_shape: tuple[int, ...]) -> LayerCost:
        out_channels, out_h, out_w = self.output_shape(input_shape)
        fan_in = self.in_channels * self.kernel_size * self.kernel_size
        forward_flops = 2.0 * fan_in * out_channels * out_h * out_w
        activations = float(np.prod(input_shape)) + float(out_channels * out_h * out_w)
        memory = (activations + 3.0 * self.num_params) * BYTES_PER_ELEMENT
        return LayerCost(flops=TRAINING_FLOP_MULTIPLIER * forward_flops, memory_bytes=memory)


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution: one filter per input channel (MobileNet building block)."""

    kind = "conv"

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 1,
    ) -> None:
        super().__init__()
        if min(channels, kernel_size, stride) < 1 or padding < 0:
            raise ModelError("invalid DepthwiseConv2D hyperparameters")
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = kernel_size * kernel_size
        self.params = {
            "weight": he_uniform(rng, (channels, fan_in), fan_in),
            "bias": zeros((channels,)),
        }
        self.zero_grads()
        self._columns: list[np.ndarray] | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self._spatial: tuple[int, int] | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.channels:
            raise ModelError(
                f"DepthwiseConv2D expects (N, {self.channels}, H, W) input, got {inputs.shape}"
            )
        batch = inputs.shape[0]
        columns_per_channel: list[np.ndarray] = []
        outputs_per_channel: list[np.ndarray] = []
        out_h = out_w = 0
        for channel in range(self.channels):
            columns, out_h, out_w = im2col(
                inputs[:, channel : channel + 1], self.kernel_size, self.stride, self.padding
            )
            channel_out = columns @ self.params["weight"][channel] + self.params["bias"][channel]
            columns_per_channel.append(columns)
            outputs_per_channel.append(channel_out.reshape(batch, out_h, out_w))
        outputs = np.stack(outputs_per_channel, axis=1)
        if training:
            self._columns = columns_per_channel
            self._input_shape = inputs.shape
            self._spatial = (out_h, out_w)
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._columns is None or self._input_shape is None or self._spatial is None:
            raise ModelError("DepthwiseConv2D.backward called before forward")
        out_h, out_w = self._spatial
        batch, _channels, height, width = self._input_shape
        grad_input = np.empty(self._input_shape)
        weight_grads = np.zeros_like(self.params["weight"])
        bias_grads = np.zeros_like(self.params["bias"])
        for channel in range(self.channels):
            grad_flat = grad_output[:, channel].reshape(batch * out_h * out_w)
            columns = self._columns[channel]
            weight_grads[channel] = grad_flat @ columns
            bias_grads[channel] = grad_flat.sum()
            grad_columns = np.outer(grad_flat, self.params["weight"][channel])
            grad_input[:, channel : channel + 1] = col2im(
                grad_columns,
                (batch, 1, height, width),
                self.kernel_size,
                self.stride,
                self.padding,
                out_h,
                out_w,
            )
        self.grads["weight"] = weight_grads
        self.grads["bias"] = bias_grads
        return grad_input

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (channels, out_h, out_w)

    def cost(self, input_shape: tuple[int, ...]) -> LayerCost:
        channels, out_h, out_w = self.output_shape(input_shape)
        forward_flops = 2.0 * self.kernel_size * self.kernel_size * channels * out_h * out_w
        activations = float(np.prod(input_shape)) + float(channels * out_h * out_w)
        memory = (activations + 3.0 * self.num_params) * BYTES_PER_ELEMENT
        return LayerCost(flops=TRAINING_FLOP_MULTIPLIER * forward_flops, memory_bytes=memory)
