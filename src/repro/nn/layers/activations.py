"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        mask = inputs > 0
        if training:
            self._mask = mask
        return inputs * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("ReLU.backward called before forward")
        return grad_output * self._mask

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._outputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        outputs = 1.0 / (1.0 + np.exp(-np.clip(inputs, -60.0, 60.0)))
        if training:
            self._outputs = outputs
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._outputs is None:
            raise ModelError("Sigmoid.backward called before forward")
        return grad_output * self._outputs * (1.0 - self._outputs)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._outputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        outputs = np.tanh(inputs)
        if training:
            self._outputs = outputs
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._outputs is None:
            raise ModelError("Tanh.backward called before forward")
        return grad_output * (1.0 - self._outputs**2)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape
