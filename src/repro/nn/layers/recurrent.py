"""LSTM layer with full back-propagation through time."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.layers.base import BYTES_PER_ELEMENT, Layer, LayerCost, TRAINING_FLOP_MULTIPLIER


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -60.0, 60.0)))


@dataclass
class _StepCache:
    """Intermediate values of one LSTM time step needed for the backward pass."""

    inputs: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    gates_i: np.ndarray
    gates_f: np.ndarray
    gates_o: np.ndarray
    gates_g: np.ndarray
    cell: np.ndarray
    cell_tanh: np.ndarray


class LSTM(Layer):
    """Single-layer LSTM over ``(N, T, D)`` inputs returning the final hidden state ``(N, H)``.

    The gate layout is ``[input, forget, output, candidate]`` along the last axis of the
    packed weight matrices.  Returning only the final hidden state matches the
    next-character-prediction use of the Shakespeare workload.
    """

    kind = "rc"

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        if input_dim < 1 or hidden_dim < 1:
            raise ModelError("input_dim and hidden_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        gate_dim = 4 * hidden_dim
        self.params = {
            "w_x": glorot_uniform(rng, (input_dim, gate_dim), input_dim, gate_dim),
            "w_h": glorot_uniform(rng, (hidden_dim, gate_dim), hidden_dim, gate_dim),
            "bias": zeros((gate_dim,)),
        }
        # Positive forget-gate bias is standard practice to ease gradient flow early on.
        self.params["bias"][hidden_dim : 2 * hidden_dim] = 1.0
        self.zero_grads()
        self._caches: list[_StepCache] | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 3 or inputs.shape[2] != self.input_dim:
            raise ModelError(
                f"LSTM expects (N, T, {self.input_dim}) input, got shape {inputs.shape}"
            )
        batch, steps, _ = inputs.shape
        hidden = np.zeros((batch, self.hidden_dim))
        cell = np.zeros((batch, self.hidden_dim))
        caches: list[_StepCache] = []
        h_dim = self.hidden_dim
        for step in range(steps):
            x_t = inputs[:, step, :]
            gates = x_t @ self.params["w_x"] + hidden @ self.params["w_h"] + self.params["bias"]
            gate_i = _sigmoid(gates[:, 0:h_dim])
            gate_f = _sigmoid(gates[:, h_dim : 2 * h_dim])
            gate_o = _sigmoid(gates[:, 2 * h_dim : 3 * h_dim])
            gate_g = np.tanh(gates[:, 3 * h_dim :])
            new_cell = gate_f * cell + gate_i * gate_g
            cell_tanh = np.tanh(new_cell)
            new_hidden = gate_o * cell_tanh
            if training:
                caches.append(
                    _StepCache(
                        inputs=x_t,
                        h_prev=hidden,
                        c_prev=cell,
                        gates_i=gate_i,
                        gates_f=gate_f,
                        gates_o=gate_o,
                        gates_g=gate_g,
                        cell=new_cell,
                        cell_tanh=cell_tanh,
                    )
                )
            hidden, cell = new_hidden, new_cell
        if training:
            self._caches = caches
        return hidden

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._caches is None:
            raise ModelError("LSTM.backward called before forward")
        caches = self._caches
        batch = grad_output.shape[0]
        steps = len(caches)
        h_dim = self.hidden_dim
        grad_inputs = np.zeros((batch, steps, self.input_dim))
        grad_w_x = np.zeros_like(self.params["w_x"])
        grad_w_h = np.zeros_like(self.params["w_h"])
        grad_bias = np.zeros_like(self.params["bias"])
        grad_h = grad_output.copy()
        grad_c = np.zeros((batch, h_dim))
        for step in range(steps - 1, -1, -1):
            cache = caches[step]
            grad_c_total = grad_c + grad_h * cache.gates_o * (1.0 - cache.cell_tanh**2)
            grad_gate_o = grad_h * cache.cell_tanh
            grad_gate_i = grad_c_total * cache.gates_g
            grad_gate_g = grad_c_total * cache.gates_i
            grad_gate_f = grad_c_total * cache.c_prev
            grad_c = grad_c_total * cache.gates_f
            pre_i = grad_gate_i * cache.gates_i * (1.0 - cache.gates_i)
            pre_f = grad_gate_f * cache.gates_f * (1.0 - cache.gates_f)
            pre_o = grad_gate_o * cache.gates_o * (1.0 - cache.gates_o)
            pre_g = grad_gate_g * (1.0 - cache.gates_g**2)
            grad_gates = np.concatenate([pre_i, pre_f, pre_o, pre_g], axis=1)
            grad_w_x += cache.inputs.T @ grad_gates
            grad_w_h += cache.h_prev.T @ grad_gates
            grad_bias += grad_gates.sum(axis=0)
            grad_inputs[:, step, :] = grad_gates @ self.params["w_x"].T
            grad_h = grad_gates @ self.params["w_h"].T
        self.grads["w_x"] = grad_w_x
        self.grads["w_h"] = grad_w_h
        self.grads["bias"] = grad_bias
        return grad_inputs

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.hidden_dim,)

    def cost(self, input_shape: tuple[int, ...]) -> LayerCost:
        sequence_length, _input_dim = input_shape
        per_step = 2.0 * (self.input_dim + self.hidden_dim) * 4 * self.hidden_dim
        forward_flops = per_step * sequence_length
        activations = float(sequence_length * (self.input_dim + 6 * self.hidden_dim))
        memory = (activations + 3.0 * self.num_params) * BYTES_PER_ELEMENT
        return LayerCost(flops=TRAINING_FLOP_MULTIPLIER * forward_flops, memory_bytes=memory)
