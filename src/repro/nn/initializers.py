"""Weight initializers for the numpy neural-network library."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError


def glorot_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Samples uniformly from ``[-limit, limit]`` with ``limit = sqrt(6 / (fan_in + fan_out))``,
    which keeps activation variance stable across layers for tanh/sigmoid-style units.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ModelError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He uniform initialisation, appropriate for ReLU-activated layers."""
    if fan_in <= 0:
        raise ModelError("fan_in must be positive")
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
