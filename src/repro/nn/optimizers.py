"""Optimizers for local on-device training.

FedAvg runs vanilla SGD locally (paper Section 1); FedProx adds a proximal term pulling
local weights toward the last global model, which :class:`ProximalSGD` implements so the
FedProx baseline of Section 6.3 exercises a genuinely different local objective.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.model import Sequential


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.05, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ModelError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, model: Sequential) -> None:
        """Apply one update to every trainable parameter of ``model`` using stored grads."""
        for layer_index, layer in enumerate(model.layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                update = self._direction(layer_index, name, grad)
                layer.params[name] = param - self.learning_rate * update

    def _direction(self, layer_index: int, name: str, grad: np.ndarray) -> np.ndarray:
        if self.momentum == 0.0:
            return grad
        key = (layer_index, name)
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(grad)
        velocity = self.momentum * velocity + grad
        self._velocity[key] = velocity
        return velocity


class ProximalSGD(SGD):
    """SGD with a FedProx proximal term ``(mu / 2) * ||w - w_global||^2``.

    The proximal gradient ``mu * (w - w_global)`` is added to every parameter update, which
    limits how far a straggling or non-IID client can drift from the global model.
    """

    def __init__(
        self, learning_rate: float = 0.05, momentum: float = 0.0, mu: float = 0.01
    ) -> None:
        super().__init__(learning_rate=learning_rate, momentum=momentum)
        if mu < 0:
            raise ModelError("mu must be non-negative")
        self.mu = mu
        self._reference: list[dict[str, np.ndarray]] | None = None

    def set_reference(self, global_weights: list[dict[str, np.ndarray]]) -> None:
        """Record the global model weights the proximal term pulls toward."""
        self._reference = [
            {name: value.copy() for name, value in layer.items()} for layer in global_weights
        ]

    def step(self, model: Sequential) -> None:
        if self._reference is not None:
            if len(self._reference) != len(model.layers):
                raise ModelError("proximal reference does not match model structure")
            for layer, reference in zip(model.layers, self._reference):
                for name, param in layer.params.items():
                    if name in reference and name in layer.grads:
                        layer.grads[name] = layer.grads[name] + self.mu * (
                            param - reference[name]
                        )
        super().step(model)
