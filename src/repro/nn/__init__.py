"""A small from-scratch numpy neural-network library.

The paper trains three workloads on device — a CNN on MNIST, an LSTM on Shakespeare and
MobileNet on ImageNet.  This subpackage provides the layers, losses, optimizers and model
container needed to train scaled-down versions of those models with real gradient
computation, plus per-layer FLOP / memory-traffic accounting that feeds the device
performance and energy models.
"""

from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2D,
    LSTM,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.models import build_cnn_mnist, build_lstm_shakespeare, build_mobilenet_lite
from repro.nn.optimizers import ProximalSGD, SGD
from repro.nn.workloads import (
    WORKLOAD_PROFILES,
    WorkloadProfile,
    get_workload_profile,
)

__all__ = [
    "AvgPool2D",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Dropout",
    "Embedding",
    "Flatten",
    "GlobalAvgPool2D",
    "LSTM",
    "Layer",
    "MaxPool2D",
    "ProximalSGD",
    "ReLU",
    "SGD",
    "Sequential",
    "SoftmaxCrossEntropy",
    "WORKLOAD_PROFILES",
    "WorkloadProfile",
    "build_cnn_mnist",
    "build_lstm_shakespeare",
    "build_mobilenet_lite",
    "get_workload_profile",
]
