"""Convenience top-level API.

These helpers are thin shims over the declarative experiment subsystem
(:class:`~repro.experiments.spec.ExperimentSpec` plus
:func:`~repro.experiments.runner.build_simulation`): one-call entry points for the common
"run a policy on a scenario" and "compare policies" use cases.  The examples and
quickstart use them; grids, replication and caching live in
:class:`~repro.experiments.runner.BatchRunner` and the ``python -m repro`` CLI.
"""

from __future__ import annotations

from repro.experiments.harness import ComparisonRow, run_policy_comparison as _run_comparison
from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec


def build_default_experiment(
    policy: str = "autofl",
    workload: str = "cnn-mnist",
    setting: str = "S3",
    interference: str = "none",
    network: str = "stable",
    data_distribution: str = "iid",
    num_devices: int = 200,
    rounds: int = 100,
    aggregator: str = "fedavg",
    seed: int = 0,
) -> FLSimulation:
    """Build a ready-to-run FL simulation for one policy on one evaluation scenario.

    Returns an :class:`~repro.sim.runner.FLSimulation`; call ``.run()`` to obtain a
    :class:`~repro.sim.results.SimulationResult`.
    """
    spec = ExperimentSpec(
        scenario=ScenarioSpec(
            workload=workload,
            setting=setting,
            interference=interference,
            network=network,
            data_distribution=data_distribution,
            num_devices=num_devices,
            max_rounds=rounds,
            seed=seed,
            aggregator=aggregator,
        ),
        policy=policy,
    )
    return build_simulation(spec)


def run_policy_comparison(
    policies: tuple[str, ...] = ("fedavg-random", "power", "performance", "autofl"),
    workload: str = "cnn-mnist",
    setting: str = "S3",
    interference: str = "none",
    network: str = "stable",
    data_distribution: str = "iid",
    num_devices: int = 200,
    rounds: int = 100,
    seed: int = 0,
) -> list[ComparisonRow]:
    """Compare several policies on one scenario; rows are normalised to FedAvg-Random."""
    spec = ScenarioSpec(
        workload=workload,
        setting=setting,
        interference=interference,
        network=network,
        data_distribution=data_distribution,
        num_devices=num_devices,
        max_rounds=rounds,
        seed=seed,
    )
    _results, rows = _run_comparison(spec, policies=policies, max_rounds=rounds)
    return rows
