"""Convenience top-level API.

These helpers wrap the lower-level building blocks (scenario spec, environment, backend,
policy, simulation) into one-call entry points for the common "run a policy on a scenario"
and "compare policies" use cases; the examples and quickstart use them.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import make_policy
from repro.experiments.harness import ComparisonRow, run_policy_comparison as _run_comparison
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend


def build_default_experiment(
    policy: str = "autofl",
    workload: str = "cnn-mnist",
    setting: str = "S3",
    interference: str = "none",
    network: str = "stable",
    data_distribution: str = "iid",
    num_devices: int = 200,
    rounds: int = 100,
    aggregator: str = "fedavg",
    seed: int = 0,
) -> FLSimulation:
    """Build a ready-to-run FL simulation for one policy on one evaluation scenario.

    Returns an :class:`~repro.sim.runner.FLSimulation`; call ``.run()`` to obtain a
    :class:`~repro.sim.results.SimulationResult`.
    """
    spec = ScenarioSpec(
        workload=workload,
        setting=setting,
        interference=interference,
        network=network,
        data_distribution=data_distribution,
        num_devices=num_devices,
        max_rounds=rounds,
        seed=seed,
        aggregator=aggregator,
    )
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment, aggregator=aggregator)
    return FLSimulation(
        environment=environment,
        policy=make_policy(policy, rng=np.random.default_rng(seed + 10_000)),
        backend=backend,
        max_rounds=rounds,
    )


def run_policy_comparison(
    policies: tuple[str, ...] = ("fedavg-random", "power", "performance", "autofl"),
    workload: str = "cnn-mnist",
    setting: str = "S3",
    interference: str = "none",
    network: str = "stable",
    data_distribution: str = "iid",
    num_devices: int = 200,
    rounds: int = 100,
    seed: int = 0,
) -> list[ComparisonRow]:
    """Compare several policies on one scenario; rows are normalised to FedAvg-Random."""
    spec = ScenarioSpec(
        workload=workload,
        setting=setting,
        interference=interference,
        network=network,
        data_distribution=data_distribution,
        num_devices=num_devices,
        max_rounds=rounds,
        seed=seed,
    )
    _results, rows = _run_comparison(spec, policies=policies, max_rounds=rounds)
    return rows
