"""Pluggable device-availability processes and availability traces.

Real edge fleets are never fully reachable: phones go off-charger, lose connectivity, or
sleep through the night.  An :class:`AvailabilityProcess` models that as a per-round
boolean online mask over the fleet.  Five built-in processes are registered on the
:data:`repro.registry.AVAILABILITY` registry:

* ``always-on`` — every device reachable every round (the paper's implicit assumption);
* ``bernoulli`` — each device independently online with a fixed probability;
* ``markov`` — a two-state on/off Markov chain per device (bursty availability);
* ``diurnal`` — a sine-wave online probability with per-device phase offsets, modelling
  the day/night charging rhythm of a geo-distributed fleet;
* ``trace`` — replays an :class:`AvailabilityTrace` (recorded or synthesised), with
  JSONL save/load for reproducible cross-machine experiments.

Processes are stateful (the Markov chain carries per-device state, the diurnal process
draws per-device phases once) and must be driven in round order with a dedicated RNG —
:class:`~repro.dynamics.FleetDynamics` owns both, so availability draws never perturb the
environment's condition-sampling stream and seeded always-on trajectories stay bit-exact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.registry import AVAILABILITY

#: On-disk format tag of availability-trace JSONL files.
TRACE_FORMAT = "repro-availability-trace"

#: Bumped whenever the trace file layout changes.
TRACE_FORMAT_VERSION = 1


class AvailabilityProcess:
    """Base class of per-round fleet availability models."""

    name = "base"

    def __init__(self) -> None:
        self._num_devices: int | None = None

    @property
    def num_devices(self) -> int:
        """Fleet size the process was reset for."""
        if self._num_devices is None:
            raise SimulationError(
                f"availability process {self.name!r} used before reset(num_devices)"
            )
        return self._num_devices

    def reset(self, num_devices: int) -> None:
        """Bind the process to a fleet size and clear any per-device state."""
        if num_devices <= 0:
            raise ConfigurationError("num_devices must be positive")
        self._num_devices = num_devices

    def online_mask(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean fleet-order mask of the devices online in ``round_index``.

        Must be called once per round in round order: stateful processes (Markov, traces
        with wraparound) advance on every call.
        """
        raise NotImplementedError


@AVAILABILITY.register(
    "always-on",
    aliases=("static", "none"),
    summary="Every device reachable every round (no availability variance).",
)
class AlwaysOnAvailability(AvailabilityProcess):
    """The static-fleet assumption: all devices online, no RNG consumption."""

    name = "always-on"

    def online_mask(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        return np.ones(self.num_devices, dtype=bool)


@AVAILABILITY.register(
    "bernoulli",
    aliases=("iid-availability",),
    summary="Each device independently online with a fixed per-round probability.",
)
class BernoulliAvailability(AvailabilityProcess):
    """Memoryless availability: online with probability ``p_online`` each round."""

    name = "bernoulli"

    def __init__(self, p_online: float = 0.8) -> None:
        super().__init__()
        if not 0.0 < p_online <= 1.0:
            raise ConfigurationError(f"p_online must be in (0, 1], got {p_online}")
        self.p_online = p_online

    def online_mask(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        return rng.random(self.num_devices) < self.p_online


@AVAILABILITY.register(
    "markov",
    aliases=("on-off", "bursty"),
    summary="Two-state on/off Markov chain per device (bursty availability).",
)
class MarkovAvailability(AvailabilityProcess):
    """Per-device two-state chain: online devices drop with ``p_drop``, offline devices
    return with ``p_return``.  Sojourn times are geometric, so availability is bursty —
    the same long-run online fraction as a Bernoulli process but with temporal
    correlation, which is what distinguishes a flaky link from a night-time pattern."""

    name = "markov"

    def __init__(self, p_drop: float = 0.1, p_return: float = 0.4) -> None:
        super().__init__()
        for label, value in (("p_drop", p_drop), ("p_return", p_return)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {value}")
        if p_drop + p_return <= 0.0:
            raise ConfigurationError("p_drop + p_return must be positive")
        self.p_drop = p_drop
        self.p_return = p_return
        self._state: np.ndarray | None = None

    @property
    def stationary_online_fraction(self) -> float:
        """Long-run fraction of time a device spends online."""
        return self.p_return / (self.p_drop + self.p_return)

    def reset(self, num_devices: int) -> None:
        super().reset(num_devices)
        self._state = None

    def online_mask(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        num_devices = self.num_devices
        if self._state is None:
            # Start from the stationary distribution so round 0 is already "warm".
            self._state = rng.random(num_devices) < self.stationary_online_fraction
        draws = rng.random(num_devices)
        online = self._state
        self._state = np.where(online, draws >= self.p_drop, draws < self.p_return)
        return self._state.copy()


@AVAILABILITY.register(
    "diurnal",
    aliases=("sine", "day-night"),
    summary="Sine-wave online probability with per-device phase offsets (day/night).",
)
class DiurnalAvailability(AvailabilityProcess):
    """Diurnal availability: the online probability follows a sine wave over rounds.

    Each device gets a phase offset (drawn once, on first use) so the fleet is spread
    over time zones and charging habits rather than blinking in unison;
    ``phase_spread`` is the standard deviation of that offset in fractions of a period.
    """

    name = "diurnal"

    def __init__(
        self,
        mean_online: float = 0.7,
        amplitude: float = 0.25,
        period_rounds: int = 48,
        phase_spread: float = 0.1,
    ) -> None:
        super().__init__()
        if not 0.0 < mean_online <= 1.0:
            raise ConfigurationError(f"mean_online must be in (0, 1], got {mean_online}")
        if amplitude < 0.0 or amplitude > min(mean_online, 1.0 - mean_online) + 1e-12:
            raise ConfigurationError(
                "amplitude must keep the online probability inside [0, 1]"
            )
        if period_rounds < 2:
            raise ConfigurationError(f"period_rounds must be >= 2, got {period_rounds}")
        if phase_spread < 0.0:
            raise ConfigurationError(f"phase_spread must be >= 0, got {phase_spread}")
        self.mean_online = mean_online
        self.amplitude = amplitude
        self.period_rounds = period_rounds
        self.phase_spread = phase_spread
        self._phases: np.ndarray | None = None

    def reset(self, num_devices: int) -> None:
        super().reset(num_devices)
        self._phases = None

    def online_probability(self, round_index: int) -> np.ndarray:
        """Per-device online probability at ``round_index`` (phases must be drawn)."""
        if self._phases is None:
            raise SimulationError("diurnal phases not drawn yet; call online_mask first")
        angle = 2.0 * np.pi * (round_index / self.period_rounds + self._phases)
        return np.clip(self.mean_online + self.amplitude * np.sin(angle), 0.0, 1.0)

    def online_mask(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        num_devices = self.num_devices
        if self._phases is None:
            self._phases = rng.normal(0.0, self.phase_spread, size=num_devices)
        return rng.random(num_devices) < self.online_probability(round_index)


@dataclass(frozen=True)
class AvailabilityTrace:
    """A recorded (or synthesised) per-round availability history of one fleet."""

    masks: np.ndarray  # shape (num_rounds, num_devices), bool

    def __post_init__(self) -> None:
        masks = np.asarray(self.masks, dtype=bool)
        if masks.ndim != 2 or masks.shape[0] == 0 or masks.shape[1] == 0:
            raise ConfigurationError(
                "an availability trace needs a non-empty (rounds, devices) mask matrix"
            )
        object.__setattr__(self, "masks", masks)

    @property
    def num_rounds(self) -> int:
        """Number of recorded rounds."""
        return int(self.masks.shape[0])

    @property
    def num_devices(self) -> int:
        """Number of devices per recorded round."""
        return int(self.masks.shape[1])

    @property
    def mean_availability(self) -> float:
        """Fraction of (round, device) cells that are online."""
        return float(self.masks.mean())

    def mask(self, round_index: int, wrap: bool = True) -> np.ndarray:
        """The online mask of one round; with ``wrap`` the trace tiles periodically."""
        if round_index < 0:
            raise SimulationError(f"round_index must be >= 0, got {round_index}")
        if round_index >= self.num_rounds:
            if not wrap:
                raise SimulationError(
                    f"trace has {self.num_rounds} rounds; round {round_index} requested"
                )
            round_index %= self.num_rounds
        return self.masks[round_index].copy()

    # ------------------------------------------------------------------ persistence
    def save_jsonl(self, path: str | Path) -> None:
        """Write the trace as JSONL: one header line plus one ``01``-string per round."""
        lines = [
            json.dumps(
                {
                    "format": TRACE_FORMAT,
                    "version": TRACE_FORMAT_VERSION,
                    "num_rounds": self.num_rounds,
                    "num_devices": self.num_devices,
                }
            )
        ]
        for round_index in range(self.num_rounds):
            bits = "".join("1" if online else "0" for online in self.masks[round_index])
            lines.append(json.dumps({"round": round_index, "online": bits}))
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "AvailabilityTrace":
        """Load a trace written by :meth:`save_jsonl`, validating the header."""
        lines = [
            line for line in Path(path).read_text(encoding="utf-8").splitlines() if line.strip()
        ]
        if not lines:
            raise ConfigurationError(f"availability trace {path} is empty")
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise ConfigurationError(f"corrupt availability trace header in {path}") from exc
        if header.get("format") != TRACE_FORMAT:
            raise ConfigurationError(f"{path} is not an availability trace file")
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported trace version {header.get('version')!r} in {path}"
            )
        num_rounds = int(header["num_rounds"])
        num_devices = int(header["num_devices"])
        masks = np.zeros((num_rounds, num_devices), dtype=bool)
        if len(lines) - 1 != num_rounds:
            raise ConfigurationError(
                f"{path} declares {num_rounds} rounds but holds {len(lines) - 1}"
            )
        seen_rounds: set[int] = set()
        for line_number, line in enumerate(lines[1:], start=2):
            try:
                row = json.loads(line)
                round_index = int(row["round"])
                bits = row["online"]
                if not isinstance(bits, str) or set(bits) - {"0", "1"}:
                    raise ValueError("online must be a string of 0/1 characters")
            except (ValueError, KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"corrupt availability trace {path} at line {line_number}"
                ) from exc
            if (
                round_index in seen_rounds
                or not 0 <= round_index < num_rounds
                or len(bits) != num_devices
            ):
                raise ConfigurationError(
                    f"availability trace {path} line {line_number} is inconsistent "
                    "with its header"
                )
            seen_rounds.add(round_index)
            masks[round_index] = np.frombuffer(bits.encode("ascii"), dtype=np.uint8) == ord("1")
        return cls(masks=masks)


def generate_trace(
    process: AvailabilityProcess | str | None = None,
    num_devices: int = 100,
    num_rounds: int = 200,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> AvailabilityTrace:
    """Synthesise a trace by rolling an availability process forward ``num_rounds``.

    ``process`` may be a process instance, a registered availability name, or ``None``
    for the default diurnal generator.  The generation RNG is dedicated (seeded from
    ``seed`` unless an explicit ``rng`` is supplied), so the same arguments always
    produce the same trace.
    """
    if num_rounds <= 0:
        raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
    if process is None:
        process = DiurnalAvailability()
    elif isinstance(process, str):
        process = AVAILABILITY.create(process)  # type: ignore[assignment]
    process.reset(num_devices)
    rng = rng if rng is not None else np.random.default_rng(seed)
    masks = np.stack(
        [process.online_mask(round_index, rng) for round_index in range(num_rounds)]
    )
    return AvailabilityTrace(masks=masks)


@AVAILABILITY.register(
    "trace",
    aliases=("replay",),
    summary="Replays an availability trace (synthesised by default; JSONL save/load).",
)
class TraceAvailability(AvailabilityProcess):
    """Replays an :class:`AvailabilityTrace`, tiling it when the job outlives the trace.

    Without an explicit trace, a synthetic diurnal trace is generated on first use from
    the driving RNG, so ``availability="trace"`` works out of the box while recorded
    traces loaded with :meth:`AvailabilityTrace.load_jsonl` replay bit-exactly.
    """

    name = "trace"

    def __init__(
        self,
        trace: AvailabilityTrace | None = None,
        wrap: bool = True,
        synthetic_rounds: int = 200,
    ) -> None:
        super().__init__()
        if synthetic_rounds <= 0:
            raise ConfigurationError(f"synthetic_rounds must be positive, got {synthetic_rounds}")
        self._trace = trace
        self.wrap = wrap
        self.synthetic_rounds = synthetic_rounds

    @property
    def trace(self) -> AvailabilityTrace | None:
        """The trace being replayed (``None`` until a synthetic one is generated)."""
        return self._trace

    def reset(self, num_devices: int) -> None:
        super().reset(num_devices)
        if self._trace is not None and self._trace.num_devices != num_devices:
            raise ConfigurationError(
                f"trace covers {self._trace.num_devices} devices but the fleet has "
                f"{num_devices}"
            )

    def online_mask(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self._trace is None:
            self._trace = generate_trace(
                DiurnalAvailability(),
                num_devices=self.num_devices,
                num_rounds=self.synthetic_rounds,
                rng=rng,
            )
        return self._trace.mask(round_index, wrap=self.wrap)
