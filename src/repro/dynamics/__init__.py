"""Fleet dynamics: availability, churn and mid-round failure injection.

The subsystem turns the simulator's static fleet into a living one, in three layers:

* :mod:`repro.dynamics.availability` — who is *reachable* this round (always-on,
  Bernoulli, Markov on/off, diurnal sine-wave, recorded traces);
* :mod:`repro.dynamics.churn` — who is *enrolled* at all (join/leave over a job);
* :mod:`repro.dynamics.faults` — who *fails mid-round* after being selected (dropout
  before upload, slow-fail stragglers), with per-tier rates.

:class:`FleetDynamics` composes the three behind one facade with a dedicated RNG stream
(seeded at ``scenario seed + DYNAMICS_SEED_OFFSET``), so enabling dynamics never
perturbs the environment's condition sampling — the default always-on / zero-fault
configuration reproduces pre-dynamics seeded trajectories bit-exactly, which is pinned
by equivalence tests.  :class:`DynamicsSpec` is the declarative form embedded in
:class:`~repro.sim.scenarios.ScenarioSpec`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.dynamics.availability import (
    AlwaysOnAvailability,
    AvailabilityProcess,
    AvailabilityTrace,
    BernoulliAvailability,
    DiurnalAvailability,
    MarkovAvailability,
    TraceAvailability,
    generate_trace,
)
from repro.dynamics.churn import ChurnEvent, ChurnModel
from repro.dynamics.faults import DeviceFault, FaultConfig, FaultDraw, FaultInjector
from repro.exceptions import ConfigurationError, SimulationError
from repro.registry import AVAILABILITY

#: Offset between the scenario seed and the fleet-dynamics RNG stream.  Kept distinct
#: from the environment (seed), backend (seed + 1) and policy (seed + 10_000) streams so
#: enabling dynamics never changes any pre-existing draw sequence.
DYNAMICS_SEED_OFFSET = 40_000

__all__ = [
    "AVAILABILITY",
    "AlwaysOnAvailability",
    "AvailabilityProcess",
    "AvailabilityTrace",
    "BernoulliAvailability",
    "ChurnEvent",
    "ChurnModel",
    "DYNAMICS_SEED_OFFSET",
    "DeviceFault",
    "DiurnalAvailability",
    "DynamicsSpec",
    "FaultConfig",
    "FaultDraw",
    "FaultInjector",
    "FleetDynamics",
    "MarkovAvailability",
    "TraceAvailability",
    "generate_trace",
]


class FleetDynamics:
    """Composable fleet dynamics for one training job.

    The facade owns the dynamics RNG and drives its parts in a fixed per-round order
    (availability, then churn, then faults for the selected participants), so the whole
    dropout/availability stream is deterministic per seed.  Instances are bound to a
    fleet by :meth:`bind` — :class:`~repro.sim.environment.EdgeCloudEnvironment` does
    that during construction.
    """

    def __init__(
        self,
        availability: AvailabilityProcess | None = None,
        churn: ChurnModel | None = None,
        faults: FaultInjector | None = None,
        min_online: int = 1,
    ) -> None:
        if min_online < 1:
            raise ConfigurationError(f"min_online must be >= 1, got {min_online}")
        self._availability = availability if availability is not None else AlwaysOnAvailability()
        self._churn = churn
        self._faults = faults
        self._min_online = min_online
        self._rng: np.random.Generator | None = None
        self._tier_codes: np.ndarray | None = None
        self._device_ids: np.ndarray | None = None
        self._online_history: list[int] = []

    # ------------------------------------------------------------------ introspection
    @property
    def availability(self) -> AvailabilityProcess:
        """The availability process in use."""
        return self._availability

    @property
    def churn(self) -> ChurnModel | None:
        """The churn model, if any."""
        return self._churn

    @property
    def faults(self) -> FaultInjector | None:
        """The fault injector, if any."""
        return self._faults

    @property
    def has_faults(self) -> bool:
        """True when mid-round faults can occur (an injector with non-zero rates)."""
        return self._faults is not None and not self._faults.config.is_trivial

    @property
    def bound(self) -> bool:
        """True once :meth:`bind` has attached the dynamics to a fleet."""
        return self._rng is not None

    @property
    def online_history(self) -> list[int]:
        """Per-round online-device counts observed so far (a copy)."""
        return list(self._online_history)

    @property
    def churn_events(self) -> list[ChurnEvent]:
        """All churn events so far (empty without a churn model)."""
        return self._churn.events if self._churn is not None else []

    # ------------------------------------------------------------------ lifecycle
    def bind(
        self,
        num_devices: int,
        tier_codes: np.ndarray,
        device_ids: np.ndarray,
        seed: int,
    ) -> None:
        """Attach to a fleet and (re)start the dynamics streams from ``seed``."""
        tier_codes = np.asarray(tier_codes, dtype=np.int64)
        device_ids = np.asarray(device_ids, dtype=np.int64)
        if len(tier_codes) != num_devices or len(device_ids) != num_devices:
            raise SimulationError("tier_codes/device_ids must cover the whole fleet")
        self._rng = np.random.default_rng(seed)
        self._tier_codes = tier_codes
        self._device_ids = device_ids
        self._online_history = []
        self._availability.reset(num_devices)
        if self._churn is not None:
            self._churn.reset(num_devices)

    def _require_bound(self) -> np.random.Generator:
        if self._rng is None:
            raise SimulationError("FleetDynamics used before bind()")
        return self._rng

    # ------------------------------------------------------------------ per-round API
    def online_mask(self, round_index: int) -> np.ndarray:
        """The round's online mask (availability AND enrolment), fleet order.

        At least ``min_online`` devices are always kept online (force-enabled at
        random) so a round can never be left without a single candidate.  Must be
        called once per round in round order — the underlying processes are stateful.
        """
        rng = self._require_bound()
        mask = np.asarray(self._availability.online_mask(round_index, rng), dtype=bool)
        if mask.shape != self._device_ids.shape:  # type: ignore[union-attr]
            raise SimulationError("availability mask does not cover the whole fleet")
        if self._churn is not None:
            mask = mask & self._churn.membership_mask(round_index, rng, self._device_ids)
        shortfall = self._min_online - int(mask.sum())
        if shortfall > 0:
            offline = np.flatnonzero(~mask)
            revived = rng.choice(offline, size=min(shortfall, len(offline)), replace=False)
            mask = mask.copy()
            mask[revived] = True
        self._online_history.append(int(mask.sum()))
        return mask

    def sample_faults(self, round_index: int, rows: np.ndarray) -> FaultDraw | None:
        """Draw mid-round faults for the selected fleet rows (``None`` if faults off)."""
        rng = self._require_bound()
        if not self.has_faults:
            return None
        tier_codes = self._tier_codes[np.asarray(rows, dtype=np.int64)]  # type: ignore[index]
        return self._faults.sample(tier_codes, rng)  # type: ignore[union-attr]


@dataclass(frozen=True)
class DynamicsSpec:
    """Declarative fleet-dynamics configuration (the scenario-level view).

    The default spec is *trivial*: always-on availability, no churn, no faults —
    :meth:`build` returns ``None`` for it, keeping the static-fleet fast path (and its
    seeded trajectories) untouched.
    """

    availability: str = "always-on"
    churn_rate: float = 0.0
    rejoin_rate: float = 0.5
    dropout_rate: float = 0.0
    slow_fault_rate: float = 0.0
    slow_fault_factor: float = 4.0
    tier_dropout_rates: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        AVAILABILITY.entry(self.availability)  # Early did-you-mean validation.
        for label, value in (
            ("churn_rate", self.churn_rate),
            ("rejoin_rate", self.rejoin_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {value}")
        # Fault-rate validation lives in FaultConfig; construct one to fail early.
        self._fault_config()

    def _fault_config(self) -> FaultConfig:
        return FaultConfig(
            dropout_rate=self.dropout_rate,
            slow_fault_rate=self.slow_fault_rate,
            slow_fault_factor=self.slow_fault_factor,
            tier_dropout_rates=self.tier_dropout_rates,
        )

    @property
    def is_trivial(self) -> bool:
        """True when the spec describes the static, fault-free fleet."""
        return (
            AVAILABILITY.canonical_name(self.availability) == "always-on"
            and self.churn_rate == 0.0
            and self._fault_config().is_trivial
        )

    def build(self) -> FleetDynamics | None:
        """Instantiate the dynamics, or ``None`` for the trivial (static) spec."""
        if self.is_trivial:
            return None
        fault_config = self._fault_config()
        return FleetDynamics(
            availability=AVAILABILITY.create(self.availability),  # type: ignore[arg-type]
            churn=(
                ChurnModel(leave_rate=self.churn_rate, rejoin_rate=self.rejoin_rate)
                if self.churn_rate > 0.0
                else None
            ),
            faults=FaultInjector(fault_config) if not fault_config.is_trivial else None,
        )
