"""Device churn: long-term join/leave dynamics of the FL population.

Availability (:mod:`repro.dynamics.availability`) models short-term reachability —
a device that is offline tonight is still enrolled in the training job.  Churn models
enrolment itself: devices uninstall the app, fail permanently, or new devices enrol
mid-job.  A churned-away device is out of the population until it rejoins: it is hidden
from selection policies and — like any unreachable device — excluded from the round's
idle-energy account, which covers only the reachable, enrolled fleet.

The model is a per-device membership chain driven by two per-round probabilities
(``leave_rate``, ``rejoin_rate``), with every membership flip recorded as a
:class:`ChurnEvent` so experiments can report fleet-composition timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change: a device leaving or (re)joining the population."""

    round_index: int
    device_id: int
    kind: str  # "leave" or "join"

    def __post_init__(self) -> None:
        if self.kind not in ("leave", "join"):
            raise ConfigurationError(f"churn event kind must be leave/join, got {self.kind!r}")


class ChurnModel:
    """Per-device membership chain with geometric enrolment/absence times."""

    def __init__(self, leave_rate: float = 0.02, rejoin_rate: float = 0.3) -> None:
        for label, value in (("leave_rate", leave_rate), ("rejoin_rate", rejoin_rate)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {value}")
        self.leave_rate = leave_rate
        self.rejoin_rate = rejoin_rate
        self._member: np.ndarray | None = None
        #: Compact per-round flip log: (round_index, leave_labels, join_labels) arrays.
        #: ChurnEvent objects are materialised lazily — the per-round hot path only
        #: appends the flip arrays instead of building O(flips) Python objects.
        self._flips: list[tuple[int, np.ndarray, np.ndarray]] = []

    @property
    def events(self) -> list[ChurnEvent]:
        """All membership changes so far, in round order (a fresh list).

        Within a round, leaves precede joins and both follow fleet order — the same
        order the eager per-flip log used to record.
        """
        return [
            ChurnEvent(round_index, int(label), kind)
            for round_index, leaves, joins in self._flips
            for kind, labels in (("leave", leaves), ("join", joins))
            for label in labels
        ]

    def reset(self, num_devices: int) -> None:
        """Start a new job: every device enrolled, event log cleared."""
        if num_devices <= 0:
            raise ConfigurationError("num_devices must be positive")
        self._member = np.ones(num_devices, dtype=bool)
        self._flips = []

    def membership_mask(
        self,
        round_index: int,
        rng: np.random.Generator,
        device_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance the chain one round and return the enrolled-device mask.

        ``device_ids`` (fleet order) labels the recorded events; without it events carry
        fleet row indices.  Must be called once per round in round order.
        """
        if self._member is None:
            raise SimulationError("ChurnModel used before reset(num_devices)")
        member = self._member
        draws = rng.random(len(member))
        leaving = member & (draws < self.leave_rate)
        joining = ~member & (draws < self.rejoin_rate)
        updated = (member & ~leaving) | joining
        if leaving.any() or joining.any():
            labels = device_ids if device_ids is not None else np.arange(len(member))
            self._flips.append((round_index, labels[leaving], labels[joining]))
        self._member = updated
        return updated.copy()
