"""Seeded mid-round failure injection for selected participants.

A device that is online at selection time can still fail *during* the round.  Two
failure modes are injected, mirroring the dominant dropout causes in deployed FL
(FLASH/FedScale-style system traces):

* **dropout before upload** — the device finishes (some of) its local training but dies
  before its gradient reaches the server (app evicted, network gone, battery pulled).
  Its compute time and energy are wasted, nothing is aggregated.
* **slow-fail straggler** — a transient condition (background compaction, thermal panic)
  stretches the device's compute by a constant factor; if that pushes it past the
  straggler deadline the ordinary FedAvg cutoff drops it.

Rates are configurable per device tier: low-end devices fail more in practice, and
per-tier rates let scenarios express exactly that.  Draws come from the fleet-dynamics
RNG, so fault streams are deterministic per seed and never perturb the environment's
condition sampling.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.devices.fleet_arrays import TIER_ORDER
from repro.exceptions import ConfigurationError, SimulationError

#: Tier names in tier-code order (matches ``FleetArrays.tier_codes``).
TIER_NAMES: tuple[str, ...] = tuple(tier.value for tier in TIER_ORDER)


@dataclass(frozen=True)
class DeviceFault:
    """The fault drawn for one selected participant this round."""

    upload_failure: bool = False
    compute_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_slowdown < 1.0:
            raise ConfigurationError(
                f"compute_slowdown must be >= 1, got {self.compute_slowdown}"
            )

    @property
    def is_benign(self) -> bool:
        """True when the device is unaffected this round."""
        return not self.upload_failure and self.compute_slowdown == 1.0


@dataclass(frozen=True)
class FaultDraw:
    """One round's fault assignment for a selection, aligned on the selection order."""

    upload_failure: np.ndarray  # bool per participant
    compute_slowdown: np.ndarray  # float >= 1 per participant

    def __post_init__(self) -> None:
        upload = np.asarray(self.upload_failure, dtype=bool)
        slowdown = np.asarray(self.compute_slowdown, dtype=np.float64)
        if upload.shape != slowdown.shape or upload.ndim != 1:
            raise SimulationError("fault arrays must be 1-D and equally sized")
        if np.any(slowdown < 1.0):
            raise SimulationError("compute_slowdown must be >= 1 everywhere")
        object.__setattr__(self, "upload_failure", upload)
        object.__setattr__(self, "compute_slowdown", slowdown)

    def __len__(self) -> int:
        return len(self.upload_failure)

    @property
    def has_faults(self) -> bool:
        """True when any participant is affected this round."""
        return bool(self.upload_failure.any() or (self.compute_slowdown > 1.0).any())

    @classmethod
    def none(cls, num_participants: int) -> "FaultDraw":
        """A draw with no faults, for ``num_participants`` devices."""
        return cls(
            upload_failure=np.zeros(num_participants, dtype=bool),
            compute_slowdown=np.ones(num_participants, dtype=np.float64),
        )

    def to_mapping(self, participants: Sequence[int]) -> dict[int, DeviceFault]:
        """Per-device view used by the scalar round-engine path."""
        if len(participants) != len(self):
            raise SimulationError("participants length does not match the fault draw")
        return {
            int(device_id): DeviceFault(
                upload_failure=bool(self.upload_failure[i]),
                compute_slowdown=float(self.compute_slowdown[i]),
            )
            for i, device_id in enumerate(participants)
        }

    @classmethod
    def from_mapping(
        cls, participants: Sequence[int], faults: Mapping[int, DeviceFault]
    ) -> "FaultDraw":
        """Gather a per-device fault mapping into selection-order arrays."""
        gathered = [faults.get(device_id, DeviceFault()) for device_id in participants]
        return cls(
            upload_failure=np.array([f.upload_failure for f in gathered], dtype=bool),
            compute_slowdown=np.array([f.compute_slowdown for f in gathered], dtype=np.float64),
        )


def _validate_tier_rates(label: str, rates: Mapping[str, float] | None) -> None:
    if rates is None:
        return
    unknown = set(rates) - set(TIER_NAMES)
    if unknown:
        raise ConfigurationError(f"{label} names unknown tiers: {sorted(unknown)}")
    for tier, value in rates.items():
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{label}[{tier!r}] must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultConfig:
    """Failure-injection rates; per-tier overrides win over the scalar baselines."""

    dropout_rate: float = 0.0
    slow_fault_rate: float = 0.0
    slow_fault_factor: float = 4.0
    tier_dropout_rates: Mapping[str, float] | None = None
    tier_slow_rates: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        for label, value in (
            ("dropout_rate", self.dropout_rate),
            ("slow_fault_rate", self.slow_fault_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {value}")
        if self.slow_fault_factor <= 1.0:
            raise ConfigurationError(
                f"slow_fault_factor must be > 1, got {self.slow_fault_factor}"
            )
        _validate_tier_rates("tier_dropout_rates", self.tier_dropout_rates)
        _validate_tier_rates("tier_slow_rates", self.tier_slow_rates)

    @property
    def is_trivial(self) -> bool:
        """True when no configured rate can ever produce a fault."""
        rates = [self.dropout_rate, self.slow_fault_rate]
        rates.extend((self.tier_dropout_rates or {}).values())
        rates.extend((self.tier_slow_rates or {}).values())
        return all(rate == 0.0 for rate in rates)

    def _by_tier_code(self, base: float, overrides: Mapping[str, float] | None) -> np.ndarray:
        rates = np.full(len(TIER_NAMES), base, dtype=np.float64)
        for tier, value in (overrides or {}).items():
            rates[TIER_NAMES.index(tier)] = value
        return rates

    @property
    def dropout_by_tier_code(self) -> np.ndarray:
        """Upload-failure probability per tier code (:data:`TIER_NAMES` order)."""
        return self._by_tier_code(self.dropout_rate, self.tier_dropout_rates)

    @property
    def slow_by_tier_code(self) -> np.ndarray:
        """Slow-fail probability per tier code (:data:`TIER_NAMES` order)."""
        return self._by_tier_code(self.slow_fault_rate, self.tier_slow_rates)


class FaultInjector:
    """Draws per-participant faults from a :class:`FaultConfig`."""

    def __init__(self, config: FaultConfig | None = None) -> None:
        self.config = config or FaultConfig()
        self._dropout = self.config.dropout_by_tier_code
        self._slow = self.config.slow_by_tier_code

    def sample(self, tier_codes: np.ndarray, rng: np.random.Generator) -> FaultDraw:
        """Draw faults for one selection (``tier_codes`` aligned on selection order)."""
        tier_codes = np.asarray(tier_codes, dtype=np.int64)
        if tier_codes.ndim != 1:
            raise SimulationError("tier_codes must be a 1-D array")
        num = len(tier_codes)
        upload_failure = rng.random(num) < self._dropout[tier_codes]
        slow = rng.random(num) < self._slow[tier_codes]
        slowdown = np.where(slow, self.config.slow_fault_factor, 1.0)
        return FaultDraw(upload_failure=upload_failure, compute_slowdown=slowdown)
