"""Per-device network bandwidth model.

Paper Section 5.2: "since the real-world network variability is typically modeled by a
Gaussian distribution, we emulate the random network bandwidth with a Gaussian distribution
by adjusting the network delay."  Paper Table 1 discretises the network state into
``Regular (> 40 Mbps)`` and ``Bad (<= 40 Mbps)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.registry import NETWORKS

#: Threshold (Mbit/s) separating the ``Regular`` and ``Bad`` network states (paper Table 1).
BAD_NETWORK_THRESHOLD_MBPS = 40.0

#: Threshold (Mbit/s) above which the link is treated as strong by the radio power model.
STRONG_NETWORK_THRESHOLD_MBPS = 60.0


class SignalStrength(enum.Enum):
    """Coarse signal-strength level used by the communication power model (Eq. 3)."""

    STRONG = "strong"
    MODERATE = "moderate"
    WEAK = "weak"


class NetworkScenario(enum.Enum):
    """Network execution scenarios used throughout the evaluation."""

    STABLE = "stable"
    VARIABLE = "variable"
    WEAK = "weak"

    @classmethod
    def from_name(cls, name: "str | NetworkScenario") -> "NetworkScenario":
        """Coerce a scenario name into an enum member via the registry."""
        if isinstance(name, cls):
            return name
        return NETWORKS.create(name)  # type: ignore[return-value]


NETWORKS.add(
    NetworkScenario.STABLE.value,
    lambda: NetworkScenario.STABLE,
    summary="High, tightly concentrated bandwidth (no network variance).",
)
NETWORKS.add(
    NetworkScenario.VARIABLE.value,
    lambda: NetworkScenario.VARIABLE,
    summary="Gaussian bandwidth variability (the paper's in-the-field default).",
)
NETWORKS.add(
    NetworkScenario.WEAK.value,
    lambda: NetworkScenario.WEAK,
    summary="Low-mean bandwidth; most devices in the Bad network state.",
)


def signal_from_bandwidth(bandwidth_mbps: float) -> SignalStrength:
    """Map an observed bandwidth to the coarse signal-strength level.

    Radio power rises as signal strength drops; bandwidth is the observable proxy the FL
    protocol already collects, so the mapping is made explicit and monotonic.
    """
    if bandwidth_mbps > STRONG_NETWORK_THRESHOLD_MBPS:
        return SignalStrength.STRONG
    if bandwidth_mbps > BAD_NETWORK_THRESHOLD_MBPS:
        return SignalStrength.MODERATE
    return SignalStrength.WEAK


@dataclass(frozen=True)
class BandwidthDistribution:
    """Gaussian bandwidth distribution for one scenario (mean/std in Mbit/s)."""

    mean_mbps: float
    std_mbps: float
    min_mbps: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_mbps <= 0 or self.std_mbps < 0 or self.min_mbps <= 0:
            raise ConfigurationError("bandwidth distribution parameters must be positive")


#: Scenario -> Gaussian parameters.  STABLE keeps every device comfortably in the Regular
#: band; VARIABLE straddles the 40 Mbps threshold; WEAK pushes most devices into the Bad
#: band, which the paper reports increases communication time/energy by ~4.3x on average.
SCENARIO_DISTRIBUTIONS: dict[NetworkScenario, BandwidthDistribution] = {
    NetworkScenario.STABLE: BandwidthDistribution(mean_mbps=90.0, std_mbps=8.0, min_mbps=5.0),
    NetworkScenario.VARIABLE: BandwidthDistribution(mean_mbps=55.0, std_mbps=25.0, min_mbps=4.0),
    NetworkScenario.WEAK: BandwidthDistribution(mean_mbps=20.0, std_mbps=8.0, min_mbps=3.0),
}


class BandwidthModel:
    """Samples per-device, per-round uplink bandwidth for a network scenario."""

    def __init__(self, scenario: NetworkScenario | str = NetworkScenario.STABLE) -> None:
        if isinstance(scenario, str):
            try:
                scenario = NetworkScenario(scenario.lower())
            except ValueError as exc:
                raise ConfigurationError(f"unknown network scenario {scenario!r}") from exc
        self._scenario = scenario
        self._distribution = SCENARIO_DISTRIBUTIONS[scenario]

    @property
    def scenario(self) -> NetworkScenario:
        """The configured network scenario."""
        return self._scenario

    @property
    def distribution(self) -> BandwidthDistribution:
        """The Gaussian parameters backing this model."""
        return self._distribution

    def sample(self, rng: np.random.Generator, num_devices: int = 1) -> np.ndarray:
        """Sample ``num_devices`` bandwidth values (Mbit/s), truncated at ``min_mbps``."""
        if num_devices < 1:
            raise ConfigurationError("num_devices must be >= 1")
        values = rng.normal(
            self._distribution.mean_mbps, self._distribution.std_mbps, size=num_devices
        )
        return np.maximum(values, self._distribution.min_mbps)

    def is_bad(self, bandwidth_mbps: float) -> bool:
        """Whether a bandwidth observation falls in the paper's ``Bad`` network state."""
        return bandwidth_mbps <= BAD_NETWORK_THRESHOLD_MBPS
