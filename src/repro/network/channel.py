"""Communication time and energy model (paper Eq. 3).

Each participant uploads its model-gradient update to the aggregation server and downloads
the new global model.  Communication energy is ``P_TX^S * t_TX`` where the transmit power
depends on the signal strength ``S`` — transmitting on a weak link costs substantially more
power (paper Sections 3.2 and 5.2; the weak-network scenario raises communication time and
energy by roughly 4.3x on average).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.bandwidth import (
    BAD_NETWORK_THRESHOLD_MBPS,
    STRONG_NETWORK_THRESHOLD_MBPS,
    SignalStrength,
    signal_from_bandwidth,
)

#: Transmit power (W) of the wireless interface per signal-strength level.  Anchored at
#: published smartphone radio measurements: ~0.8 W for a strong link, rising steeply as the
#: link degrades and the power amplifier compensates.
TX_POWER_WATT: dict[SignalStrength, float] = {
    SignalStrength.STRONG: 0.8,
    SignalStrength.MODERATE: 1.3,
    SignalStrength.WEAK: 2.2,
}

#: Receive power (W) of the wireless interface (far less signal-dependent than transmit).
RX_POWER_WATT: dict[SignalStrength, float] = {
    SignalStrength.STRONG: 0.6,
    SignalStrength.MODERATE: 0.8,
    SignalStrength.WEAK: 1.0,
}

#: Protocol overhead multiplier on payload size (framing, retransmissions, TLS).
PROTOCOL_OVERHEAD = 1.10

#: Fraction of the nominal link bandwidth available for the model download (the downlink is
#: usually faster than the uplink on mobile links; modelled as 2x the uplink).
DOWNLINK_BANDWIDTH_FACTOR = 2.0


@dataclass(frozen=True)
class CommunicationEstimate:
    """Predicted communication cost of one participant for one round."""

    upload_time_s: float
    download_time_s: float
    energy_j: float
    signal: SignalStrength

    @property
    def total_time_s(self) -> float:
        """Total time the radio is active for FL traffic."""
        return self.upload_time_s + self.download_time_s


class CommunicationModel:
    """Computes per-round communication time and energy for a participant."""

    def __init__(self, protocol_overhead: float = PROTOCOL_OVERHEAD) -> None:
        if protocol_overhead < 1.0:
            raise ConfigurationError("protocol_overhead must be >= 1.0")
        self._protocol_overhead = protocol_overhead

    def transfer_time_s(self, payload_mb: float, bandwidth_mbps: float) -> float:
        """Time to transfer ``payload_mb`` megabytes over a ``bandwidth_mbps`` link."""
        if payload_mb < 0:
            raise ConfigurationError("payload_mb must be non-negative")
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth_mbps must be positive")
        payload_megabits = payload_mb * 8.0 * self._protocol_overhead
        return payload_megabits / bandwidth_mbps

    def estimate(
        self,
        model_size_mb: float,
        bandwidth_mbps: float,
        signal: SignalStrength | None = None,
    ) -> CommunicationEstimate:
        """Estimate the upload/download time and radio energy for one round.

        Parameters
        ----------
        model_size_mb:
            Size of the model (gradient update and global model are the same size for
            FedAvg-style aggregation), in megabytes.
        bandwidth_mbps:
            Sampled uplink bandwidth for this device and round.
        signal:
            Optional explicit signal-strength level; derived from the bandwidth when omitted.
        """
        signal = signal if signal is not None else signal_from_bandwidth(bandwidth_mbps)
        upload_time = self.transfer_time_s(model_size_mb, bandwidth_mbps)
        download_time = self.transfer_time_s(
            model_size_mb, bandwidth_mbps * DOWNLINK_BANDWIDTH_FACTOR
        )
        energy = TX_POWER_WATT[signal] * upload_time + RX_POWER_WATT[signal] * download_time
        return CommunicationEstimate(
            upload_time_s=upload_time,
            download_time_s=download_time,
            energy_j=energy,
            signal=signal,
        )

    def estimate_batch(
        self, model_size_mb: float, bandwidth_mbps: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`estimate` over per-device bandwidths.

        Returns ``(upload_time_s, download_time_s, energy_j)`` arrays; the per-device
        signal level is derived from the bandwidth exactly as in the scalar path.
        """
        if model_size_mb < 0:
            raise ConfigurationError("model_size_mb must be non-negative")
        if np.any(bandwidth_mbps <= 0):
            raise ConfigurationError("bandwidth_mbps must be positive")
        payload_megabits = model_size_mb * 8.0 * self._protocol_overhead
        upload_time = payload_megabits / bandwidth_mbps
        download_time = payload_megabits / (bandwidth_mbps * DOWNLINK_BANDWIDTH_FACTOR)
        # First-match signal banding as nested np.where — same values as np.select
        # over the ordered conditions, without its per-choice temporary arrays.
        strong = bandwidth_mbps > STRONG_NETWORK_THRESHOLD_MBPS
        moderate = bandwidth_mbps > BAD_NETWORK_THRESHOLD_MBPS
        tx_power = np.where(
            strong,
            TX_POWER_WATT[SignalStrength.STRONG],
            np.where(
                moderate,
                TX_POWER_WATT[SignalStrength.MODERATE],
                TX_POWER_WATT[SignalStrength.WEAK],
            ),
        )
        rx_power = np.where(
            strong,
            RX_POWER_WATT[SignalStrength.STRONG],
            np.where(
                moderate,
                RX_POWER_WATT[SignalStrength.MODERATE],
                RX_POWER_WATT[SignalStrength.WEAK],
            ),
        )
        energy = tx_power * upload_time + rx_power * download_time
        return upload_time, download_time, energy
