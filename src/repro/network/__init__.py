"""Wireless network substrate: signal strength, bandwidth variability and communication cost.

The paper models real-world network variability with a Gaussian bandwidth distribution
(Section 5.2) and computes communication energy from a signal-strength-based power model
(Eq. 3).  Both are implemented here.
"""

from repro.network.bandwidth import (
    BandwidthModel,
    NetworkScenario,
    SignalStrength,
    signal_from_bandwidth,
)
from repro.network.channel import CommunicationEstimate, CommunicationModel

__all__ = [
    "BandwidthModel",
    "CommunicationEstimate",
    "CommunicationModel",
    "NetworkScenario",
    "SignalStrength",
    "signal_from_bandwidth",
]
