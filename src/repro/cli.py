"""Command-line interface: ``python -m repro {run,compare,sweep,serve,submit,…}``.

The CLI is a thin shell over the declarative experiment subsystem and the
orchestration service:

* ``run``      — one experiment spec (scenario + policy + seed replicas);
* ``compare``  — several policies on one scenario, normalised to a baseline;
* ``sweep``    — a cartesian grid over any axes, executed by the
  :class:`~repro.experiments.runner.BatchRunner` with spec-hash caching;
* ``submit``   — enqueue a spec, preset or sweep as a durable job for the service;
* ``serve``    — run a scheduler worker pool against the shared queue and store;
* ``status``   — job table (or one job's detail) from the queue directory;
* ``watch``    — tail the service's structured event stream (``-f`` to follow,
  ``--http`` to consume a ``serve --events-port`` long-poll endpoint);
* ``events``   — ``events sub``: durable-cursor subscription printing JSON lines,
  from the local log or an ``/events`` endpoint;
* ``webhooks`` — register/list/remove/test signed HTTP event callbacks;
* ``cancel``   — cancel a queued job immediately, a running job cooperatively;
* ``bench``    — performance trajectories: the scalar-vs-vectorised round engine
  (``BENCH_roundengine.json``) or the JSONL-vs-SQLite store (``--suite store``,
  ``BENCH_store.json``);
* ``validate`` — the validation subsystem: ``record`` golden trajectories for scenario
  presets, ``check`` them bit-exactly against a fresh run (exit 1 on drift, with a
  report naming the first diverging round and field), and ``fuzz`` randomised scenarios
  across every registered axis with invariant auditing;
* ``metrics``  — dump a telemetry snapshot (scheduler-written ``metrics.json`` plus
  live queue gauges) in the shared ``--format {table,csv,json}``;
* ``trace``    — run one traced job end to end (engine → scheduler → warehouse) and
  write a Chrome-trace JSON openable in ``chrome://tracing`` or Perfetto;
* ``ingest``   — load result stores, golden trajectories, ``BENCH_*.json`` records
  and telemetry snapshots into the columnar analytics warehouse under an ingest label;
* ``query``    — filter + group-by aggregation (mean/p50/p95/…) over the warehouse;
* ``report``   — cross-run comparison report, policies normalised per scenario;
* ``eval``     — regression eval: diff a candidate ingest against a baseline label with
  per-metric thresholds (exit 1 on any breach — the CI contract);
* ``list``     — enumerate any registry (policies, workloads, aggregators, scenarios, …).

Tabular commands (``compare``, ``status``, ``query``, ``report``, ``eval``) share one
``--format {table,csv,json}`` flag via
:func:`~repro.experiments.reporting.render_rows`.

``run``/``compare``/``sweep``/``submit`` accept ``--scenario PRESET`` to start from a
registered scenario preset (``paper-200``, ``fleet-1k``, ``diurnal-1k``,
``flaky-fleet``, ``churn-heavy``, …); any explicitly passed scenario flag overrides the
preset field.  Result stores default to the indexed SQLite backend
(``.repro-results/results.sqlite``); a ``--store`` path ending in ``.jsonl`` selects
the legacy flat-file backend, and a legacy store sitting next to the SQLite default is
migrated in automatically on first use.

Examples
--------
::

    python -m repro list policies
    python -m repro run --policy autofl --network variable --seeds 3
    python -m repro run --scenario flaky-fleet --rounds 100
    python -m repro compare --policies fedavg-random,power,performance,autofl
    python -m repro sweep --axis policy=fedavg-random,autofl --axis dropout-rate=0,0.1
    python -m repro submit --scenario fleet-1k --priority 5 --retries 1
    python -m repro submit --scenario fleet-1k --lane team-a --weight 3
    python -m repro serve --workers 4
    python -m repro serve --workers 4 --metrics-port 9100
    python -m repro serve --workers 4 --store .repro-shards --store-shards 4
    python -m repro status --json
    python -m repro status --by-lane
    python -m repro metrics
    python -m repro trace --output trace.json
    python -m repro watch -f
    python -m repro bench --sizes 200,1000,10000
    python -m repro bench --suite store --entries 10000
    python -m repro validate check
    python -m repro validate fuzz --budget 60 --report fuzz-report.json
    python -m repro ingest --store --goldens --label baseline
    python -m repro query --where policy=autofl --group-by preset --agg mean,p95
    python -m repro query --bench --format json
    python -m repro report --baseline-policy fedavg-random
    python -m repro eval --baseline baseline --candidate candidate --report eval.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time
import urllib.error
import urllib.request
from collections.abc import Sequence
from dataclasses import replace
from pathlib import Path
from urllib.parse import urlencode, urlsplit

from repro import telemetry
from repro.analytics import (
    AGGREGATIONS,
    BENCH_FLOOR_HEADERS,
    DEFAULT_WAREHOUSE_ROOT,
    EVAL_HEADERS,
    Warehouse,
    build_comparison_report,
    parse_bench_floor,
    parse_threshold,
    parse_where,
    run_bench_floor_eval,
    run_query,
    run_regression_eval,
)
from repro.exceptions import ConfigurationError, QueueSaturated, ReproError
from repro.experiments.harness import run_policy_comparison
from repro.experiments.reporting import (
    COMPARISON_HEADERS,
    OUTPUT_FORMATS,
    format_batch_footer,
    format_experiment_results,
    format_registry,
    render_rows,
)
from repro.experiments.runner import BatchRunner, get_executor
from repro.experiments.spec import ExperimentSpec, Sweep, parse_axis
from repro.registry import REGISTRIES, get_registry
from repro.service import (
    DEFAULT_DRAIN_GRACE_S,
    DEFAULT_LEASE_S,
    DEFAULT_POLL_S,
    DEFAULT_SERVICE_ROOT,
    DEFAULT_SQLITE_STORE_PATH,
    DEFAULT_STORE_BENCH_ENTRIES,
    DEFAULT_STORE_BENCH_LOOKUPS,
    DEFAULT_STORE_BENCH_OUTPUT,
    EVENTS_FILENAME,
    SHED_POLICIES,
    AdmissionPolicy,
    EventBus,
    EventLog,
    EventPlaneServer,
    JobQueue,
    JobState,
    Scheduler,
    WebhookDispatcher,
    WebhookRegistry,
    deliver_once,
    event_matches,
    format_event,
    format_store_bench,
    make_job,
    open_store,
    run_store_bench,
    tail_events,
)
from repro.sim.bench import (
    DEFAULT_BENCH_OUTPUT,
    DEFAULT_BENCH_REPLICATES,
    DEFAULT_BENCH_SIZES,
    DEFAULT_REPLICATION_ROUNDS,
    format_bench_record,
    run_roundengine_bench,
)
from repro.sim.scenarios import ScenarioSpec, get_scenario_preset
from repro.telemetry import METRICS_FILENAME, MetricsServer
from repro.validation import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_MAX_ROUNDS,
    GOLDEN_PRESETS,
    GoldenStore,
    golden_spec,
    run_fuzz,
)
from repro.version import __version__

#: Default sweep grid: two axes, four points — small enough to demo caching quickly.
DEFAULT_SWEEP_AXES = ("policy=fedavg-random,autofl", "setting=S1,S3")

#: The scenario used when no ``--scenario`` preset is named: the historical CLI
#: defaults (a small, fast 50-device job).  Flags override individual fields.
CLI_DEFAULT_SCENARIO = ScenarioSpec(num_devices=50, max_rounds=40)

#: CLI flag destination -> ScenarioSpec field, for preset overriding.
_SCENARIO_FLAG_FIELDS: dict[str, str] = {
    "workload": "workload",
    "setting": "setting",
    "interference": "interference",
    "network": "network",
    "data_distribution": "data_distribution",
    "devices": "num_devices",
    "rounds": "max_rounds",
    "seed": "seed",
    "aggregator": "aggregator",
    "availability": "availability",
    "churn_rate": "churn_rate",
    "rejoin_rate": "rejoin_rate",
    "dropout_rate": "dropout_rate",
    "slow_fault_rate": "slow_fault_rate",
    "slow_fault_factor": "slow_fault_factor",
}


def _add_scenario_arguments(parser: argparse.ArgumentParser, replication: bool = True) -> None:
    # Scenario flags default to None so that, under --scenario, only explicitly passed
    # flags override the preset; the effective defaults live in CLI_DEFAULT_SCENARIO.
    group = parser.add_argument_group("scenario")
    group.add_argument(
        "--scenario",
        default=None,
        metavar="PRESET",
        help="start from a registered scenario preset (see: python -m repro list scenarios)",
    )
    group.add_argument("--workload", default=None, help="FL workload name (default: cnn-mnist)")
    group.add_argument(
        "--setting", default=None, help="global-parameter setting S1-S4 (default: S3)"
    )
    group.add_argument(
        "--interference",
        default=None,
        help="interference scenario (none/moderate/heavy; default: none)",
    )
    group.add_argument(
        "--network", default=None, help="network scenario (stable/variable/weak; default: stable)"
    )
    group.add_argument(
        "--data-distribution",
        default=None,
        help="data-heterogeneity scenario (iid/non_iid_50/75/100; default: iid)",
    )
    group.add_argument("--devices", type=int, default=None, help="fleet size N (default: 50)")
    group.add_argument(
        "--rounds", type=int, default=None, help="maximum aggregation rounds (default: 40)"
    )
    group.add_argument("--seed", type=int, default=None, help="base random seed (default: 0)")
    group.add_argument(
        "--aggregator", default=None, help="aggregation algorithm (default: fedavg)"
    )
    dynamics = parser.add_argument_group("fleet dynamics")
    dynamics.add_argument(
        "--availability",
        default=None,
        help="availability process (always-on/bernoulli/markov/diurnal/trace)",
    )
    dynamics.add_argument(
        "--churn-rate", type=float, default=None, help="per-round device leave probability"
    )
    dynamics.add_argument(
        "--rejoin-rate", type=float, default=None, help="per-round device rejoin probability"
    )
    dynamics.add_argument(
        "--dropout-rate",
        type=float,
        default=None,
        help="per-round probability a participant fails before upload",
    )
    dynamics.add_argument(
        "--slow-fault-rate",
        type=float,
        default=None,
        help="per-round probability a participant slow-fails (straggler fault)",
    )
    dynamics.add_argument(
        "--slow-fault-factor",
        type=float,
        default=None,
        help="compute-time stretch of slow-failing participants (default: 4.0)",
    )
    if replication:
        group.add_argument(
            "--seeds", type=int, default=1, help="seed replicas averaged per grid point"
        )
        group.add_argument(
            "--no-early-stop",
            action="store_true",
            help="always run the full round budget instead of stopping at convergence",
        )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=str(DEFAULT_SQLITE_STORE_PATH),
        help=(
            "result store used as the spec-hash cache (SQLite by default; "
            "a path ending in .jsonl selects the legacy flat-file backend)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run every grid point fresh, without reading or writing the store",
    )


def _add_format_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        default="table",
        choices=OUTPUT_FORMATS,
        help="output format (default: human-readable table)",
    )


def _add_warehouse_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--warehouse",
        default=str(DEFAULT_WAREHOUSE_ROOT),
        help="warehouse directory (columnar tables + manifest)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "parquet", "numpy"),
        help="columnar backend (auto: Parquet when pyarrow is installed, else .npz)",
    )


def _warehouse(args: argparse.Namespace) -> Warehouse:
    return Warehouse(args.warehouse, backend=getattr(args, "backend", "auto"))


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root",
        default=str(DEFAULT_SERVICE_ROOT),
        help="orchestration-service directory (job queue + event log)",
    )


def _queue(args: argparse.Namespace) -> JobQueue:
    return JobQueue(Path(args.root) / "queue")


def _events_path(args: argparse.Namespace) -> Path:
    return Path(args.root) / EVENTS_FILENAME


def _store_p95(args: argparse.Namespace) -> float | None:
    """Worst ``repro_store_op_s`` p95 from the scheduler's metrics snapshot.

    ``None`` when no snapshot (or no store series) exists — admission's store-latency
    threshold then simply does not apply, rather than blocking all submissions.
    """
    try:
        payload = telemetry.read_snapshot(Path(args.root) / METRICS_FILENAME)
    except (FileNotFoundError, ReproError):
        return None
    worst = None
    for entry in payload.get("metrics", []):
        if entry.get("name") != "repro_store_op_s" or entry.get("kind") != "histogram":
            continue
        p95 = entry.get("p95")
        if isinstance(p95, (int, float)) and not math.isnan(p95):
            worst = p95 if worst is None else max(worst, p95)
    return worst


def _iter_http_events(
    url: str,
    cursor: int = 0,
    job: str | None = None,
    events: Sequence[str] | None = None,
    follow: bool = False,
    poll_timeout: float = 30.0,
):
    """Yield events from an ``/events`` long-poll endpoint, resuming by cursor.

    ``url`` may be the server base (``http://host:port``), the endpoint itself,
    or a bare ``host:port`` (http is assumed).  Without ``follow``, stops at the
    first empty batch (the backlog is drained).
    """
    if "//" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    base = url if parts.path.rstrip("/").endswith("/events") else url.rstrip("/") + "/events"
    while True:
        query: list[tuple[str, str]] = [("cursor", str(cursor))]
        if job:
            query.append(("job", job))
        for name in events or ():
            query.append(("event", name))
        query.append(("timeout", str(poll_timeout if follow else 0)))
        try:
            with urllib.request.urlopen(f"{base}?{urlencode(query)}") as response:
                body = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ReproError(f"event endpoint {base} unreachable: {exc}") from exc
        batch = body.get("events", [])
        cursor = int(body.get("cursor", cursor))
        yield from batch
        if not follow and not batch:
            return


def _resolve_scenario(args: argparse.Namespace) -> ScenarioSpec:
    base = (
        get_scenario_preset(args.scenario)
        if getattr(args, "scenario", None)
        else CLI_DEFAULT_SCENARIO
    )
    overrides = {
        spec_field: getattr(args, flag)
        for flag, spec_field in _SCENARIO_FLAG_FIELDS.items()
        if getattr(args, flag, None) is not None
    }
    return replace(base, **overrides)


def _base_spec(args: argparse.Namespace, policy: str) -> ExperimentSpec:
    return ExperimentSpec(
        scenario=_resolve_scenario(args),
        policy=policy,
        n_seeds=getattr(args, "seeds", 1),
        stop_at_convergence=not getattr(args, "no_early_stop", False),
    ).validate()


def _make_runner(args: argparse.Namespace, executor_name: str, jobs: int | None) -> BatchRunner:
    store = None if args.no_cache else open_store(args.store)
    return BatchRunner(executor=get_executor(executor_name, jobs), store=store)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _base_spec(args, args.policy)
    report = _make_runner(args, "serial", None).run([spec])
    print(format_experiment_results(report.results))
    print(format_batch_footer(report))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    policies = tuple(name.strip() for name in args.policies.split(",") if name.strip())
    # Validate the line-up (with did-you-mean errors) before running anything.
    for policy in policies:
        _base_spec(args, policy)
    spec = _base_spec(args, args.baseline).scenario
    _results, rows = run_policy_comparison(
        spec, policies=policies, baseline=args.baseline, max_rounds=spec.max_rounds
    )
    print(render_rows(COMPARISON_HEADERS, [row.as_tuple() for row in rows], args.format))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = _base_spec(args, "autofl")
    axes: dict[str, tuple[object, ...]] = {}
    for name, values in (parse_axis(text) for text in (args.axis or list(DEFAULT_SWEEP_AXES))):
        if name in axes:
            raise ConfigurationError(f"sweep axis {name!r} given twice")
        axes[name] = values
    sweep = Sweep(base, axes)
    runner = _make_runner(args, args.executor, args.jobs)
    report = runner.run(sweep)
    print(format_experiment_results(report.results))
    print(format_batch_footer(report))
    return 0


def _register_bench(args: argparse.Namespace, record: dict) -> None:
    """Register a fresh bench record in the warehouse so ``repro query --bench`` can
    plot rounds/s trajectories across commits via the recorded provenance."""
    if args.no_warehouse:
        return
    rows = Warehouse(args.warehouse).ingest_bench_record(record)
    print(f"registered {rows} measurement(s) in warehouse {args.warehouse}")


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "store":
        output = args.output if args.output is not None else DEFAULT_STORE_BENCH_OUTPUT
        record = run_store_bench(
            entries=args.entries, lookups=args.lookups, seed=args.seed, output=output
        )
        print(format_store_bench(record))
        print(f"\nwrote {output}")
        _register_bench(args, record)
        return 0
    try:
        sizes = tuple(int(size) for size in args.sizes.split(",") if size.strip())
    except ValueError:
        raise ConfigurationError(f"invalid --sizes value {args.sizes!r}") from None
    output = args.output if args.output is not None else DEFAULT_BENCH_OUTPUT
    record = run_roundengine_bench(
        sizes=sizes,
        seed=args.seed,
        workload=args.workload,
        interference=args.interference,
        network=args.network,
        repeats=args.repeats,
        output=output,
        replicates=args.replicates,
        replication_rounds=args.replication_rounds,
    )
    print(format_bench_record(record))
    print(f"\nwrote {output}")
    _register_bench(args, record)
    return 0


# ---------------------------------------------------------------------- service commands
def _cmd_submit(args: argparse.Namespace) -> int:
    base = _base_spec(args, args.policy)
    if args.axis:
        axes: dict[str, tuple[object, ...]] = {}
        for name, values in (parse_axis(text) for text in args.axis):
            if name in axes:
                raise ConfigurationError(f"sweep axis {name!r} given twice")
            axes[name] = values
        experiments: ExperimentSpec | Sweep = Sweep(base, axes)
    else:
        experiments = base
    label = args.label or (args.scenario if args.scenario else base.label)
    job = make_job(
        experiments,
        label=label,
        lane=args.lane or "",
        weight=args.weight,
        priority=args.priority,
        retry_budget=args.retries,
        validate=args.validate_results,
        timeout_s=args.timeout,
    )
    if args.scenario:
        job.provenance["preset"] = args.scenario
    queue = _queue(args)
    events = EventLog(_events_path(args))
    try:
        shed = queue.admit(job, store_p95_s=_store_p95(args))
    except QueueSaturated as exc:
        events.emit("queue_saturated", job_id=job.job_id, reason=str(exc))
        raise
    if shed is not None:
        events.emit(
            "job_shed",
            job_id=shed.job_id,
            priority=shed.priority,
            shed_for=job.job_id,
        )
        print(
            f"shed {shed.job_id} (priority {shed.priority}) to admit this submission",
            file=sys.stderr,
        )
    queue.submit(job)
    events.emit(
        "job_submitted",
        job_id=job.job_id,
        specs=len(job.specs),
        priority=job.priority,
        label=job.label,
        lane=job.lane,
        weight=job.weight,
    )
    print(
        f"submitted {job.job_id}: {len(job.specs)} spec(s), priority {job.priority}, "
        f"lane {job.lane!r} (weight {job.weight}), label {job.label!r}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    queue = _queue(args)
    # Admission flags persist into the queue root so submitters (usually other
    # processes) enforce them too; --max-depth 0 clears a persisted policy.
    if args.max_depth is not None or args.max_store_p95 is not None:
        if args.max_depth == 0:
            queue.set_admission(None)
            print("admission control cleared", file=sys.stderr)
        else:
            policy = AdmissionPolicy(
                max_depth=args.max_depth,
                shed_policy=args.shed_policy,
                max_store_p95_s=args.max_store_p95,
            )
            queue.set_admission(policy)
    # --metrics-port / --trace-file imply telemetry; --telemetry turns it on without
    # either surface (the scheduler still drops metrics.json into the service root).
    telemetry_on = (
        telemetry.enabled()
        or args.telemetry
        or args.metrics_port is not None
        or args.trace_file is not None
    )
    if telemetry_on:
        telemetry.configure(enabled=True)
        if args.trace_file is not None:
            telemetry.configure(trace_path=args.trace_file)
    events = EventLog(_events_path(args), echo=not args.quiet)
    scheduler = Scheduler(
        queue=queue,
        store=open_store(args.store, shards=args.store_shards),
        events=events,
        lease_s=args.lease,
        poll_s=args.poll,
        metrics_path=(Path(args.root) / METRICS_FILENAME) if telemetry_on else None,
        drain_grace_s=args.drain_grace,
    )
    server = None
    bus = None
    event_server = None
    dispatcher = None
    if args.metrics_port is not None:
        server = MetricsServer(
            telemetry.get_registry(), port=args.metrics_port, refresh=queue.export_gauges
        ).start()
        print(f"metrics: {server.url}")
    if args.events_port is not None:
        bus = EventBus(_events_path(args), since_cursor=None).start()
        events.attach_bus(bus)  # In-process emits wake the follower immediately.
        event_server = EventPlaneServer(bus, port=args.events_port).start()
        print(f"events: {event_server.url} (+ /events/stream SSE)")
    if not args.no_webhooks:
        # The dispatcher re-reads the registry every pass, so it also picks up
        # hooks added while this serve runs; with none registered it is an idle
        # poll, so it always starts.
        dispatcher = WebhookDispatcher(args.root, events_path=_events_path(args)).start()
    try:
        scheduler.serve(workers=args.workers, drain=args.drain)
    except KeyboardInterrupt:
        # Only reachable when no signal handler could be installed (non-main
        # thread); the normal Ctrl-C / SIGTERM path is the graceful drain below.
        print("interrupted: in-flight jobs were requeued", file=sys.stderr)
        return 130
    finally:
        if dispatcher is not None:
            dispatcher.close()  # Flushes already-logged events one last time.
        if event_server is not None:
            event_server.close()
        if bus is not None:
            bus.close()
        if server is not None:
            server.close()
    if scheduler.signals_seen:
        print("drained on signal: in-flight work finished or was requeued", file=sys.stderr)
    return 0


#: Column headers of the ``status`` job table (shared by every output format).
STATUS_HEADERS: tuple[str, ...] = (
    "job",
    "state",
    "prio",
    "specs",
    "hits",
    "exec",
    "try",
    "age_s",
    "label/error",
)


def _status_row(job) -> tuple[object, ...]:
    age_s = max(0.0, time.time() - job.submitted_at)
    note = job.error.splitlines()[0][:40] if job.error else job.label[:40]
    return (
        job.job_id,
        job.state.value,
        job.priority,
        len(job.specs),
        job.cache_hits,
        job.executed,
        job.attempts,
        round(age_s, 1),
        note,
    )


def _queue_gauges(queue: JobQueue) -> dict[str, float]:
    """Live queue gauges as ``name{labels}`` → value, via a private registry (the
    process-wide one stays untouched — ``status`` is read-only introspection)."""
    registry = telemetry.MetricsRegistry(enabled=True)
    queue.export_gauges(registry)
    gauges: dict[str, float] = {}
    for entry in registry.snapshot():
        labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
        key = f"{entry['name']}{{{labels}}}" if labels else entry["name"]
        gauges[key] = entry["value"]
    return gauges


#: Column headers of the per-lane ``status --by-lane`` table.
LANE_HEADERS: tuple[str, ...] = (
    "lane",
    "weight",
    "queued",
    "running",
    "done",
    "failed",
    "oldest_wait_s",
)


def _lane_rows(queue: JobQueue, jobs) -> list[tuple[object, ...]]:
    depths = queue.lane_depths()
    by_lane: dict[str, dict[str, int]] = {}
    weights: dict[str, int] = {}
    for job in jobs:
        lane = job.lane or "lane-unknown"
        counts = by_lane.setdefault(lane, {})
        counts[job.state.value] = counts.get(job.state.value, 0) + 1
        weights[lane] = max(weights.get(lane, 1), job.weight)
    rows: list[tuple[object, ...]] = []
    for lane in sorted(set(depths) | set(by_lane)):
        info = depths.get(lane, {})
        counts = by_lane.get(lane, {})
        rows.append(
            (
                lane,
                int(info.get("weight", weights.get(lane, 1))),
                counts.get("queued", 0),
                counts.get("running", 0),
                counts.get("done", 0),
                counts.get("failed", 0),
                round(float(info.get("oldest_wait_s", 0.0)), 1),
            )
        )
    return rows


def _cmd_status(args: argparse.Namespace) -> int:
    queue = _queue(args)
    if args.job_id:
        job = queue.get(args.job_id)
        payload = job.to_dict()
        store = open_store(args.store)
        if hasattr(store, "get_artifacts"):
            payload["artifacts"] = store.get_artifacts(job.job_id)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if job.state is not JobState.FAILED else 1
    jobs = queue.jobs()
    admission = queue.admission()
    if args.json:
        print(
            json.dumps(
                {
                    "admission": admission.to_dict() if admission is not None else None,
                    "counts": queue.counts(),
                    "gauges": _queue_gauges(queue),
                    "lanes": queue.lane_depths(),
                    "jobs": [job.to_dict() for job in jobs],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    if args.by_lane:
        print(render_rows(LANE_HEADERS, _lane_rows(queue, jobs), args.format))
        return 0
    print(render_rows(STATUS_HEADERS, [_status_row(job) for job in jobs], args.format))
    if args.format == "table":
        counts = queue.counts()
        print(
            "\n"
            + "  ".join(f"{state}: {count}" for state, count in counts.items() if count)
            + (
                f"  (total: {sum(counts.values())})"
                if any(counts.values())
                else "queue is empty"
            )
        )
        gauges = _queue_gauges(queue)
        print("gauges: " + "  ".join(f"{key}={value:g}" for key, value in gauges.items()))
        if admission is not None:
            depth = queue.depth()
            saturated = admission.max_depth is not None and depth >= admission.max_depth
            limits = []
            if admission.max_depth is not None:
                limits.append(f"max_depth={admission.max_depth} ({admission.shed_policy})")
            if admission.max_store_p95_s is not None:
                limits.append(f"max_store_p95_s={admission.max_store_p95_s:g}")
            print(
                "admission: "
                + "  ".join(limits)
                + ("  ** SATURATED **" if saturated else f"  depth={depth}")
            )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    try:
        if args.http:
            for payload in _iter_http_events(
                args.http, cursor=args.cursor, job=args.job, follow=args.follow
            ):
                print(format_event(payload))
            return 0
        path = _events_path(args)
        if not path.exists() and not args.follow:
            print(f"no events yet at {path}")
            return 0
        for payload in tail_events(path, follow=args.follow):
            if args.job and payload.get("job_id") != args.job:
                continue
            print(format_event(payload))
    except KeyboardInterrupt:
        # Ctrl-C is the normal way to leave a follow: exit cleanly, not with a
        # traceback or an error status.
        print("", flush=True)
        return 0
    return 0


def _cmd_events_sub(args: argparse.Namespace) -> int:
    """``repro events sub``: one JSON line per event, resumable by ``--cursor``."""
    emitted = 0
    try:
        if args.http:
            source = _iter_http_events(
                args.http,
                cursor=args.cursor,
                job=args.job,
                events=args.event,
                follow=args.follow,
            )
        else:
            source = (
                payload
                for payload in tail_events(
                    _events_path(args), follow=args.follow, since_cursor=args.cursor
                )
                if event_matches(payload, job=args.job, events=args.event)
            )
        for payload in source:
            print(json.dumps(payload, sort_keys=True), flush=True)
            emitted += 1
            if args.limit is not None and emitted >= args.limit:
                return 0
    except KeyboardInterrupt:
        print("", flush=True)
    return 0


def _cmd_webhooks(args: argparse.Namespace) -> int:
    registry = WebhookRegistry(args.root)
    if args.webhooks_action == "add":
        hook = registry.add(
            args.url,
            events=args.event,
            secret=args.secret,
            events_path=_events_path(args),
        )
        EventLog(_events_path(args)).emit(
            "webhook_added", hook=hook.hook_id, url=hook.url
        )
        print(f"registered {hook.hook_id} -> {hook.url}")
        print(f"secret: {hook.secret}")
        if hook.events:
            print(f"events: {','.join(hook.events)}")
        return 0
    if args.webhooks_action == "list":
        hooks = registry.load()
        if not hooks:
            print("no webhooks registered")
            return 0
        for hook in hooks:
            events = ",".join(hook.events) if hook.events else "*"
            print(
                f"{hook.hook_id}  {hook.url}  events={events}  "
                f"cursor={registry.cursor_of(hook)}"
            )
        return 0
    if args.webhooks_action == "rm":
        removed = registry.remove(args.hook_id)
        EventLog(_events_path(args)).emit(
            "webhook_removed", hook=removed.hook_id, url=removed.url
        )
        print(f"removed {removed.hook_id} ({removed.url})")
        return 0
    # test: one synthetic signed delivery, bypassing the dispatcher.
    hook = registry.get(args.hook_id)
    payload = {
        "event": "webhook_test",
        "ts": time.time(),
        "hook": hook.hook_id,
    }
    status = deliver_once(hook, payload)
    print(f"delivered test event to {hook.url}: HTTP {status}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    job = _queue(args).cancel(args.job_id)
    EventLog(_events_path(args)).emit("cancel_requested", job_id=args.job_id)
    if job.state is JobState.CANCELLED:
        print(f"cancelled {job.job_id}")
    else:
        print(f"cancel requested for running job {job.job_id} (honoured between grid points)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    registry = telemetry.MetricsRegistry(enabled=True)
    path = Path(args.file) if args.file else Path(args.root) / METRICS_FILENAME
    snapshot_ts = None
    try:
        payload = telemetry.read_snapshot(path)
    except FileNotFoundError:
        payload = None
    if payload is not None:
        registry.merge(payload["metrics"])
        snapshot_ts = payload.get("ts")
    # Queue gauges are computed live from the queue directory, so they are fresh
    # even when the snapshot is stale (or missing entirely).
    queue_dir = Path(args.root) / "queue"
    if queue_dir.exists():
        JobQueue(queue_dir).export_gauges(registry)
    elif payload is None:
        print(
            f"no metrics yet: no snapshot at {path} and no queue under {args.root} "
            "(run `repro serve --telemetry` or `repro trace` first)",
            file=sys.stderr,
        )
        return 1
    if args.prometheus:
        sys.stdout.write(telemetry.render_prometheus(registry))
        return 0
    entries = registry.snapshot()
    print(
        render_rows(
            telemetry.METRICS_HEADERS, telemetry.metrics_table_rows(entries), args.format
        )
    )
    if args.format == "table" and snapshot_ts is not None:
        age_s = max(0.0, time.time() - snapshot_ts)
        print(f"\n{len(entries)} series; snapshot {path} written {age_s:.1f}s ago")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.spans:
        spans = telemetry.load_spans(args.spans)
        if not spans:
            raise ReproError(f"no spans found in {args.spans}")
    else:
        spans = _run_traced_job(args)
    telemetry.write_chrome_trace(spans, args.output)
    layers = sorted({span.category for span in spans})
    print(f"traced {len(spans)} span(s) across {len(layers)} layer(s): {', '.join(layers)}")
    print(f"wrote {args.output} (open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _run_traced_job(args: argparse.Namespace) -> list:
    """Run one job through every layer — engine, scheduler, warehouse — with the span
    sink attached, inside a throwaway service root; returns the collected spans."""
    base = (
        get_scenario_preset(args.scenario)
        if args.scenario
        else ScenarioSpec(num_devices=50, max_rounds=8)
    )
    overrides: dict[str, object] = {}
    if args.devices is not None:
        overrides["num_devices"] = args.devices
    if args.rounds is not None:
        overrides["max_rounds"] = args.rounds
    spec = ExperimentSpec(scenario=replace(base, **overrides), policy=args.policy).validate()
    was_enabled = telemetry.enabled()
    old_sink = telemetry.get_tracer().sink_path
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
        root = Path(tmp)
        sink = root / "spans.jsonl"
        telemetry.configure(enabled=True, trace_path=sink)
        try:
            queue = JobQueue(root / "queue")
            job = make_job(spec, label="trace")
            queue.submit(job)
            scheduler = Scheduler(
                queue=queue,
                store=open_store(str(root / "results.sqlite")),
                events=EventLog(root / EVENTS_FILENAME, echo=False),
                metrics_path=root / METRICS_FILENAME,
            )
            scheduler.serve(workers=1, drain=True)
            finished = queue.get(job.job_id)
            if finished.state is not JobState.DONE:
                raise ReproError(
                    f"traced job finished {finished.state.value}: "
                    f"{finished.error or 'unknown error'}"
                )
            warehouse = Warehouse(root / "warehouse")
            warehouse.ingest_store(str(root / "results.sqlite"), label="trace")
            warehouse.ingest_metrics(root / METRICS_FILENAME, label="trace")
            run_query(warehouse, table="runs")
            return telemetry.load_spans(sink)
        finally:
            telemetry.configure(enabled=was_enabled, trace_path=old_sink)


def _parse_presets(raw: str) -> tuple[str, ...]:
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    if not names:
        raise ConfigurationError(f"no preset names in {raw!r}")
    # Resolve each name (with did-you-mean errors) before any recording/checking runs.
    for name in names:
        get_scenario_preset(name)
    return names


def _cmd_validate_record(args: argparse.Namespace) -> int:
    store = GoldenStore(args.dir)
    for preset in _parse_presets(args.presets):
        golden = store.record(preset, golden_spec(preset, max_rounds=args.rounds))
        print(
            f"recorded golden {preset!r}: {golden.num_rounds} rounds, "
            f"spec {golden.spec_hash[:12]} -> {store.path_for(preset)}"
        )
    return 0


def _cmd_validate_check(args: argparse.Namespace) -> int:
    store = GoldenStore(args.dir)
    reports = [store.check(preset) for preset in _parse_presets(args.presets)]
    for report in reports:
        print(report.format())
    if args.report:
        payload = {"kind": "golden-drift-report", "goldens": [r.to_dict() for r in reports]}
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nwrote {args.report}")
    return 0 if all(report.ok for report in reports) else 1


def _cmd_validate_fuzz(args: argparse.Namespace) -> int:
    report = run_fuzz(count=args.count, budget_s=args.budget, seed=args.seed)
    print(report.format())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"\nwrote {args.report}")
    return 0 if report.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    axes = [args.axis] if args.axis else list(REGISTRIES)
    blocks = [format_registry(axis, get_registry(axis)) for axis in axes]
    print("\n\n".join(blocks))
    return 0


# ---------------------------------------------------------------------- analytics commands
def _cmd_ingest(args: argparse.Namespace) -> int:
    warehouse = _warehouse(args)
    ingested = 0
    if args.store is not None:
        rows = warehouse.ingest_store(args.store, label=args.label)
        print(f"ingested {rows} run row(s) from store {args.store}")
        ingested += 1
    if args.goldens is not None:
        rows = warehouse.ingest_goldens(args.goldens or None, label=args.label)
        print(f"ingested {rows} row(s) from goldens in {args.goldens or 'goldens/'}")
        ingested += 1
    if args.bench is not None:
        rows = warehouse.ingest_bench_files(args.bench)
        print(f"ingested {rows} bench measurement(s) from {args.bench}")
        ingested += 1
    if args.metrics is not None:
        rows = warehouse.ingest_metrics(args.metrics, label=args.label)
        print(f"ingested {rows} metric row(s) from snapshot {args.metrics}")
        ingested += 1
    if not ingested:
        raise ConfigurationError(
            "nothing to ingest: pass --store [PATH], --goldens [DIR], --bench [PATH] "
            "and/or --metrics [PATH]"
        )
    receipt = warehouse.describe()
    tables = "  ".join(f"{name}: {rows}" for name, rows in receipt["tables"].items())
    labels = ", ".join(receipt["labels"]) or "none"
    print(f"\nwarehouse {receipt['root']} ({receipt['backend']})  {tables}")
    print(f"labels: {labels}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    table = "bench" if args.bench else args.table
    result = run_query(
        _warehouse(args),
        table=table,
        where=parse_where(args.where or ()),
        group_by=(
            tuple(name.strip().replace("-", "_") for name in args.group_by.split(",") if name.strip())
            if args.group_by is not None
            else None
        ),
        metrics=(
            tuple(name.strip().replace("-", "_") for name in args.metrics.split(",") if name.strip())
            if args.metrics is not None
            else None
        ),
        aggs=tuple(name.strip() for name in args.agg.split(",") if name.strip()),
    )
    print(render_rows(result.headers, result.rows, args.format))
    if args.format == "table":
        print(
            f"\n{len(result.rows)} group(s) over {result.matched_rows} of "
            f"{result.total_rows} {table} row(s)"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    headers, rows = build_comparison_report(
        _warehouse(args),
        where=parse_where(args.where or ()),
        baseline_policy=args.baseline_policy,
    )
    print(render_rows(headers, rows, args.format))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    if args.bench_floor:
        floors = tuple(parse_bench_floor(text) for text in args.bench_floor)
        floor_report = run_bench_floor_eval(_warehouse(args), floors)
        if args.format == "table":
            print(floor_report.format())
        else:
            print(
                render_rows(
                    BENCH_FLOOR_HEADERS,
                    [c.as_row() for c in floor_report.checks],
                    args.format,
                )
            )
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(floor_report.to_dict(), handle, indent=2, sort_keys=True)
            print(f"\nwrote {args.report}")
        return 0 if floor_report.ok else 1
    if not args.baseline:
        raise ReproError(
            "repro eval needs --baseline (label regression eval) or --bench-floor "
            "(absolute bench floors)"
        )
    suite = (
        tuple(name.strip() for name in args.suite.split(",") if name.strip())
        if args.suite
        else None
    )
    thresholds = (
        tuple(parse_threshold(text) for text in args.threshold) if args.threshold else None
    )
    report = run_regression_eval(
        _warehouse(args),
        baseline=args.baseline,
        candidate=args.candidate,
        suite=suite,
        thresholds=thresholds,
    )
    if args.format == "table":
        print(report.format())
    else:
        print(render_rows(EVAL_HEADERS, [c.as_row() for c in report.comparisons], args.format))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"\nwrote {args.report}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoFL reproduction: declarative FL experiments from the command line.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one experiment spec and print its averaged metrics"
    )
    run_parser.add_argument("--policy", default="autofl", help="selection policy to run")
    _add_scenario_arguments(run_parser)
    _add_store_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="compare several policies on one scenario (normalised table)"
    )
    compare_parser.add_argument(
        "--policies",
        default="fedavg-random,power,performance,autofl",
        help="comma-separated policy line-up",
    )
    compare_parser.add_argument(
        "--baseline", default="fedavg-random", help="policy the rows are normalised to"
    )
    # No --seeds/--no-early-stop: the comparison driver is single-seed, early-stopping.
    _add_scenario_arguments(compare_parser, replication=False)
    _add_format_argument(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a cartesian grid over any axes, with spec-hash caching"
    )
    sweep_parser.add_argument(
        "--axis",
        action="append",
        metavar="NAME=V1,V2,…",
        help=(
            "sweep axis (repeatable); any scenario or experiment field, e.g. "
            "policy=fedavg-random,autofl or setting=S1,S2,S3,S4. "
            f"Default grid: {' '.join(DEFAULT_SWEEP_AXES)}"
        ),
    )
    sweep_parser.add_argument(
        "--executor",
        default="process",
        choices=("serial", "process"),
        help="how cache misses are executed (default: one worker process per core)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes for --executor process"
    )
    _add_scenario_arguments(sweep_parser)
    _add_store_arguments(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    bench_parser = subparsers.add_parser(
        "bench",
        help="performance benchmarks: the round engine, or the result-store backends",
    )
    bench_parser.add_argument(
        "--suite",
        default="roundengine",
        choices=("roundengine", "store"),
        help="what to benchmark (default: scalar vs vectorised round execution)",
    )
    bench_parser.add_argument(
        "--sizes",
        default=",".join(str(size) for size in DEFAULT_BENCH_SIZES),
        help="[roundengine] comma-separated fleet sizes to time",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="[roundengine] timed rounds per path (default: calibrated per fleet size)",
    )
    bench_parser.add_argument(
        "--workload", default="cnn-mnist", help="[roundengine] FL workload name"
    )
    bench_parser.add_argument(
        "--interference",
        default="moderate",
        help="[roundengine] interference scenario during the bench",
    )
    bench_parser.add_argument(
        "--network", default="variable", help="[roundengine] network scenario during the bench"
    )
    bench_parser.add_argument(
        "--replicates",
        type=int,
        default=DEFAULT_BENCH_REPLICATES,
        help="[roundengine] seeds of the replication measurement (0 disables it)",
    )
    bench_parser.add_argument(
        "--replication-rounds",
        type=int,
        default=DEFAULT_REPLICATION_ROUNDS,
        help="[roundengine] rounds each replicate runs in the replication measurement",
    )
    bench_parser.add_argument(
        "--entries",
        type=int,
        default=DEFAULT_STORE_BENCH_ENTRIES,
        help="[store] number of cached specs the stores are loaded with",
    )
    bench_parser.add_argument(
        "--lookups",
        type=int,
        default=DEFAULT_STORE_BENCH_LOOKUPS,
        help="[store] timed spec-hash lookups (half hits, half misses)",
    )
    bench_parser.add_argument("--seed", type=int, default=0, help="base random seed")
    bench_parser.add_argument(
        "--output",
        default=None,
        help=(
            "JSON file the record is written to (default: "
            f"{DEFAULT_BENCH_OUTPUT} or {DEFAULT_STORE_BENCH_OUTPUT} per suite)"
        ),
    )
    bench_parser.add_argument(
        "--warehouse",
        default=str(DEFAULT_WAREHOUSE_ROOT),
        help="warehouse the record is registered in (for: repro query --bench)",
    )
    bench_parser.add_argument(
        "--no-warehouse",
        action="store_true",
        help="write the JSON record only, without registering it in the warehouse",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    submit_parser = subparsers.add_parser(
        "submit", help="enqueue a spec, preset or sweep as a durable job for the service"
    )
    submit_parser.add_argument("--policy", default="autofl", help="selection policy to run")
    submit_parser.add_argument(
        "--axis",
        action="append",
        metavar="NAME=V1,V2,…",
        help="sweep axis (repeatable); submits the expanded grid as one job",
    )
    submit_parser.add_argument(
        "--priority", type=int, default=0, help="queue priority (higher first; default 0)"
    )
    submit_parser.add_argument(
        "--retries", type=int, default=0, help="retry budget after failures (default 0)"
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=None, help="per-job wall-clock timeout in seconds"
    )
    submit_parser.add_argument(
        "--validate",
        dest="validate_results",
        action="store_true",
        help="audit every executed round against the simulator invariants",
    )
    submit_parser.add_argument("--label", default=None, help="human-readable job label")
    submit_parser.add_argument(
        "--lane",
        default=None,
        metavar="NAME",
        help=(
            "fair-scheduling lane for this job (defaults to a hash of the "
            "submitting user@host, so each submitter gets their own lane)"
        ),
    )
    submit_parser.add_argument(
        "--weight",
        type=int,
        default=1,
        help="relative claim share of the job's lane under contention (default 1)",
    )
    _add_scenario_arguments(submit_parser)
    _add_service_arguments(submit_parser)
    submit_parser.set_defaults(func=_cmd_submit)

    serve_parser = subparsers.add_parser(
        "serve", help="run a scheduler worker pool against the shared queue and store"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="worker threads in this serve process"
    )
    serve_parser.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty instead of serving forever",
    )
    serve_parser.add_argument(
        "--poll", type=float, default=DEFAULT_POLL_S, help="idle poll interval in seconds"
    )
    serve_parser.add_argument(
        "--lease",
        type=float,
        default=DEFAULT_LEASE_S,
        help="claim lease duration in seconds (crashed workers release after this)",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="do not echo events to stdout"
    )
    serve_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve the Prometheus text exposition on this port "
            "(0 binds an ephemeral port; implies --telemetry)"
        ),
    )
    serve_parser.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "record metrics and spans while serving; the scheduler drops a "
            f"{METRICS_FILENAME} snapshot into the service root after every job"
        ),
    )
    serve_parser.add_argument(
        "--trace-file",
        default=None,
        metavar="JSONL",
        help=(
            "append finished spans to this JSONL file (implies --telemetry; "
            "convert with: repro trace --spans JSONL)"
        ),
    )
    serve_parser.add_argument(
        "--store",
        default=str(DEFAULT_SQLITE_STORE_PATH),
        help="result store shared by the worker pool",
    )
    serve_parser.add_argument(
        "--store-shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "open --store as a directory of N SQLite shards so many serve hosts "
            "can share it (the shard count is pinned on first use)"
        ),
    )
    serve_parser.add_argument(
        "--drain-grace",
        type=float,
        default=DEFAULT_DRAIN_GRACE_S,
        metavar="SECONDS",
        help=(
            "on SIGTERM/SIGINT, let each in-flight grid point run this long before "
            f"it is requeued without spending a retry (default {DEFAULT_DRAIN_GRACE_S:g})"
        ),
    )
    serve_parser.add_argument(
        "--events-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve the event plane on this port: GET /events long-poll and "
            "/events/stream SSE (0 binds an ephemeral port)"
        ),
    )
    serve_parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission control: refuse submissions once N jobs are queued "
            "(persisted in the queue root so submitters enforce it; 0 clears)"
        ),
    )
    serve_parser.add_argument(
        "--shed-policy",
        default="reject",
        choices=SHED_POLICIES,
        help=(
            "what a saturated queue does with a new submission: refuse it, or shed "
            "a lower-priority queued job to make room (default: reject)"
        ),
    )
    serve_parser.add_argument(
        "--max-store-p95",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "admission control: also refuse submissions while the store's p95 "
            "operation latency (from the metrics snapshot) exceeds this"
        ),
    )
    serve_parser.add_argument(
        "--no-webhooks",
        action="store_true",
        help="do not run the webhook dispatcher in this serve process",
    )
    _add_service_arguments(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    status_parser = subparsers.add_parser(
        "status", help="job table (or one job's detail) from the queue directory"
    )
    status_parser.add_argument(
        "job_id", nargs="?", default=None, help="show one job in full (JSON, with artifacts)"
    )
    status_parser.add_argument(
        "--json",
        action="store_true",
        help="full machine-readable dump (counts + complete job payloads)",
    )
    status_parser.add_argument(
        "--by-lane",
        action="store_true",
        help="per-lane summary (weight, depth, state counts, oldest queued wait)",
    )
    status_parser.add_argument(
        "--store",
        default=str(DEFAULT_SQLITE_STORE_PATH),
        help="store queried for job artifacts in single-job mode",
    )
    _add_service_arguments(status_parser)
    _add_format_argument(status_parser)
    status_parser.set_defaults(func=_cmd_status)

    watch_parser = subparsers.add_parser(
        "watch", help="print the service event stream (like tail on the event log)"
    )
    watch_parser.add_argument(
        "-f", "--follow", action="store_true", help="keep following the log as it grows"
    )
    watch_parser.add_argument("--job", default=None, help="only events of this job id")
    watch_parser.add_argument(
        "--http",
        default=None,
        metavar="URL",
        help=(
            "consume from a serve --events-port long-poll endpoint instead of the "
            "local file (e.g. http://127.0.0.1:9200)"
        ),
    )
    watch_parser.add_argument(
        "--cursor",
        type=int,
        default=0,
        metavar="N",
        help="resume after this durable cursor in --http mode (default 0: from the top)",
    )
    _add_service_arguments(watch_parser)
    watch_parser.set_defaults(func=_cmd_watch)

    events_parser = subparsers.add_parser(
        "events", help="subscribe to the event plane (durable cursors, JSON lines)"
    )
    events_sub = events_parser.add_subparsers(dest="events_action", required=True)
    sub_parser = events_sub.add_parser(
        "sub",
        help=(
            "print matching events as JSON lines, each carrying its durable "
            "cursor; resume any time with --cursor"
        ),
    )
    sub_parser.add_argument(
        "--cursor",
        type=int,
        default=0,
        metavar="N",
        help="start after this durable cursor (default 0: replay everything)",
    )
    sub_parser.add_argument("--job", default=None, help="only events of this job id")
    sub_parser.add_argument(
        "--event",
        action="append",
        default=None,
        metavar="TYPE",
        help="only events of this type (repeatable, e.g. --event job_done)",
    )
    sub_parser.add_argument(
        "--http",
        default=None,
        metavar="URL",
        help="consume from a serve --events-port endpoint instead of the local file",
    )
    sub_parser.add_argument(
        "-f", "--follow", action="store_true", help="keep waiting for new events"
    )
    sub_parser.add_argument(
        "--limit", type=int, default=None, metavar="N", help="stop after N events"
    )
    _add_service_arguments(sub_parser)
    sub_parser.set_defaults(func=_cmd_events_sub)

    webhooks_parser = subparsers.add_parser(
        "webhooks", help="manage signed HTTP event callbacks for this service root"
    )
    webhooks_sub = webhooks_parser.add_subparsers(dest="webhooks_action", required=True)
    wh_add = webhooks_sub.add_parser(
        "add", help="register a callback URL (prints its signing secret once)"
    )
    wh_add.add_argument("url", help="http(s) endpoint events are POSTed to")
    wh_add.add_argument(
        "--event",
        action="append",
        default=None,
        metavar="TYPE",
        help="only deliver events of this type (repeatable; default: all)",
    )
    wh_add.add_argument(
        "--secret",
        default=None,
        help="HMAC-SHA256 signing secret (default: generated and printed)",
    )
    _add_service_arguments(wh_add)
    wh_add.set_defaults(func=_cmd_webhooks)
    wh_list = webhooks_sub.add_parser("list", help="list registered webhooks")
    _add_service_arguments(wh_list)
    wh_list.set_defaults(func=_cmd_webhooks)
    wh_rm = webhooks_sub.add_parser("rm", help="remove a webhook by id")
    wh_rm.add_argument("hook_id", help="webhook id (see: repro webhooks list)")
    _add_service_arguments(wh_rm)
    wh_rm.set_defaults(func=_cmd_webhooks)
    wh_test = webhooks_sub.add_parser(
        "test", help="send one signed webhook_test delivery to a hook now"
    )
    wh_test.add_argument("hook_id", help="webhook id (see: repro webhooks list)")
    _add_service_arguments(wh_test)
    wh_test.set_defaults(func=_cmd_webhooks)

    cancel_parser = subparsers.add_parser(
        "cancel", help="cancel a queued job now, or a running job between grid points"
    )
    cancel_parser.add_argument("job_id", help="job id to cancel (see: python -m repro status)")
    _add_service_arguments(cancel_parser)
    cancel_parser.set_defaults(func=_cmd_cancel)

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="dump the telemetry snapshot plus live queue gauges",
    )
    metrics_parser.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help=f"snapshot file to read (default: <root>/{METRICS_FILENAME})",
    )
    metrics_parser.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text exposition instead of a table",
    )
    _add_service_arguments(metrics_parser)
    _add_format_argument(metrics_parser)
    metrics_parser.set_defaults(func=_cmd_metrics)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run one traced job end to end and write a Chrome-trace JSON",
    )
    trace_parser.add_argument(
        "--output",
        default="trace.json",
        help="Chrome-trace file to write (default: trace.json)",
    )
    trace_parser.add_argument(
        "--spans",
        default=None,
        metavar="JSONL",
        help=(
            "convert an existing span sink (e.g. from serve --trace-file) "
            "instead of running a fresh traced job"
        ),
    )
    trace_parser.add_argument(
        "--scenario",
        default=None,
        metavar="PRESET",
        help="scenario preset the traced job runs (default: a fast 50-device job)",
    )
    trace_parser.add_argument(
        "--policy", default="autofl", help="selection policy of the traced job"
    )
    trace_parser.add_argument(
        "--devices", type=int, default=None, help="fleet size of the traced job"
    )
    trace_parser.add_argument(
        "--rounds", type=int, default=None, help="rounds of the traced job (default: 8)"
    )
    trace_parser.set_defaults(func=_cmd_trace)

    validate_parser = subparsers.add_parser(
        "validate",
        help="golden-trajectory regression and invariant validation",
    )
    validate_sub = validate_parser.add_subparsers(dest="mode", required=True)
    default_presets = ",".join(GOLDEN_PRESETS)

    record_parser = validate_sub.add_parser(
        "record", help="record golden trajectories for scenario presets"
    )
    record_parser.add_argument(
        "--presets",
        default=default_presets,
        help=f"comma-separated scenario presets (default: {default_presets})",
    )
    record_parser.add_argument(
        "--dir", default=str(DEFAULT_GOLDEN_DIR), help="golden store directory"
    )
    record_parser.add_argument(
        "--rounds",
        type=int,
        default=GOLDEN_MAX_ROUNDS,
        help=f"rounds recorded per golden (default: {GOLDEN_MAX_ROUNDS})",
    )
    record_parser.set_defaults(func=_cmd_validate_record)

    check_parser = validate_sub.add_parser(
        "check",
        help="re-run recorded goldens and fail (exit 1) on any bit-level drift",
    )
    check_parser.add_argument(
        "--presets",
        default=default_presets,
        help=f"comma-separated scenario presets (default: {default_presets})",
    )
    check_parser.add_argument(
        "--dir", default=str(DEFAULT_GOLDEN_DIR), help="golden store directory"
    )
    check_parser.add_argument(
        "--report", default=None, help="write the drift report to this JSON file"
    )
    check_parser.set_defaults(func=_cmd_validate_check)

    fuzz_parser = validate_sub.add_parser(
        "fuzz",
        help="run invariant-audited randomised scenarios (exit 1 on any violation)",
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=None, help="number of scenarios to fuzz"
    )
    fuzz_parser.add_argument(
        "--budget", type=float, default=None, help="time budget in seconds"
    )
    fuzz_parser.add_argument("--seed", type=int, default=0, help="master fuzz seed")
    fuzz_parser.add_argument(
        "--report", default=None, help="write the fuzz report to this JSON file"
    )
    fuzz_parser.set_defaults(func=_cmd_validate_fuzz)

    ingest_parser = subparsers.add_parser(
        "ingest", help="load results, goldens and bench records into the warehouse"
    )
    ingest_parser.add_argument(
        "--store",
        nargs="?",
        const=str(DEFAULT_SQLITE_STORE_PATH),
        default=None,
        metavar="PATH",
        help=(
            "ingest a result store (SQLite or legacy .jsonl; "
            f"default path: {DEFAULT_SQLITE_STORE_PATH})"
        ),
    )
    ingest_parser.add_argument(
        "--goldens",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "ingest recorded golden trajectories "
            f"(default directory: {DEFAULT_GOLDEN_DIR})"
        ),
    )
    ingest_parser.add_argument(
        "--bench",
        nargs="?",
        const=".",
        default=None,
        metavar="PATH",
        help="ingest BENCH_*.json records (a directory to glob, or one file)",
    )
    ingest_parser.add_argument(
        "--metrics",
        nargs="?",
        const=str(Path(DEFAULT_SERVICE_ROOT) / METRICS_FILENAME),
        default=None,
        metavar="PATH",
        help=(
            "ingest a telemetry metrics snapshot into the metrics table "
            f"(default path: {Path(DEFAULT_SERVICE_ROOT) / METRICS_FILENAME})"
        ),
    )
    ingest_parser.add_argument(
        "--label",
        default="default",
        help="ingest label the rows are tagged with (evals diff two labels)",
    )
    _add_warehouse_arguments(ingest_parser)
    ingest_parser.set_defaults(func=_cmd_ingest)

    query_parser = subparsers.add_parser(
        "query", help="filter + group-by aggregation over the ingested warehouse"
    )
    query_parser.add_argument(
        "--table",
        default="runs",
        choices=("rounds", "runs", "bench", "metrics"),
        help="warehouse table to query (default: per-seed run summaries)",
    )
    query_parser.add_argument(
        "--bench",
        action="store_true",
        help="shorthand for --table bench (rounds/s trajectories across commits)",
    )
    query_parser.add_argument(
        "--where",
        action="append",
        metavar="COL=V1,V2,…",
        help="equality filter (repeatable; AND across flags, OR within one list)",
    )
    query_parser.add_argument(
        "--group-by",
        default=None,
        metavar="COL1,COL2,…",
        help="grouping columns (default per table, e.g. label,preset,policy)",
    )
    query_parser.add_argument(
        "--metrics",
        default=None,
        metavar="COL1,COL2,…",
        help="numeric columns to aggregate (default per table)",
    )
    query_parser.add_argument(
        "--agg",
        default="mean",
        metavar="AGG1,AGG2,…",
        help=f"aggregations per metric: any of {', '.join(AGGREGATIONS)}",
    )
    _add_warehouse_arguments(query_parser)
    _add_format_argument(query_parser)
    query_parser.set_defaults(func=_cmd_query)

    report_parser = subparsers.add_parser(
        "report",
        help="cross-run comparison report (policies normalised per scenario)",
    )
    report_parser.add_argument(
        "--where",
        action="append",
        metavar="COL=V1,V2,…",
        help="equality filter over the runs table (repeatable)",
    )
    report_parser.add_argument(
        "--baseline-policy",
        default="fedavg-random",
        help="policy each scenario's energy/time columns are normalised to",
    )
    _add_warehouse_arguments(report_parser)
    _add_format_argument(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    eval_parser = subparsers.add_parser(
        "eval",
        help="regression eval: diff a candidate ingest against a baseline label",
    )
    eval_parser.add_argument(
        "--baseline",
        default=None,
        help="ingest label of the known-good result set (required unless --bench-floor)",
    )
    eval_parser.add_argument(
        "--bench-floor",
        action="append",
        metavar="METRIC@DEVICES=VALUE",
        help=(
            "absolute floor on an ingested bench measurement (repeatable), e.g. "
            "batch_rounds_per_s@10000=1500 or speedup@replication=4; checks the "
            "latest ingested row and needs no baseline label"
        ),
    )
    eval_parser.add_argument(
        "--candidate",
        default="default",
        help="ingest label being scored (default: the default ingest label)",
    )
    eval_parser.add_argument(
        "--suite",
        default=None,
        metavar="NAME1,NAME2,…",
        help=(
            "restrict the eval to these scenarios (preset names or "
            "workload/setting/N<devices>); default: every baseline scenario"
        ),
    )
    eval_parser.add_argument(
        "--threshold",
        action="append",
        metavar="METRIC=PCT",
        help=(
            "allowed regression per metric, in percent (repeatable); a leading + "
            "marks higher-is-better, e.g. final_accuracy=+1 global_energy_j=5"
        ),
    )
    eval_parser.add_argument(
        "--report", default=None, help="write the full eval report to this JSON file"
    )
    _add_warehouse_arguments(eval_parser)
    _add_format_argument(eval_parser)
    eval_parser.set_defaults(func=_cmd_eval)

    list_parser = subparsers.add_parser(
        "list", help="list a registry (policies, workloads, aggregators, …)"
    )
    list_parser.add_argument(
        "axis",
        nargs="?",
        default=None,
        help=f"registry to list ({', '.join(REGISTRIES)}); default: all",
    )
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except QueueSaturated as exc:
        # Distinct exit code so submitters can tell "back off and retry" (3) from
        # plain usage errors (2).
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro metrics | head``) closed the pipe;
        # detach stdout so the interpreter's shutdown flush doesn't re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
