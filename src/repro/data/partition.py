"""Partitioning a dataset across the device population.

Paper Section 5.2, "Data Distribution": four levels of heterogeneity are emulated —
Ideal IID, Non-IID(50 %), Non-IID(75 %) and Non-IID(100 %).  In the ``Non-IID(M%)`` setting,
M % of the devices receive data whose class proportions follow a Dirichlet distribution with
concentration 0.1 (each class concentrated on few devices) while the remaining devices hold
IID samples covering every class.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.exceptions import DataError
from repro.registry import DATA_DISTRIBUTIONS

#: Dirichlet concentration parameter used by the paper for non-IID devices.
DIRICHLET_CONCENTRATION = 0.1


class DataDistribution(enum.Enum):
    """The paper's four data-heterogeneity scenarios."""

    IID = "iid"
    NON_IID_50 = "non_iid_50"
    NON_IID_75 = "non_iid_75"
    NON_IID_100 = "non_iid_100"

    @property
    def non_iid_fraction(self) -> float:
        """Fraction of devices holding non-IID data under this scenario."""
        return {
            DataDistribution.IID: 0.0,
            DataDistribution.NON_IID_50: 0.5,
            DataDistribution.NON_IID_75: 0.75,
            DataDistribution.NON_IID_100: 1.0,
        }[self]

    @classmethod
    def from_name(cls, name: "str | DataDistribution") -> "DataDistribution":
        """Coerce a scenario name (e.g. ``"non_iid_75"`` or ``"iid"``) into an enum member."""
        if isinstance(name, cls):
            return name
        return DATA_DISTRIBUTIONS.create(name)  # type: ignore[return-value]


for _member in DataDistribution:
    DATA_DISTRIBUTIONS.add(
        _member.value,
        lambda _choice=_member: _choice,
        summary=(
            "Every device holds IID data covering all classes."
            if _member is DataDistribution.IID
            else f"{_member.non_iid_fraction:.0%} of devices hold Dirichlet non-IID data."
        ),
    )


def _validate_inputs(labels: np.ndarray, num_devices: int) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise DataError("labels must be a 1-D array")
    if len(labels) == 0:
        raise DataError("labels must be non-empty")
    if num_devices < 1:
        raise DataError("num_devices must be >= 1")
    return labels


def iid_partition(
    labels: np.ndarray, num_devices: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Split sample indices evenly and randomly across devices (Ideal IID).

    Every device receives a uniformly random subset, so its class proportions match the
    population's in expectation.
    """
    labels = _validate_inputs(labels, num_devices)
    order = rng.permutation(len(labels))
    return [np.sort(chunk) for chunk in np.array_split(order, num_devices)]


def dirichlet_partition(
    labels: np.ndarray,
    num_devices: int,
    rng: np.random.Generator,
    concentration: float = DIRICHLET_CONCENTRATION,
) -> list[np.ndarray]:
    """Split sample indices with Dirichlet-distributed class proportions per class.

    For every class, the class's samples are divided across devices according to a draw
    from ``Dirichlet(concentration)``; a small concentration concentrates each class onto a
    handful of devices, which is exactly the paper's non-IID construction.
    """
    labels = _validate_inputs(labels, num_devices)
    if concentration <= 0:
        raise DataError("concentration must be positive")
    shards: list[list[int]] = [[] for _ in range(num_devices)]
    for class_id in np.unique(labels):
        class_indices = np.flatnonzero(labels == class_id)
        class_indices = rng.permutation(class_indices)
        proportions = rng.dirichlet(np.full(num_devices, concentration))
        boundaries = (np.cumsum(proportions)[:-1] * len(class_indices)).astype(int)
        for device_id, chunk in enumerate(np.split(class_indices, boundaries)):
            shards[device_id].extend(int(index) for index in chunk)
    return [np.sort(np.asarray(shard, dtype=np.int64)) for shard in shards]


def mixed_partition(
    labels: np.ndarray,
    num_devices: int,
    non_iid_fraction: float,
    rng: np.random.Generator,
    concentration: float = DIRICHLET_CONCENTRATION,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Build the paper's ``Non-IID(M%)`` split.

    ``non_iid_fraction`` of the devices (chosen uniformly at random) receive
    Dirichlet-concentrated data; the rest receive IID data.  Returns the per-device index
    arrays plus a boolean mask marking which devices are non-IID.
    """
    labels = _validate_inputs(labels, num_devices)
    if not 0.0 <= non_iid_fraction <= 1.0:
        raise DataError("non_iid_fraction must be in [0, 1]")
    num_non_iid = int(round(non_iid_fraction * num_devices))
    non_iid_mask = np.zeros(num_devices, dtype=bool)
    if num_non_iid > 0:
        non_iid_devices = rng.choice(num_devices, size=num_non_iid, replace=False)
        non_iid_mask[non_iid_devices] = True

    # Split the sample pool proportionally between the IID and non-IID device groups so all
    # devices end up with comparable shard sizes.
    order = rng.permutation(len(labels))
    split_point = int(round(len(labels) * (num_non_iid / num_devices)))
    non_iid_pool, iid_pool = order[:split_point], order[split_point:]

    shards: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * num_devices
    iid_device_ids = np.flatnonzero(~non_iid_mask)
    non_iid_device_ids = np.flatnonzero(non_iid_mask)

    if len(iid_device_ids) > 0 and len(iid_pool) > 0:
        iid_shards = iid_partition(labels[iid_pool], len(iid_device_ids), rng)
        for device_id, local_indices in zip(iid_device_ids, iid_shards):
            shards[device_id] = np.sort(iid_pool[local_indices])
    if len(non_iid_device_ids) > 0 and len(non_iid_pool) > 0:
        non_iid_shards = dirichlet_partition(
            labels[non_iid_pool], len(non_iid_device_ids), rng, concentration
        )
        for device_id, local_indices in zip(non_iid_device_ids, non_iid_shards):
            shards[device_id] = np.sort(non_iid_pool[local_indices])
    return shards, non_iid_mask


def class_histogram(labels: np.ndarray, indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Count of samples per class within ``indices``."""
    if num_classes < 1:
        raise DataError("num_classes must be >= 1")
    histogram = np.zeros(num_classes, dtype=np.int64)
    if len(indices) == 0:
        return histogram
    values, counts = np.unique(np.asarray(labels)[indices], return_counts=True)
    histogram[values.astype(np.int64)] = counts
    return histogram
