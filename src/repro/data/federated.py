"""Federated dataset: a global dataset plus per-device shards and class statistics.

The AutoFL state ``S_Data`` (paper Table 1) is "the number of data classes each device has
for this round"; the per-device class statistics required to compute it live here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import SyntheticClassificationDataset, SyntheticSequenceDataset
from repro.data.partition import (
    DataDistribution,
    class_histogram,
    mixed_partition,
)
from repro.exceptions import DataError

Dataset = SyntheticClassificationDataset | SyntheticSequenceDataset


@dataclass(frozen=True)
class DeviceShard:
    """The local training shard of one device."""

    device_id: int
    indices: np.ndarray
    class_counts: np.ndarray
    is_non_iid: bool

    @property
    def num_samples(self) -> int:
        """Number of local training samples."""
        return int(len(self.indices))

    @property
    def num_classes_present(self) -> int:
        """Number of distinct classes with at least one local sample."""
        return int(np.count_nonzero(self.class_counts))

    @property
    def class_fraction(self) -> float:
        """Fraction of the global label space covered locally (drives ``S_Data``)."""
        total_classes = len(self.class_counts)
        if total_classes == 0:
            return 0.0
        return self.num_classes_present / total_classes

    def balance_score(self) -> float:
        """How close the local class mix is to uniform, in ``[0, 1]``.

        Defined as the normalised entropy of the local class histogram; 1.0 means a
        perfectly balanced IID-like shard, values near 0 mean the shard is concentrated on
        very few classes.  This is the per-device "data quality" signal consumed by the
        surrogate convergence model.
        """
        total = self.class_counts.sum()
        if total == 0:
            return 0.0
        probabilities = self.class_counts[self.class_counts > 0] / total
        entropy = float(-(probabilities * np.log(probabilities)).sum())
        max_entropy = float(np.log(len(self.class_counts)))
        if max_entropy == 0.0:
            return 1.0
        return entropy / max_entropy


class FederatedDataset:
    """A dataset partitioned across a device population."""

    def __init__(self, dataset: Dataset, shards: list[DeviceShard]) -> None:
        if not shards:
            raise DataError("a federated dataset needs at least one shard")
        self._dataset = dataset
        self._shards = {shard.device_id: shard for shard in shards}
        if len(self._shards) != len(shards):
            raise DataError("shard device ids must be unique")

    @property
    def dataset(self) -> Dataset:
        """The underlying global dataset."""
        return self._dataset

    @property
    def num_devices(self) -> int:
        """Number of devices holding a shard."""
        return len(self._shards)

    @property
    def num_classes(self) -> int:
        """Number of classes in the global dataset."""
        return self._dataset.num_classes

    @property
    def device_ids(self) -> list[int]:
        """Sorted device ids holding shards."""
        return sorted(self._shards)

    def shard(self, device_id: int) -> DeviceShard:
        """Shard belonging to a device."""
        try:
            return self._shards[device_id]
        except KeyError as exc:
            raise DataError(f"no shard for device {device_id}") from exc

    def local_dataset(self, device_id: int) -> Dataset:
        """Materialise the local dataset of a device."""
        return self._dataset.subset(self.shard(device_id).indices)

    def non_iid_device_ids(self) -> list[int]:
        """Device ids flagged as holding non-IID data."""
        return sorted(
            device_id for device_id, shard in self._shards.items() if shard.is_non_iid
        )

    @classmethod
    def partition(
        cls,
        dataset: Dataset,
        num_devices: int,
        distribution: DataDistribution | str = DataDistribution.IID,
        rng: np.random.Generator | None = None,
        device_ids: list[int] | None = None,
    ) -> "FederatedDataset":
        """Partition ``dataset`` across ``num_devices`` devices for a heterogeneity scenario."""
        distribution = DataDistribution.from_name(distribution)
        rng = rng if rng is not None else np.random.default_rng(0)
        if device_ids is None:
            device_ids = list(range(num_devices))
        if len(device_ids) != num_devices:
            raise DataError("device_ids length must equal num_devices")
        shards_indices, non_iid_mask = mixed_partition(
            dataset.labels, num_devices, distribution.non_iid_fraction, rng
        )
        shards = [
            DeviceShard(
                device_id=device_id,
                indices=indices,
                class_counts=class_histogram(dataset.labels, indices, dataset.num_classes),
                is_non_iid=bool(non_iid_mask[position]),
            )
            for position, (device_id, indices) in enumerate(zip(device_ids, shards_indices))
        ]
        return cls(dataset, shards)
