"""Synthetic stand-ins for the paper's datasets.

The generators below produce datasets with the same label structure as MNIST / ImageNet /
Shakespeare but with synthetic, learnable content:

* **Image datasets** draw each class from a class-specific Gaussian blob over pixel space
  with class-dependent spatial patterns, so a small CNN can actually separate them.
* **The character dataset** generates text from a class of character-level Markov chains,
  so an LSTM genuinely benefits from temporal context when predicting the next character.

This keeps the full training code path (forward, backward, aggregation, accuracy) honest
while remaining dependency-free and fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class SyntheticClassificationDataset:
    """An in-memory image-classification dataset.

    Attributes
    ----------
    features:
        Array of shape ``(num_samples, channels, height, width)`` with values in ``[0, 1]``.
    labels:
        Integer class labels of shape ``(num_samples,)``.
    num_classes:
        Number of distinct classes.
    name:
        Human-readable dataset name.
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str

    def __post_init__(self) -> None:
        if self.features.ndim != 4:
            raise DataError(
                f"{self.name}: features must have shape (N, C, H, W), got {self.features.shape}"
            )
        if self.labels.ndim != 1 or len(self.labels) != len(self.features):
            raise DataError(f"{self.name}: labels must be 1-D and aligned with features")
        if self.num_classes < 2:
            raise DataError(f"{self.name}: num_classes must be >= 2")
        if self.labels.min() < 0 or self.labels.max() >= self.num_classes:
            raise DataError(f"{self.name}: labels out of range [0, {self.num_classes})")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def sample_shape(self) -> tuple[int, ...]:
        """Shape of a single sample (channels, height, width)."""
        return tuple(self.features.shape[1:])

    def subset(self, indices: np.ndarray) -> "SyntheticClassificationDataset":
        """Return a view-like subset dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return SyntheticClassificationDataset(
            features=self.features[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=self.name,
        )


@dataclass(frozen=True)
class SyntheticSequenceDataset:
    """An in-memory next-token-prediction dataset (Shakespeare stand-in).

    Attributes
    ----------
    sequences:
        Integer token sequences of shape ``(num_samples, sequence_length)``.
    labels:
        Next-token targets of shape ``(num_samples,)``.
    num_classes:
        Vocabulary size.
    """

    sequences: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str

    def __post_init__(self) -> None:
        if self.sequences.ndim != 2:
            raise DataError(f"{self.name}: sequences must be 2-D, got {self.sequences.shape}")
        if self.labels.ndim != 1 or len(self.labels) != len(self.sequences):
            raise DataError(f"{self.name}: labels must be 1-D and aligned with sequences")
        if self.num_classes < 2:
            raise DataError(f"{self.name}: num_classes must be >= 2")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def sequence_length(self) -> int:
        """Length of each input sequence."""
        return int(self.sequences.shape[1])

    @property
    def features(self) -> np.ndarray:
        """Alias so sequence datasets can be consumed like classification datasets."""
        return self.sequences

    def subset(self, indices: np.ndarray) -> "SyntheticSequenceDataset":
        """Return a subset dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return SyntheticSequenceDataset(
            sequences=self.sequences[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=self.name,
        )


def _class_image(
    rng: np.random.Generator,
    label: int,
    num_classes: int,
    channels: int,
    height: int,
    width: int,
) -> np.ndarray:
    """Draw one image for ``label``: a class-specific spatial pattern plus pixel noise."""
    yy, xx = np.meshgrid(np.linspace(0, 1, height), np.linspace(0, 1, width), indexing="ij")
    phase = 2.0 * np.pi * label / num_classes
    pattern = 0.5 + 0.5 * np.sin(2.0 * np.pi * (xx + yy) * (1 + label % 3) + phase)
    image = np.empty((channels, height, width), dtype=np.float64)
    for channel in range(channels):
        shift = channel / max(1, channels)
        noise = rng.normal(0.0, 0.15, size=(height, width))
        image[channel] = np.clip(pattern * (0.6 + 0.4 * shift) + noise, 0.0, 1.0)
    return image


def make_synthetic_mnist(
    num_samples: int = 2000, seed: int = 0
) -> SyntheticClassificationDataset:
    """Synthetic MNIST stand-in: 10 classes of 1x28x28 images."""
    return _make_image_dataset("synthetic-mnist", num_samples, 10, 1, 28, 28, seed)


def make_synthetic_imagenet(
    num_samples: int = 2000, num_classes: int = 100, seed: int = 0
) -> SyntheticClassificationDataset:
    """Synthetic ImageNet stand-in: ``num_classes`` classes of 3x32x32 images.

    The spatial resolution is reduced from 224x224 to 32x32 so that from-scratch numpy
    training stays tractable; the FLOP/byte accounting used by the energy model uses the
    full-resolution MobileNet profile (see :mod:`repro.nn.workloads`), so the reduction does
    not distort the systems results.
    """
    return _make_image_dataset("synthetic-imagenet", num_samples, num_classes, 3, 32, 32, seed)


def _make_image_dataset(
    name: str,
    num_samples: int,
    num_classes: int,
    channels: int,
    height: int,
    width: int,
    seed: int,
) -> SyntheticClassificationDataset:
    if num_samples < num_classes:
        raise DataError(f"{name}: need at least one sample per class")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_samples)
    # Guarantee every class appears at least once so partitioners always have full support.
    labels[:num_classes] = np.arange(num_classes)
    rng.shuffle(labels)
    features = np.stack(
        [
            _class_image(rng, int(label), num_classes, channels, height, width)
            for label in labels
        ]
    )
    return SyntheticClassificationDataset(
        features=features, labels=labels.astype(np.int64), num_classes=num_classes, name=name
    )


def make_synthetic_shakespeare(
    num_samples: int = 2000,
    sequence_length: int = 20,
    vocab_size: int = 40,
    seed: int = 0,
) -> SyntheticSequenceDataset:
    """Synthetic Shakespeare stand-in: next-character prediction over a Markov corpus.

    A random (but fixed per seed) character-level Markov chain with strong transition
    structure generates the corpus; windows of ``sequence_length`` characters are the inputs
    and the following character is the target.  The class label of a window — used for
    non-IID partitioning — is its target character, mirroring how next-character prediction
    data is skewed per user in the real federated Shakespeare split.
    """
    if vocab_size < 2 or sequence_length < 2:
        raise DataError("vocab_size and sequence_length must each be >= 2")
    if num_samples < 1:
        raise DataError("num_samples must be >= 1")
    rng = np.random.default_rng(seed)
    # Sparse, peaked transition matrix: each character strongly prefers a few successors.
    transitions = rng.dirichlet(np.full(vocab_size, 0.1), size=vocab_size)
    corpus_length = num_samples + sequence_length + 1
    corpus = np.empty(corpus_length, dtype=np.int64)
    corpus[0] = rng.integers(0, vocab_size)
    for position in range(1, corpus_length):
        corpus[position] = rng.choice(vocab_size, p=transitions[corpus[position - 1]])
    sequences = np.stack(
        [corpus[start : start + sequence_length] for start in range(num_samples)]
    )
    labels = corpus[sequence_length : sequence_length + num_samples]
    return SyntheticSequenceDataset(
        sequences=sequences,
        labels=labels,
        num_classes=vocab_size,
        name="synthetic-shakespeare",
    )
