"""Federated data substrate: synthetic datasets, IID / non-IID partitioning, per-device shards.

The paper evaluates on MNIST, Shakespeare and ImageNet; since those datasets are not
available offline, structurally equivalent synthetic datasets are generated (same number of
classes, comparable sample shapes, learnable class structure) and partitioned across the
device population exactly the way the paper describes (Section 5.2): IID, or ``Non-IID(M%)``
where M % of devices receive Dirichlet(0.1)-concentrated class mixtures.
"""

from repro.data.datasets import (
    SyntheticClassificationDataset,
    SyntheticSequenceDataset,
    make_synthetic_imagenet,
    make_synthetic_mnist,
    make_synthetic_shakespeare,
)
from repro.data.federated import DeviceShard, FederatedDataset
from repro.data.partition import (
    DataDistribution,
    dirichlet_partition,
    iid_partition,
    mixed_partition,
)

__all__ = [
    "DataDistribution",
    "DeviceShard",
    "FederatedDataset",
    "SyntheticClassificationDataset",
    "SyntheticSequenceDataset",
    "dirichlet_partition",
    "iid_partition",
    "make_synthetic_imagenet",
    "make_synthetic_mnist",
    "make_synthetic_shakespeare",
    "mixed_partition",
]
