"""Per-device data profiles: the statistical view of local data used by the simulator.

Running 200-device, 1000-round experiments does not require materialising every device's
raw samples — what the simulator, the surrogate convergence model and the AutoFL state
features need per device is (a) how many local samples it holds, (b) how many of the global
classes it covers and (c) how balanced its local class mix is.  A
:class:`DeviceDataProfile` captures exactly that, and can be derived either from a real
:class:`~repro.data.federated.FederatedDataset` or synthesised directly from a
heterogeneity scenario (the paper's Ideal IID / Non-IID(M%) settings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.federated import FederatedDataset
from repro.data.partition import DIRICHLET_CONCENTRATION, DataDistribution
from repro.exceptions import DataError


@dataclass(frozen=True)
class DeviceDataProfile:
    """Statistical summary of one device's local training data."""

    device_id: int
    num_samples: int
    class_fraction: float
    balance_score: float
    is_non_iid: bool

    def __post_init__(self) -> None:
        if self.num_samples < 0:
            raise DataError("num_samples must be non-negative")
        if not 0.0 <= self.class_fraction <= 1.0:
            raise DataError("class_fraction must be in [0, 1]")
        if not 0.0 <= self.balance_score <= 1.0:
            raise DataError("balance_score must be in [0, 1]")

    @property
    def data_quality(self) -> float:
        """Scalar "usefulness" of this device's data for global convergence, in ``[0, 1]``.

        Combines label-space coverage and balance; IID devices score close to 1.0 while
        Dirichlet(0.1)-concentrated devices score far lower.  This is the per-device signal
        the surrogate convergence model aggregates each round.
        """
        return 0.5 * self.class_fraction + 0.5 * self.balance_score


def profiles_from_federated_dataset(dataset: FederatedDataset) -> dict[int, DeviceDataProfile]:
    """Derive per-device profiles from a materialised federated dataset."""
    profiles: dict[int, DeviceDataProfile] = {}
    for device_id in dataset.device_ids:
        shard = dataset.shard(device_id)
        profiles[device_id] = DeviceDataProfile(
            device_id=device_id,
            num_samples=shard.num_samples,
            class_fraction=shard.class_fraction,
            balance_score=shard.balance_score(),
            is_non_iid=shard.is_non_iid,
        )
    return profiles


def synthesize_data_profiles(
    device_ids: list[int],
    distribution: DataDistribution | str,
    num_classes: int,
    samples_per_device: int,
    rng: np.random.Generator,
    concentration: float = DIRICHLET_CONCENTRATION,
) -> dict[int, DeviceDataProfile]:
    """Synthesise per-device profiles for a heterogeneity scenario without raw data.

    Non-IID devices draw their class mix from ``Dirichlet(concentration)`` over the global
    label space (exactly the paper's construction) and the profile statistics are computed
    from that mix; IID devices cover the full label space with a near-uniform mix.
    """
    if num_classes < 2:
        raise DataError("num_classes must be >= 2")
    if samples_per_device < 1:
        raise DataError("samples_per_device must be >= 1")
    distribution = DataDistribution.from_name(distribution)
    num_devices = len(device_ids)
    if num_devices == 0:
        raise DataError("device_ids must be non-empty")
    num_non_iid = int(round(distribution.non_iid_fraction * num_devices))
    non_iid_ids: set[int] = set()
    if num_non_iid > 0:
        chosen = rng.choice(num_devices, size=num_non_iid, replace=False)
        non_iid_ids = {device_ids[int(index)] for index in chosen}

    profiles: dict[int, DeviceDataProfile] = {}
    for device_id in device_ids:
        num_samples = int(rng.integers(int(samples_per_device * 0.7), int(samples_per_device * 1.3) + 1))
        if device_id in non_iid_ids:
            mix = rng.dirichlet(np.full(num_classes, concentration))
        else:
            # IID devices: a near-uniform mix with mild sampling noise.
            mix = rng.dirichlet(np.full(num_classes, 50.0))
        counts = rng.multinomial(num_samples, mix)
        present = counts > 0
        class_fraction = float(present.sum() / num_classes)
        probabilities = counts[present] / num_samples
        entropy = float(-(probabilities * np.log(probabilities)).sum()) if present.any() else 0.0
        max_entropy = float(np.log(num_classes))
        balance = entropy / max_entropy if max_entropy > 0 else 1.0
        profiles[device_id] = DeviceDataProfile(
            device_id=device_id,
            num_samples=num_samples,
            class_fraction=class_fraction,
            balance_score=min(1.0, balance),
            is_non_iid=device_id in non_iid_ids,
        )
    return profiles
