"""Hardware specifications for the three device tiers used in the paper.

Paper Table 3 gives, for each representative phone, the CPU and GPU maximum frequency, the
number of available voltage-frequency (V-F) steps, and the peak power draw measured with a
Monsoon power meter.  Paper Table 2 gives the theoretical GFLOPS of the EC2 instances used
to emulate each tier.  Those numbers are encoded here verbatim; quantities the paper does
not publish directly (idle power, memory bandwidth, GPU training efficiency) are chosen so
that the ratios reported in Section 3 hold (see DESIGN.md, "Key modelling notes").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import DeviceError


class DeviceTier(enum.Enum):
    """Performance tier of a mobile device (paper: high-end, mid-end, low-end)."""

    HIGH = "high"
    MID = "mid"
    LOW = "low"

    @classmethod
    def from_name(cls, name: "str | DeviceTier") -> "DeviceTier":
        """Coerce a tier name (``"high"``/``"mid"``/``"low"``) into a :class:`DeviceTier`."""
        if isinstance(name, cls):
            return name
        try:
            return cls(name.lower())
        except ValueError as exc:
            raise DeviceError(f"unknown device tier {name!r}") from exc


@dataclass(frozen=True)
class ProcessorSpec:
    """Specification of one execution target (a CPU cluster or a GPU).

    Attributes
    ----------
    name:
        Marketing name of the processor (e.g. ``"Cortex A75"``).
    max_frequency_ghz:
        Maximum clock frequency in GHz.
    num_vf_steps:
        Number of discrete voltage-frequency steps exposed by the DVFS driver.
    peak_power_watt:
        Power draw at the maximum frequency under full training load (Monsoon measurement).
    idle_power_watt:
        Power draw when the processor is idle (screen-off baseline attributed to this unit).
    peak_gflops:
        Achievable training throughput at maximum frequency, in GFLOP/s.
    mem_bandwidth_gbs:
        Effective memory bandwidth available to training, in GB/s.
    saturation_batch:
        Minibatch size needed to saturate the processor's parallel resources.  Wider
        processors need larger batches to reach peak throughput, which is why the tier
        performance gap shrinks when the FL service lowers ``B`` (paper Section 3.1).
    """

    name: str
    max_frequency_ghz: float
    num_vf_steps: int
    peak_power_watt: float
    idle_power_watt: float
    peak_gflops: float
    mem_bandwidth_gbs: float
    saturation_batch: int = 8

    def __post_init__(self) -> None:
        if self.num_vf_steps < 1:
            raise DeviceError(f"{self.name}: num_vf_steps must be >= 1")
        if self.max_frequency_ghz <= 0:
            raise DeviceError(f"{self.name}: max_frequency_ghz must be positive")
        if self.peak_power_watt <= 0 or self.idle_power_watt < 0:
            raise DeviceError(f"{self.name}: power values must be positive")
        if self.peak_gflops <= 0 or self.mem_bandwidth_gbs <= 0:
            raise DeviceError(f"{self.name}: throughput values must be positive")

    @property
    def min_frequency_ghz(self) -> float:
        """Lowest available frequency (the first V-F step)."""
        return self.frequency_at_step(0)

    def frequency_at_step(self, step: int) -> float:
        """Frequency in GHz at V-F step ``step`` (0 = lowest, ``num_vf_steps - 1`` = highest).

        Steps are spaced linearly between 40 % and 100 % of the maximum frequency, which is
        representative of the governor tables of the SoCs in paper Table 3.
        """
        if not 0 <= step < self.num_vf_steps:
            raise DeviceError(
                f"{self.name}: V-F step {step} out of range [0, {self.num_vf_steps - 1}]"
            )
        if self.num_vf_steps == 1:
            return self.max_frequency_ghz
        lowest = 0.4 * self.max_frequency_ghz
        span = self.max_frequency_ghz - lowest
        return lowest + span * (step / (self.num_vf_steps - 1))

    def relative_frequency(self, step: int) -> float:
        """Frequency at ``step`` as a fraction of the maximum frequency."""
        return self.frequency_at_step(step) / self.max_frequency_ghz


@dataclass(frozen=True)
class DeviceSpec:
    """Full specification of a device model (one CPU target plus one GPU target)."""

    name: str
    tier: DeviceTier
    cpu: ProcessorSpec
    gpu: ProcessorSpec
    ram_gb: float
    #: Multiplier applied to busy power to capture the tier's average training power draw.
    #: Calibrated so mid/low-end devices draw 35.7 % / 46.4 % less power than high-end
    #: devices during training, as reported in paper Section 3.1.
    training_power_scale: float = 1.0

    def processor(self, kind: str) -> ProcessorSpec:
        """Return the :class:`ProcessorSpec` for ``"cpu"`` or ``"gpu"``."""
        if kind == "cpu":
            return self.cpu
        if kind == "gpu":
            return self.gpu
        raise DeviceError(f"unknown processor kind {kind!r} (expected 'cpu' or 'gpu')")


def _mi8_pro() -> DeviceSpec:
    """High-end tier: Xiaomi Mi8 Pro (paper Table 3, Table 2 row H)."""
    return DeviceSpec(
        name="Mi8Pro",
        tier=DeviceTier.HIGH,
        cpu=ProcessorSpec(
            name="Cortex A75",
            max_frequency_ghz=2.8,
            num_vf_steps=23,
            peak_power_watt=5.5,
            idle_power_watt=0.030,
            peak_gflops=153.6,
            mem_bandwidth_gbs=16.0,
            saturation_batch=32,
        ),
        gpu=ProcessorSpec(
            name="Adreno 630",
            max_frequency_ghz=0.7,
            num_vf_steps=7,
            peak_power_watt=2.8,
            idle_power_watt=0.020,
            # On-device training on mobile GPUs is less efficient than inference; the
            # effective training throughput is modelled at ~45 % of the CPU throughput so
            # that, absent interference, the CPU is the more energy-efficient target
            # (paper Section 6.2, "Prediction Accuracy").
            peak_gflops=69.0,
            mem_bandwidth_gbs=14.0,
            saturation_batch=32,
        ),
        ram_gb=8.0,
        training_power_scale=1.0,
    )


def _galaxy_s10e() -> DeviceSpec:
    """Mid-end tier: Samsung Galaxy S10e (paper Table 3, Table 2 row M)."""
    return DeviceSpec(
        name="GalaxyS10e",
        tier=DeviceTier.MID,
        cpu=ProcessorSpec(
            name="Mongoose",
            max_frequency_ghz=2.7,
            num_vf_steps=21,
            peak_power_watt=5.6,
            idle_power_watt=0.025,
            peak_gflops=80.0,
            mem_bandwidth_gbs=14.0,
            saturation_batch=16,
        ),
        gpu=ProcessorSpec(
            name="Mali-G76",
            max_frequency_ghz=0.7,
            num_vf_steps=9,
            peak_power_watt=2.4,
            idle_power_watt=0.018,
            peak_gflops=36.0,
            mem_bandwidth_gbs=12.0,
            saturation_batch=16,
        ),
        ram_gb=4.0,
        # 35.7 % lower average training power than the high-end tier (paper Section 3.1).
        training_power_scale=0.643 * 5.5 / 5.6,
    )


def _moto_x_force() -> DeviceSpec:
    """Low-end tier: Motorola Moto X Force (paper Table 3, Table 2 row L)."""
    return DeviceSpec(
        name="MotoXForce",
        tier=DeviceTier.LOW,
        cpu=ProcessorSpec(
            name="Cortex A57",
            max_frequency_ghz=1.9,
            num_vf_steps=15,
            peak_power_watt=3.6,
            idle_power_watt=0.020,
            peak_gflops=52.8,
            mem_bandwidth_gbs=11.5,
            saturation_batch=8,
        ),
        gpu=ProcessorSpec(
            name="Adreno 430",
            max_frequency_ghz=0.6,
            num_vf_steps=6,
            peak_power_watt=2.0,
            idle_power_watt=0.015,
            peak_gflops=24.0,
            mem_bandwidth_gbs=9.0,
            saturation_batch=8,
        ),
        ram_gb=2.0,
        # 46.4 % lower average training power than the high-end tier (paper Section 3.1).
        training_power_scale=0.536 * 5.5 / 3.6,
    )


MI8_PRO: DeviceSpec = _mi8_pro()
GALAXY_S10E: DeviceSpec = _galaxy_s10e()
MOTO_X_FORCE: DeviceSpec = _moto_x_force()

#: Tier name -> representative device spec (paper Section 5.1).
TIER_SPECS: dict[DeviceTier, DeviceSpec] = {
    DeviceTier.HIGH: MI8_PRO,
    DeviceTier.MID: GALAXY_S10E,
    DeviceTier.LOW: MOTO_X_FORCE,
}
