"""Per-round energy accounting structures.

The reward of AutoFL (paper Section 4.1) is built from the estimated local energy of each
device — computation plus communication energy for participants (Eq. 5) and idle energy for
non-participants — and the global energy summed over the whole population (Eq. 6).  The
containers here hold those quantities for one aggregation round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class DeviceEnergy:
    """Energy breakdown (Joules) of a single device over one aggregation round."""

    compute_j: float = 0.0
    communication_j: float = 0.0
    idle_j: float = 0.0

    def __post_init__(self) -> None:
        if min(self.compute_j, self.communication_j, self.idle_j) < 0:
            raise SimulationError("energy components must be non-negative")

    @property
    def total_j(self) -> float:
        """Total energy drawn by the device during the round."""
        return self.compute_j + self.communication_j + self.idle_j

    @property
    def active_j(self) -> float:
        """Energy attributable to FL work (compute + communication)."""
        return self.compute_j + self.communication_j


@dataclass
class RoundEnergyAccount:
    """Energy bookkeeping for all devices over one aggregation round."""

    per_device: dict[int, DeviceEnergy] = field(default_factory=dict)

    def record(self, device_id: int, energy: DeviceEnergy) -> None:
        """Record (or overwrite) the energy breakdown of one device."""
        self.per_device[device_id] = energy

    def device(self, device_id: int) -> DeviceEnergy:
        """Return the breakdown for a device, raising if it was never recorded."""
        try:
            return self.per_device[device_id]
        except KeyError as exc:
            raise SimulationError(f"no energy recorded for device {device_id}") from exc

    @property
    def global_j(self) -> float:
        """Total energy over the whole population (paper Eq. 6, ``R_energy_global``)."""
        return sum(energy.total_j for energy in self.per_device.values())

    @property
    def participant_j(self) -> float:
        """Total active (compute + communication) energy of the round's participants."""
        return sum(energy.active_j for energy in self.per_device.values())

    @property
    def idle_total_j(self) -> float:
        """Total idle energy of non-participants."""
        return sum(energy.idle_j for energy in self.per_device.values())

    def merge(self, other: "RoundEnergyAccount") -> "RoundEnergyAccount":
        """Combine two accounts (summing overlapping devices) into a new account."""
        merged = RoundEnergyAccount(per_device=dict(self.per_device))
        for device_id, energy in other.per_device.items():
            if device_id in merged.per_device:
                existing = merged.per_device[device_id]
                merged.per_device[device_id] = DeviceEnergy(
                    compute_j=existing.compute_j + energy.compute_j,
                    communication_j=existing.communication_j + energy.communication_j,
                    idle_j=existing.idle_j + energy.idle_j,
                )
            else:
                merged.per_device[device_id] = energy
        return merged
