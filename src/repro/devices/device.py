"""The :class:`MobileDevice` abstraction combining specs, power and performance models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.performance import ComputeWorkload, TrainingTimeModel
from repro.devices.power import awake_power, busy_power_at_frequency
from repro.devices.specs import DeviceSpec, DeviceTier
from repro.exceptions import DeviceError


@dataclass(frozen=True)
class ExecutionTarget:
    """An on-device execution target: which processor runs training and at which V-F step.

    This is the second-level AutoFL action (paper Section 4.1): CPUs and GPUs are both
    candidate targets and the CPU/GPU DVFS step augments the action space.
    """

    processor: str
    vf_step: int

    def __post_init__(self) -> None:
        if self.processor not in ("cpu", "gpu"):
            raise DeviceError(f"processor must be 'cpu' or 'gpu', got {self.processor!r}")
        if self.vf_step < 0:
            raise DeviceError(f"vf_step must be non-negative, got {self.vf_step}")

    def label(self) -> str:
        """Human-readable label such as ``"cpu@12"``."""
        return f"{self.processor}@{self.vf_step}"


@dataclass(frozen=True)
class RoundConditions:
    """Per-device runtime conditions observed for one aggregation round.

    Attributes
    ----------
    co_cpu_util:
        CPU utilisation of co-running applications, in ``[0, 1]`` (paper state ``S_Co_CPU``).
    co_mem_util:
        Memory usage of co-running applications, in ``[0, 1]`` (paper state ``S_Co_MEM``).
    bandwidth_mbps:
        Available uplink network bandwidth in Mbit/s (paper state ``S_Network``).
    """

    co_cpu_util: float = 0.0
    co_mem_util: float = 0.0
    bandwidth_mbps: float = 80.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.co_cpu_util <= 1.0:
            raise DeviceError(f"co_cpu_util must be in [0, 1], got {self.co_cpu_util}")
        if not 0.0 <= self.co_mem_util <= 1.0:
            raise DeviceError(f"co_mem_util must be in [0, 1], got {self.co_mem_util}")
        if self.bandwidth_mbps <= 0:
            raise DeviceError(f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}")

    @property
    def has_interference(self) -> bool:
        """Whether any co-running application activity is present."""
        return self.co_cpu_util > 0.0 or self.co_mem_util > 0.0


@dataclass(frozen=True)
class ComputeEstimate:
    """Predicted local-training time, energy and utilisation for one target choice."""

    time_s: float
    energy_j: float
    utilization: float


class MobileDevice:
    """A single mobile device in the FL population.

    The device exposes its hardware specification, enumerates its available execution
    targets and predicts the time/energy of local training for a given workload, target and
    interference slowdown.  It is deliberately stateless with respect to runtime conditions:
    the simulator samples :class:`RoundConditions` each round and passes the derived
    slowdowns in, which keeps devices cheap to copy and trivially deterministic.
    """

    def __init__(self, device_id: int, spec: DeviceSpec, num_local_samples: int = 0) -> None:
        if device_id < 0:
            raise DeviceError(f"device_id must be non-negative, got {device_id}")
        if num_local_samples < 0:
            raise DeviceError(f"num_local_samples must be non-negative, got {num_local_samples}")
        self._device_id = device_id
        self._spec = spec
        self._num_local_samples = num_local_samples
        self._time_model = TrainingTimeModel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MobileDevice(id={self._device_id}, spec={self._spec.name})"

    @property
    def device_id(self) -> int:
        """Unique identifier of the device within the fleet."""
        return self._device_id

    @property
    def spec(self) -> DeviceSpec:
        """Hardware specification of the device."""
        return self._spec

    @property
    def tier(self) -> DeviceTier:
        """Performance tier of the device."""
        return self._spec.tier

    @property
    def num_local_samples(self) -> int:
        """Number of local training samples currently assigned to the device."""
        return self._num_local_samples

    def assign_samples(self, num_samples: int) -> None:
        """Assign the size of the local training shard (set by the data partitioner)."""
        if num_samples < 0:
            raise DeviceError(f"num_samples must be non-negative, got {num_samples}")
        self._num_local_samples = num_samples

    def default_target(self) -> ExecutionTarget:
        """The baseline execution target: CPU at the highest frequency."""
        return ExecutionTarget(processor="cpu", vf_step=self._spec.cpu.num_vf_steps - 1)

    def available_targets(self, dvfs_levels: int = 3) -> list[ExecutionTarget]:
        """Enumerate the discrete execution-target action space for this device.

        ``dvfs_levels`` evenly spaced CPU frequency steps (always including the highest)
        plus the GPU at its highest step.  Keeping the action space small is what makes the
        Q-table approach tractable (paper Section 4, "Low Training and Inference Overhead").
        """
        if dvfs_levels < 1:
            raise DeviceError(f"dvfs_levels must be >= 1, got {dvfs_levels}")
        cpu_steps = self._spec.cpu.num_vf_steps
        targets: list[ExecutionTarget] = []
        seen: set[int] = set()
        for i in range(dvfs_levels):
            if dvfs_levels == 1:
                step = cpu_steps - 1
            else:
                step = round((cpu_steps - 1) * (1.0 - i / (dvfs_levels - 1) * 0.6))
            if step not in seen:
                seen.add(step)
                targets.append(ExecutionTarget(processor="cpu", vf_step=step))
        targets.append(ExecutionTarget(processor="gpu", vf_step=self._spec.gpu.num_vf_steps - 1))
        return targets

    def validate_target(self, target: ExecutionTarget) -> None:
        """Raise :class:`DeviceError` if the target's V-F step is out of range."""
        spec = self._spec.processor(target.processor)
        if target.vf_step >= spec.num_vf_steps:
            raise DeviceError(
                f"device {self._device_id}: V-F step {target.vf_step} out of range for "
                f"{target.processor} with {spec.num_vf_steps} steps"
            )

    def estimate_compute(
        self,
        workload: ComputeWorkload,
        target: ExecutionTarget,
        compute_slowdown: float = 1.0,
        memory_slowdown: float = 1.0,
    ) -> ComputeEstimate:
        """Predict the local-training time, energy and utilisation for one round."""
        self.validate_target(target)
        spec = self._spec.processor(target.processor)
        time_s = self._time_model.training_time(
            workload, spec, target.vf_step, compute_slowdown, memory_slowdown
        )
        utilization = self._time_model.utilization(workload, spec, target.vf_step)
        power = busy_power_at_frequency(
            spec, target.vf_step, utilization, self._spec.training_power_scale
        )
        return ComputeEstimate(time_s=time_s, energy_j=power * time_s, utilization=utilization)

    def idle_power(self) -> float:
        """Device idle power draw (W) when not selected for a round (paper Eq. 4)."""
        return self._spec.cpu.idle_power_watt

    def awake_power(self) -> float:
        """Power draw (W) while participating in a round but not actively training.

        Participants keep a wakelock, the CPU cluster online and the radio connected while
        waiting for the round to close, which costs far more than deep idle; this is what
        makes straggler-stretched rounds expensive for every selected device.
        """
        return awake_power(
            self._spec.cpu.peak_power_watt,
            self._spec.cpu.idle_power_watt,
            self._spec.training_power_scale,
        )
