"""Mobile device models: hardware specifications, power, performance, DVFS and fleets.

This subpackage is the hardware substrate of the reproduction.  The paper measured three
real smartphones (Mi8Pro, Galaxy S10e, Moto X Force) with a Monsoon power meter and emulated
a 200-device fleet with EC2 instances; here the same three tiers are modelled analytically
using the published specifications (paper Tables 2 and 3) and reported performance/power
ratios (paper Section 3).
"""

from repro.devices.device import ExecutionTarget, MobileDevice, RoundConditions
from repro.devices.dvfs import DvfsGovernor
from repro.devices.energy import DeviceEnergy, RoundEnergyAccount
from repro.devices.fleet import Fleet, build_fleet
from repro.devices.fleet_arrays import FleetArrays, RoundConditionsArrays
from repro.devices.performance import TrainingTimeModel
from repro.devices.power import CpuPowerModel, GpuPowerModel, busy_power_at_frequency
from repro.devices.specs import (
    DeviceSpec,
    DeviceTier,
    ProcessorSpec,
    GALAXY_S10E,
    MI8_PRO,
    MOTO_X_FORCE,
    TIER_SPECS,
)

__all__ = [
    "CpuPowerModel",
    "DeviceEnergy",
    "DeviceSpec",
    "DeviceTier",
    "DvfsGovernor",
    "ExecutionTarget",
    "Fleet",
    "FleetArrays",
    "GALAXY_S10E",
    "GpuPowerModel",
    "MI8_PRO",
    "MOTO_X_FORCE",
    "MobileDevice",
    "ProcessorSpec",
    "RoundConditions",
    "RoundConditionsArrays",
    "RoundEnergyAccount",
    "TIER_SPECS",
    "TrainingTimeModel",
    "build_fleet",
    "busy_power_at_frequency",
]
