"""DVFS governor used to exploit straggler slack for energy savings.

AutoFL augments the per-device execution-target action with CPU/GPU DVFS settings
(paper Section 4.1, "Action"): when a participant finishes well before the round's
straggler, its frequency can be lowered so it finishes just-in-time at lower energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.performance import ComputeWorkload, TrainingTimeModel
from repro.devices.power import busy_power_at_frequency
from repro.devices.specs import ProcessorSpec
from repro.exceptions import DeviceError


@dataclass(frozen=True)
class DvfsDecision:
    """Result of a governor query: the chosen V-F step and its predicted time/energy."""

    step: int
    predicted_time_s: float
    predicted_energy_j: float


class DvfsGovernor:
    """Selects V-F steps for a processor, optionally under a deadline.

    Two policies are provided:

    * :meth:`max_performance` — always the highest step (the paper's baselines).
    * :meth:`energy_optimal_under_deadline` — the lowest-energy step whose predicted
      training time still meets a deadline (AutoFL's slack exploitation).
    """

    def __init__(self, time_model: TrainingTimeModel | None = None) -> None:
        self._time_model = time_model or TrainingTimeModel()

    def max_performance(self, spec: ProcessorSpec) -> int:
        """Return the highest available V-F step."""
        return spec.num_vf_steps - 1

    def _evaluate(
        self,
        workload: ComputeWorkload,
        spec: ProcessorSpec,
        step: int,
        power_scale: float,
        compute_slowdown: float,
        memory_slowdown: float,
    ) -> DvfsDecision:
        time_s = self._time_model.training_time(
            workload, spec, step, compute_slowdown, memory_slowdown
        )
        utilization = self._time_model.utilization(workload, spec, step)
        power = busy_power_at_frequency(spec, step, utilization, power_scale)
        return DvfsDecision(step=step, predicted_time_s=time_s, predicted_energy_j=power * time_s)

    def energy_optimal_under_deadline(
        self,
        workload: ComputeWorkload,
        spec: ProcessorSpec,
        deadline_s: float,
        power_scale: float = 1.0,
        compute_slowdown: float = 1.0,
        memory_slowdown: float = 1.0,
    ) -> DvfsDecision:
        """Lowest-energy V-F step that still meets ``deadline_s``.

        If no step meets the deadline, the highest-performance step is returned — the
        device is a straggler regardless, so running as fast as possible minimises the
        round-time penalty it imposes.
        """
        if deadline_s <= 0:
            raise DeviceError(f"deadline_s must be positive, got {deadline_s}")
        best: DvfsDecision | None = None
        fallback: DvfsDecision | None = None
        for step in range(spec.num_vf_steps):
            decision = self._evaluate(
                workload, spec, step, power_scale, compute_slowdown, memory_slowdown
            )
            if fallback is None or decision.predicted_time_s < fallback.predicted_time_s:
                fallback = decision
            if decision.predicted_time_s > deadline_s:
                continue
            if best is None or decision.predicted_energy_j < best.predicted_energy_j:
                best = decision
        if best is not None:
            return best
        assert fallback is not None  # num_vf_steps >= 1 guarantees at least one evaluation
        return fallback
