"""Struct-of-arrays views of the fleet for the vectorised simulation path.

The scalar path walks :class:`~repro.devices.device.MobileDevice` objects one at a time,
which makes a simulated round cost ``O(N)`` Python-interpreter work.  The batched round
engine instead operates on :class:`FleetArrays` — one numpy array per device attribute,
aligned on fleet order — so that compute/communication time, thermal throttling and energy
accounting for thousands of devices collapse into a handful of array expressions.

Two containers live here:

* :class:`FleetArrays` — an immutable snapshot of every per-device hardware quantity the
  round engine needs (tier, per-processor peak GFLOPS / bandwidth / V-F steps / power,
  tier power scales, shard sizes, idle and awake power).
* :class:`RoundConditionsArrays` — one aggregation round's sampled runtime conditions
  (co-runner CPU/memory utilisation and uplink bandwidth) for the whole fleet in one
  array per quantity.

All formulas mirror the scalar models in :mod:`repro.devices` exactly, so the batched
engine is pinned to the scalar reference implementation by equivalence tests.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.devices.device import RoundConditions
from repro.devices.specs import DeviceTier
from repro.exceptions import DeviceError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import only used for typing
    from repro.devices.fleet import Fleet

#: Processor codes used to index the ``(2, N)`` per-processor arrays.
PROC_CPU = 0
PROC_GPU = 1

#: Processor name -> code (the batched counterpart of ``DeviceSpec.processor``).
PROCESSOR_CODES: dict[str, int] = {"cpu": PROC_CPU, "gpu": PROC_GPU}

#: Code -> processor name, for converting batch results back into scalar objects.
PROCESSOR_NAMES: dict[int, str] = {code: name for name, code in PROCESSOR_CODES.items()}

#: Tier order backing ``FleetArrays.tier_codes``.
TIER_ORDER: tuple[DeviceTier, ...] = (DeviceTier.HIGH, DeviceTier.MID, DeviceTier.LOW)


@dataclass(frozen=True)
class FleetArrays:
    """Immutable struct-of-arrays snapshot of a :class:`~repro.devices.fleet.Fleet`.

    Every array is aligned on fleet order (row ``i`` describes ``fleet.devices[i]``).  The
    per-processor arrays have shape ``(2, N)`` and are indexed by the processor codes
    :data:`PROC_CPU` / :data:`PROC_GPU`, so a per-device processor choice selects its row
    with fancy indexing: ``peak_gflops[processors, rows]``.

    The snapshot includes the device shard sizes, so it must be (re)built after the data
    partitioner assigns samples; :class:`~repro.sim.environment.EdgeCloudEnvironment`
    builds it lazily for exactly that reason.
    """

    device_ids: np.ndarray
    tier_codes: np.ndarray
    num_samples: np.ndarray
    training_power_scale: np.ndarray
    idle_power_watt: np.ndarray
    awake_power_watt: np.ndarray
    # ------------------------------------------------------------------ (2, N) arrays
    peak_gflops: np.ndarray
    mem_bandwidth_gbs: np.ndarray
    peak_power_watt: np.ndarray
    max_frequency_ghz: np.ndarray
    num_vf_steps: np.ndarray
    saturation_batch: np.ndarray

    @classmethod
    def from_fleet(cls, fleet: "Fleet") -> "FleetArrays":
        """Snapshot ``fleet`` (including currently assigned shard sizes) into arrays."""
        devices = fleet.devices
        tier_index = {tier: code for code, tier in enumerate(TIER_ORDER)}

        def processor_array(attr: str, dtype: type = np.float64) -> np.ndarray:
            return np.array(
                [
                    [getattr(device.spec.cpu, attr) for device in devices],
                    [getattr(device.spec.gpu, attr) for device in devices],
                ],
                dtype=dtype,
            )

        return cls(
            device_ids=np.array([device.device_id for device in devices], dtype=np.int64),
            tier_codes=np.array([tier_index[device.tier] for device in devices], dtype=np.int8),
            num_samples=np.array([device.num_local_samples for device in devices], dtype=np.int64),
            training_power_scale=np.array(
                [device.spec.training_power_scale for device in devices], dtype=np.float64
            ),
            idle_power_watt=np.array([device.idle_power() for device in devices], dtype=np.float64),
            awake_power_watt=np.array(
                [device.awake_power() for device in devices], dtype=np.float64
            ),
            peak_gflops=processor_array("peak_gflops"),
            mem_bandwidth_gbs=processor_array("mem_bandwidth_gbs"),
            peak_power_watt=processor_array("peak_power_watt"),
            max_frequency_ghz=processor_array("max_frequency_ghz"),
            num_vf_steps=processor_array("num_vf_steps", dtype=np.int64),
            saturation_batch=processor_array("saturation_batch", dtype=np.int64),
        )

    def __post_init__(self) -> None:
        n = len(self.device_ids)
        if n == 0:
            raise DeviceError("FleetArrays requires at least one device")
        object.__setattr__(
            self,
            "_row_of",
            {int(device_id): row for row, device_id in enumerate(self.device_ids)},
        )
        # Fleets number their devices 0..N-1 in fleet order, so id == row and the
        # per-id dict walk collapses into one bounds-checked array conversion.
        object.__setattr__(
            self,
            "_contiguous_ids",
            bool(
                int(self.device_ids[0]) == 0
                and int(self.device_ids[-1]) == n - 1
                and np.array_equal(self.device_ids, np.arange(n, dtype=np.int64))
            ),
        )
        object.__setattr__(self, "_default_vf_steps", self.num_vf_steps[PROC_CPU] - 1)

    def __len__(self) -> int:
        return len(self.device_ids)

    def rows_for(self, device_ids: Sequence[int]) -> np.ndarray:
        """Map device ids to fleet rows, raising on unknown ids."""
        if self._contiguous_ids:  # type: ignore[attr-defined]
            rows = np.array(device_ids, dtype=np.int64)
            bad = (rows < 0) | (rows >= len(self))
            if np.any(bad):
                missing = int(rows[bad][0])
                raise DeviceError(f"no device with id {missing} in fleet")
            return rows
        row_of: dict[int, int] = self._row_of  # type: ignore[attr-defined]
        try:
            return np.array([row_of[device_id] for device_id in device_ids], dtype=np.int64)
        except KeyError as exc:
            raise DeviceError(f"no device with id {exc.args[0]} in fleet") from None

    @property
    def cpu_capability_gflops(self) -> np.ndarray:
        """Per-device CPU peak GFLOPS — the capability the interference model scales by."""
        return self.peak_gflops[PROC_CPU]

    def default_vf_steps(self) -> np.ndarray:
        """Per-device default V-F step (highest CPU step), mirroring ``default_target``.

        The array is computed once per snapshot and shared — callers must treat it as
        read-only (per-selection gathers like ``default_vf_steps()[rows]`` copy anyway).
        """
        return self._default_vf_steps  # type: ignore[attr-defined]

    def relative_frequency(self, processors: np.ndarray, vf_steps: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Vectorised ``ProcessorSpec.relative_frequency`` for per-device targets.

        Mirrors the scalar model: steps are spaced linearly between 40 % and 100 % of the
        maximum frequency, and a single-step processor always runs at its maximum.
        """
        num_steps = self.num_vf_steps[processors, rows]
        if np.any(vf_steps < 0) or np.any(vf_steps >= num_steps):
            raise DeviceError("V-F step out of range for selected processor")
        max_frequency = self.max_frequency_ghz[processors, rows]
        lowest = 0.4 * max_frequency
        span = max_frequency - lowest
        frequency = lowest + span * (vf_steps / np.maximum(num_steps - 1, 1))
        return np.where(num_steps > 1, frequency / max_frequency, 1.0)


@dataclass(frozen=True)
class RoundConditionsArrays:
    """One round's sampled runtime conditions for every device, in fleet order."""

    co_cpu_util: np.ndarray
    co_mem_util: np.ndarray
    bandwidth_mbps: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.co_cpu_util),
            len(self.co_mem_util),
            len(self.bandwidth_mbps),
        }
        if len(lengths) != 1:
            raise SimulationError("condition arrays must have equal lengths")

    def __len__(self) -> int:
        return len(self.co_cpu_util)

    def take(self, rows: np.ndarray) -> "RoundConditionsArrays":
        """Condition arrays restricted to the given fleet rows."""
        return RoundConditionsArrays(
            co_cpu_util=self.co_cpu_util[rows],
            co_mem_util=self.co_mem_util[rows],
            bandwidth_mbps=self.bandwidth_mbps[rows],
        )

    @classmethod
    def from_mapping(
        cls, device_ids: Sequence[int], conditions: Mapping[int, RoundConditions]
    ) -> "RoundConditionsArrays":
        """Gather a per-id conditions mapping into arrays aligned on ``device_ids``.

        A missing device id raises :class:`~repro.exceptions.SimulationError` — silently
        substituting default conditions would let a selection bug masquerade as a round
        with a pristine, interference-free device.
        """
        missing = [device_id for device_id in device_ids if device_id not in conditions]
        if missing:
            raise SimulationError(
                f"no round conditions for selected device {missing[0]}"
                + (f" (and {len(missing) - 1} more)" if len(missing) > 1 else "")
            )
        gathered = [conditions[device_id] for device_id in device_ids]
        return cls(
            co_cpu_util=np.array([c.co_cpu_util for c in gathered], dtype=np.float64),
            co_mem_util=np.array([c.co_mem_util for c in gathered], dtype=np.float64),
            bandwidth_mbps=np.array([c.bandwidth_mbps for c in gathered], dtype=np.float64),
        )

    def to_mapping(self, device_ids: Sequence[int]) -> dict[int, RoundConditions]:
        """Expand the arrays into the scalar per-device mapping used by policies."""
        if len(device_ids) != len(self):
            raise SimulationError("device_ids length does not match condition arrays")
        return {
            int(device_id): RoundConditions(
                co_cpu_util=float(self.co_cpu_util[row]),
                co_mem_util=float(self.co_mem_util[row]),
                bandwidth_mbps=float(self.bandwidth_mbps[row]),
            )
            for row, device_id in enumerate(device_ids)
        }

    def lazy_mapping(self, device_ids: Sequence[int]) -> "LazyConditionMapping":
        """A mapping view over the arrays that builds scalar objects only on access.

        Policies that work on the arrays directly never pay the O(N) object
        construction of :meth:`to_mapping`; scalar consumers see the same values.
        """
        return LazyConditionMapping(self, device_ids)


class LazyConditionMapping(Mapping[int, RoundConditions]):
    """Read-only per-device view of :class:`RoundConditionsArrays`.

    Behaves like the dict :meth:`RoundConditionsArrays.to_mapping` returns, but each
    :class:`RoundConditions` is materialised (and cached) on first access.
    """

    def __init__(self, arrays: RoundConditionsArrays, device_ids: Sequence[int]) -> None:
        if len(device_ids) != len(arrays):
            raise SimulationError("device_ids length does not match condition arrays")
        self._arrays = arrays
        self._ids = device_ids
        # The id list and row index are built on first scalar access: array-native
        # consumers construct one of these views every round and never open it, so
        # __init__ must stay O(1).
        self._device_ids: list[int] | None = None
        self._rows: dict[int, int] | None = None
        self._cache: dict[int, RoundConditions] = {}

    def _id_list(self) -> list[int]:
        if self._device_ids is None:
            self._device_ids = [int(device_id) for device_id in self._ids]
        return self._device_ids

    def __getitem__(self, device_id: int) -> RoundConditions:
        cached = self._cache.get(device_id)
        if cached is not None:
            return cached
        if self._rows is None:
            self._rows = {did: row for row, did in enumerate(self._id_list())}
        row = self._rows[device_id]  # Raises KeyError for unknown ids, like a dict.
        conditions = RoundConditions(
            co_cpu_util=float(self._arrays.co_cpu_util[row]),
            co_mem_util=float(self._arrays.co_mem_util[row]),
            bandwidth_mbps=float(self._arrays.bandwidth_mbps[row]),
        )
        self._cache[device_id] = conditions
        return conditions

    def __iter__(self) -> Iterator[int]:
        return iter(self._id_list())

    def __len__(self) -> int:
        return len(self._ids)
