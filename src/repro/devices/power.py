"""Power models for on-device training (paper Equations 1, 2 and 4).

The paper computes computation energy with a utilisation-based CPU power model
(Eq. 1) and a frequency-indexed GPU power model (Eq. 2); the busy/idle residency times come
from ``procfs``/``sysfs`` and the per-frequency busy powers from Monsoon measurements.
Here the per-frequency busy power is derived analytically from the measured peak power
using a standard DVFS power curve ``P(f) = P_static + (P_peak - P_static) * (f / f_max)^e``
with exponent ``e = 2.4`` (dynamic power scales roughly with ``f * V^2`` and voltage scales
with frequency on mobile SoCs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.specs import ProcessorSpec
from repro.exceptions import DeviceError

#: Exponent of the frequency-power curve (f * V^2 with V roughly proportional to f).
DVFS_POWER_EXPONENT = 2.4

#: Fraction of the peak power that is static (leakage + uncore) and does not scale with DVFS.
STATIC_POWER_FRACTION = 0.15

#: Fraction of the CPU's peak power a participant draws while it is awake for the FL round
#: but not actively computing (wakelock held, cores online, radio connected, waiting for the
#: round to close).  This is the overhead that makes long straggler-gated rounds expensive
#: for every participant, not just the straggler.
AWAKE_OVERHEAD_FRACTION = 0.12


def awake_power(peak_power_watt: float, idle_power_watt: float, power_scale: float = 1.0) -> float:
    """Power (W) a participant draws while awake in a round but not training."""
    if peak_power_watt <= 0 or idle_power_watt < 0:
        raise DeviceError("power values must be positive")
    return idle_power_watt + AWAKE_OVERHEAD_FRACTION * peak_power_watt * power_scale


def busy_power_at_frequency(
    spec: ProcessorSpec,
    step: int,
    utilization: float = 1.0,
    power_scale: float = 1.0,
) -> float:
    """Busy power (W) of a processor at V-F ``step`` and the given utilisation.

    Parameters
    ----------
    spec:
        Processor specification providing peak power and the V-F table.
    step:
        V-F step index (0 = lowest frequency).
    utilization:
        Fraction of cycles the training workload keeps the processor busy, in ``[0, 1]``.
    power_scale:
        Tier-level calibration multiplier (see :class:`repro.devices.specs.DeviceSpec`).
    """
    if not 0.0 <= utilization <= 1.0:
        raise DeviceError(f"utilization must be in [0, 1], got {utilization}")
    rel_f = spec.relative_frequency(step)
    static = STATIC_POWER_FRACTION * spec.peak_power_watt
    dynamic_peak = spec.peak_power_watt - static
    dynamic = dynamic_peak * (rel_f**DVFS_POWER_EXPONENT) * utilization
    return power_scale * (static + dynamic)


@dataclass(frozen=True)
class BusyInterval:
    """Time spent busy at one V-F step (the ``t_busy^f`` terms of Eq. 1 / Eq. 2)."""

    step: int
    duration_s: float
    utilization: float = 1.0


class CpuPowerModel:
    """Utilisation-based CPU power/energy model (paper Eq. 1).

    The paper sums per-core energy; because every tier is modelled with a single
    representative big-core cluster spec, the per-core sum collapses into a single
    cluster-level term with the utilisation capturing multi-core occupancy.
    """

    def __init__(self, spec: ProcessorSpec, power_scale: float = 1.0) -> None:
        self._spec = spec
        self._power_scale = power_scale

    @property
    def spec(self) -> ProcessorSpec:
        """Processor specification backing this model."""
        return self._spec

    def busy_power(self, step: int, utilization: float = 1.0) -> float:
        """Busy power (W) at a V-F step (``P_busy^f`` of Eq. 1)."""
        return busy_power_at_frequency(self._spec, step, utilization, self._power_scale)

    def idle_power(self) -> float:
        """Idle power (W) (``P_idle`` of Eq. 1)."""
        return self._spec.idle_power_watt

    def energy(self, busy: list[BusyInterval], idle_time_s: float = 0.0) -> float:
        """Energy (J) for the given busy residencies plus idle time (Eq. 1)."""
        if idle_time_s < 0:
            raise DeviceError(f"idle_time_s must be non-negative, got {idle_time_s}")
        total = self.idle_power() * idle_time_s
        for interval in busy:
            if interval.duration_s < 0:
                raise DeviceError("busy interval duration must be non-negative")
            total += self.busy_power(interval.step, interval.utilization) * interval.duration_s
        return total


class GpuPowerModel(CpuPowerModel):
    """GPU power/energy model (paper Eq. 2).

    Structurally identical to the CPU model — per-frequency busy power plus idle power —
    which mirrors the paper's Eq. 2 being the single-unit version of Eq. 1.
    """


def idle_energy(idle_power_watt: float, duration_s: float) -> float:
    """Idle energy of a non-selected device over a round (paper Eq. 4)."""
    if duration_s < 0:
        raise DeviceError(f"duration_s must be non-negative, got {duration_s}")
    if idle_power_watt < 0:
        raise DeviceError(f"idle_power_watt must be non-negative, got {idle_power_watt}")
    return idle_power_watt * duration_s
