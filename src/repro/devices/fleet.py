"""Fleet construction: building the heterogeneous 200-device FL population."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.devices.device import MobileDevice
from repro.devices.specs import DeviceTier, TIER_SPECS
from repro.exceptions import DeviceError


class Fleet:
    """An ordered collection of :class:`MobileDevice` with tier-based helpers."""

    def __init__(self, devices: Sequence[MobileDevice]) -> None:
        if not devices:
            raise DeviceError("a fleet must contain at least one device")
        ids = [device.device_id for device in devices]
        if len(set(ids)) != len(ids):
            raise DeviceError("fleet device ids must be unique")
        self._devices = list(devices)
        self._by_id = {device.device_id: device for device in self._devices}
        self._device_ids = ids

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[MobileDevice]:
        return iter(self._devices)

    def __getitem__(self, device_id: int) -> MobileDevice:
        try:
            return self._by_id[device_id]
        except KeyError as exc:
            raise DeviceError(f"no device with id {device_id} in fleet") from exc

    @property
    def device_ids(self) -> list[int]:
        """All device ids in fleet order (a copy)."""
        return list(self._device_ids)

    @property
    def devices(self) -> list[MobileDevice]:
        """All devices in fleet order (a copy)."""
        return list(self._devices)

    def by_tier(self, tier: DeviceTier | str) -> list[MobileDevice]:
        """All devices of the requested tier."""
        tier = DeviceTier.from_name(tier)
        return [device for device in self._devices if device.tier is tier]

    def tier_counts(self) -> dict[DeviceTier, int]:
        """Number of devices per tier."""
        counts = {tier: 0 for tier in DeviceTier}
        for device in self._devices:
            counts[device.tier] += 1
        return counts

    def tier_of(self, device_id: int) -> DeviceTier:
        """Tier of a device id."""
        return self[device_id].tier


def build_fleet(config: SimulationConfig, rng: np.random.Generator | None = None) -> Fleet:
    """Build a fleet matching ``config.tier_counts`` with shuffled device-id assignment.

    Device ids are assigned randomly across tiers (seeded by ``config.seed`` unless an
    explicit generator is provided) so that id ordering carries no tier information — the
    random-selection baseline must not accidentally benefit from id structure.
    """
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    tiers: list[DeviceTier] = []
    for name, count in config.tier_counts.items():
        tiers.extend([DeviceTier.from_name(name)] * count)
    order = rng.permutation(len(tiers))
    devices = [
        MobileDevice(device_id=int(device_id), spec=TIER_SPECS[tiers[position]])
        for device_id, position in enumerate(order)
    ]
    return Fleet(devices)
