"""Baseline participant-selection policies and the policy factory.

The paper compares AutoFL against: FedAvg-Random (random K participants), Power (the
lowest-power cluster, C7), Performance (the fastest cluster, C1) and the static cluster
templates C0-C7 of Table 4 used throughout the characterisation of Section 3.
"""

from __future__ import annotations

import numpy as np

from repro.devices.fleet_arrays import TIER_ORDER
from repro.devices.specs import DeviceTier
from repro.exceptions import PolicyError
from repro.fl.server import RoundTrainingResult
from repro.registry import POLICIES
from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.results import BatchRoundExecution, RoundExecution

#: Paper Table 4 — cluster templates, expressed as device counts per tier for K = 20.
#: C0 is the random baseline (no fixed composition).
CLUSTER_TEMPLATES: dict[str, dict[DeviceTier, int]] = {
    "C1": {DeviceTier.HIGH: 20, DeviceTier.MID: 0, DeviceTier.LOW: 0},
    "C2": {DeviceTier.HIGH: 15, DeviceTier.MID: 5, DeviceTier.LOW: 0},
    "C3": {DeviceTier.HIGH: 10, DeviceTier.MID: 5, DeviceTier.LOW: 5},
    "C4": {DeviceTier.HIGH: 5, DeviceTier.MID: 10, DeviceTier.LOW: 5},
    "C5": {DeviceTier.HIGH: 5, DeviceTier.MID: 5, DeviceTier.LOW: 10},
    "C6": {DeviceTier.HIGH: 0, DeviceTier.MID: 5, DeviceTier.LOW: 15},
    "C7": {DeviceTier.HIGH: 0, DeviceTier.MID: 0, DeviceTier.LOW: 20},
}

#: Reference K the template counts are expressed against.
TEMPLATE_REFERENCE_K = 20


class Policy:
    """Base class for participant-selection policies."""

    name = "base"
    #: Whether :meth:`feedback` does anything.  Policies that learn from round outcomes
    #: (AutoFL) set this True; the replicated execution path only supports policies whose
    #: feedback is a no-op, because it skips the per-round feedback call entirely.
    uses_feedback = False

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, ctx: RoundContext) -> SelectionDecision:
        """Choose the round's participants (and optionally per-device execution targets)."""
        raise NotImplementedError

    def feedback(
        self,
        ctx: RoundContext,
        decision: SelectionDecision,
        execution: RoundExecution,
        training: RoundTrainingResult,
    ) -> None:
        """Receive the measured outcome of the round.  Non-learning policies ignore it."""

    def feedback_batch(
        self,
        ctx: RoundContext,
        decision: SelectionDecision,
        batch: BatchRoundExecution,
        training: RoundTrainingResult,
    ) -> bool:
        """Array-form feedback: return True if handled, False to request :meth:`feedback`.

        The simulation runner offers the round outcome in batch (array) form first;
        policies with a vectorised learning path accept it here and skip the scalar
        :class:`RoundExecution` materialisation cost.  The default declines.
        """
        return False


def effective_num_participants(ctx: RoundContext) -> int:
    """The round's achievable selection size: K, capped by the online candidates.

    Under fleet dynamics fewer than K devices may be reachable; deployed FL runs the
    round with whoever is online rather than stalling the job.
    """
    num_candidates = ctx.num_candidates
    if num_candidates == 0:
        raise PolicyError("no online candidate devices this round")
    return min(ctx.environment.global_params.num_participants, num_candidates)


@POLICIES.register("fedavg-random", aliases=("random", "fedavg", "baseline"))
class RandomPolicy(Policy):
    """FedAvg-Random: the de-facto baseline that picks K participants uniformly at random."""

    name = "fedavg-random"

    def select(self, ctx: RoundContext) -> SelectionDecision:
        # The cached candidate array draws the exact same stream as the id list did —
        # Generator.choice converts a list to this array before sampling.
        device_ids = ctx.candidate_id_array()
        num_participants = effective_num_participants(ctx)
        chosen = self._rng.choice(device_ids, size=num_participants, replace=False)
        return SelectionDecision(participants=[int(device_id) for device_id in chosen])


def scale_template(
    template: dict[DeviceTier, int], num_participants: int
) -> dict[DeviceTier, int]:
    """Scale a Table 4 template (defined for K = 20) to an arbitrary K, preserving mix."""
    if num_participants <= 0:
        raise PolicyError("num_participants must be positive")
    raw = {
        tier: count * num_participants / TEMPLATE_REFERENCE_K for tier, count in template.items()
    }
    scaled = {tier: int(np.floor(value)) for tier, value in raw.items()}
    remainder = num_participants - sum(scaled.values())
    # Assign leftover slots to the tiers with the largest fractional parts.
    fractional = sorted(raw, key=lambda tier: raw[tier] - scaled[tier], reverse=True)
    for tier in fractional[:remainder]:
        scaled[tier] += 1
    return scaled


class StaticClusterPolicy(Policy):
    """Selects a fixed tier composition every round (the C1-C7 clusters of Table 4)."""

    name = "static-cluster"

    def __init__(
        self,
        composition: dict[DeviceTier, int] | str,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(rng)
        if isinstance(composition, str):
            key = composition.upper()
            if key not in CLUSTER_TEMPLATES:
                raise PolicyError(
                    f"unknown cluster template {composition!r}; expected C1-C7"
                )
            composition = CLUSTER_TEMPLATES[key]
            self.name = name or f"cluster-{key.lower()}"
        else:
            self.name = name or self.name
        self._composition = dict(composition)

    def select(self, ctx: RoundContext) -> SelectionDecision:
        # Per-tier candidate pools as array ops over the fleet snapshot.  Tier masks
        # preserve fleet order exactly like the per-device ``by_tier`` walk did, so the
        # RNG stream (and therefore every committed trajectory) is unchanged.
        arrays = ctx.environment.fleet_arrays
        candidates = ctx.candidate_id_array()
        online_tiers = (
            arrays.tier_codes
            if ctx.online_mask is None
            else arrays.tier_codes[np.asarray(ctx.online_mask, dtype=bool)]
        )
        num_participants = effective_num_participants(ctx)
        target_counts = scale_template(self._composition, num_participants)
        participants: list[int] = []
        shortfall = 0
        for code, tier in enumerate(TIER_ORDER):
            wanted = target_counts.get(tier, 0)
            available = candidates[online_tiers == code]
            take = min(wanted, len(available))
            shortfall += wanted - take
            if take > 0:
                chosen = self._rng.choice(available, size=take, replace=False)
                participants.extend(int(device_id) for device_id in chosen)
        if shortfall > 0:
            taken = np.array(participants, dtype=np.int64)
            remaining = candidates[np.isin(candidates, taken, invert=True)]
            if len(remaining) < shortfall:
                raise PolicyError("fleet too small to satisfy the requested cluster composition")
            extra = self._rng.choice(remaining, size=shortfall, replace=False)
            participants.extend(int(device_id) for device_id in extra)
        return SelectionDecision(participants=participants)


@POLICIES.register("performance")
class PerformancePolicy(StaticClusterPolicy):
    """Performance-oriented selection: the all-high-end cluster C1."""

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__("C1", rng=rng, name="performance")


@POLICIES.register("power")
class PowerPolicy(StaticClusterPolicy):
    """Power-oriented selection: the all-low-end cluster C7 (lowest power draw)."""

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__("C7", rng=rng, name="power")


def _register_cluster_templates() -> None:
    for key, template in CLUSTER_TEMPLATES.items():
        mix = "/".join(
            str(template[tier]) for tier in (DeviceTier.HIGH, DeviceTier.MID, DeviceTier.LOW)
        )
        POLICIES.add(
            f"cluster-{key.lower()}",
            # Bind the template key at definition time; a plain closure over ``key``
            # would make every factory build the last template.
            lambda rng=None, _key=key: StaticClusterPolicy(_key, rng=rng),
            summary=f"Static Table 4 cluster {key} (high/mid/low = {mix} for K = 20).",
        )


_register_cluster_templates()


def make_policy(
    name: str,
    rng: np.random.Generator | None = None,
    **kwargs: object,
) -> Policy:
    """Instantiate a selection policy by registered name.

    Built-in names: ``fedavg-random`` (alias ``random``), ``power``, ``performance``,
    ``cluster-c1`` … ``cluster-c7``, ``oparticipant``, ``ofl`` and ``autofl``; third-party
    policies registered on :data:`repro.registry.POLICIES` resolve the same way.
    """
    factory = POLICIES.get(name)
    return factory(rng=rng, **kwargs)  # type: ignore[return-value]
