"""The AutoFL policy: the Q-learning agent plugged into the FL aggregation server."""

from __future__ import annotations

import numpy as np

from repro.core.actions import ActionCatalog
from repro.core.agent import AutoFLAgent, QLearningConfig, VectorAutoFLAgent
from repro.core.qtable import QTableStore
from repro.core.reward import RewardCalculator, RewardWeights
from repro.core.selection import Policy, effective_num_participants
from repro.core.state import GlobalState, LocalState, StateEncoder
from repro.exceptions import PolicyError
from repro.registry import POLICIES
from repro.fl.server import RoundTrainingResult
from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.results import BatchRoundExecution, RoundExecution


@POLICIES.register("autofl")
class AutoFLPolicy(Policy):
    """AutoFL: heterogeneity-aware, energy-efficient participant and target selection.

    Every round the policy (1) observes the global configuration and each device's runtime
    conditions and data coverage, (2) asks the Q-learning agent for the K participants and
    their execution targets, and (3) after aggregation converts the measured energies and
    accuracy into per-device rewards that update the Q-tables (paper Figure 7).
    """

    name = "autofl"
    uses_feedback = True

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        config: QLearningConfig | None = None,
        reward_weights: RewardWeights | None = None,
        qtable_sharing: str = QTableStore.PER_TIER,
        catalog: ActionCatalog | None = None,
        vectorized: bool = False,
        init_scale: float = 0.01,
    ) -> None:
        super().__init__(rng)
        self._config = config or QLearningConfig()
        self._reward = RewardCalculator(reward_weights)
        self._qtable_sharing = qtable_sharing
        self._catalog = catalog or ActionCatalog()
        self._encoder = StateEncoder()
        self._vectorized = vectorized
        self._init_scale = init_scale
        self._agent: AutoFLAgent | VectorAutoFLAgent | None = None
        if vectorized:
            self.name = "autofl-fast"

    @property
    def vectorized(self) -> bool:
        """Whether the array-native agent hot path is in use."""
        return self._vectorized

    @property
    def agent(self) -> AutoFLAgent | VectorAutoFLAgent:
        """The underlying Q-learning agent (created on first use)."""
        if self._agent is None:
            raise PolicyError("the AutoFL agent is created on the first select() call")
        return self._agent

    def _ensure_agent(self, ctx: RoundContext) -> AutoFLAgent | VectorAutoFLAgent:
        if self._agent is None:
            if self._vectorized:
                arrays = ctx.environment.fleet_arrays
                self._agent = VectorAutoFLAgent(
                    tier_codes=arrays.tier_codes,
                    device_ids=arrays.device_ids,
                    catalog=self._catalog,
                    config=self._config,
                    qtable_sharing=self._qtable_sharing,
                    rng=self._rng,
                    init_scale=self._init_scale,
                )
            else:
                self._agent = AutoFLAgent(
                    fleet=ctx.environment.fleet,
                    catalog=self._catalog,
                    config=self._config,
                    qtable_sharing=self._qtable_sharing,
                    rng=self._rng,
                    init_scale=self._init_scale,
                )
        return self._agent

    def _encode_states(
        self, ctx: RoundContext
    ) -> tuple[GlobalState, dict[int, LocalState]]:
        environment = ctx.environment
        global_state = self._encoder.encode_global(environment.workload, environment.global_params)
        # Only online candidates are observable: the FL protocol cannot collect runtime
        # state from an unreachable device, so offline devices get no transition (and no
        # Q-update) this round.
        local_states = {
            device_id: self._encoder.encode_local(
                ctx.condition(device_id), environment.data_profile(device_id)
            )
            for device_id in ctx.candidate_ids()
        }
        return global_state, local_states

    def _candidate_rows(self, ctx: RoundContext) -> np.ndarray:
        if ctx.online_mask is None:
            return np.arange(len(ctx.environment.fleet_arrays), dtype=np.int64)
        return np.flatnonzero(ctx.online_mask)

    def select(self, ctx: RoundContext) -> SelectionDecision:
        agent = self._ensure_agent(ctx)
        if self._vectorized:
            assert isinstance(agent, VectorAutoFLAgent)
            environment = ctx.environment
            global_state = self._encoder.encode_global(
                environment.workload, environment.global_params
            )
            rows = self._candidate_rows(ctx)
            conditions = ctx.conditions_as_arrays()
            local_codes = self._encoder.encode_local_codes(
                conditions.take(rows), environment.class_fraction_array[rows]
            )
            selection = agent.select(
                global_state, rows, local_codes, effective_num_participants(ctx)
            )
        else:
            global_state, local_states = self._encode_states(ctx)
            selection = agent.select(
                global_state, local_states, effective_num_participants(ctx)
            )
        targets = {
            device_id: self._catalog.to_target(action_id, ctx.environment.fleet[device_id])
            for device_id, action_id in selection.actions.items()
        }
        return SelectionDecision(participants=selection.participant_ids, targets=targets)

    def feedback_batch(
        self,
        ctx: RoundContext,
        decision: SelectionDecision,
        batch: BatchRoundExecution,
        training: RoundTrainingResult,
    ) -> bool:
        if not self._vectorized:
            return False
        self._ensure_agent(ctx)
        arrays = ctx.environment.fleet_arrays
        rows = arrays.rows_for(decision.participants)
        # Fleet-order per-device energies straight from the batch arrays: participants
        # contribute compute + communication + waiting, everyone else their idle draw.
        fleet_local = batch.idle_j.copy()
        fleet_local[rows] = (batch.compute_j + batch.communication_j) + batch.waiting_j
        selected_mask = np.zeros(len(arrays), dtype=bool)
        selected_mask[rows] = True
        failed_mask = np.zeros(len(arrays), dtype=bool)
        failed_mask[rows] = batch.failed
        self._apply_vector_feedback(
            ctx, fleet_local, selected_mask, failed_mask, float(np.sum(fleet_local)), training
        )
        return True

    def _apply_vector_feedback(
        self,
        ctx: RoundContext,
        fleet_local: np.ndarray,
        selected_mask: np.ndarray,
        failed_mask: np.ndarray,
        global_energy: float,
        training: RoundTrainingResult,
    ) -> None:
        agent = self.agent
        assert isinstance(agent, VectorAutoFLAgent)
        participant_local = fleet_local[selected_mask]
        mean_participant = (
            float(np.mean(participant_local)) if len(participant_local) else 0.0
        )
        self._reward.observe_round(global_energy, mean_participant)
        # Rewards land on the round's observable candidates — the same rows the agent
        # holds pending transitions for (offline devices got no transition).
        candidate_rows = self._candidate_rows(ctx)
        rewards = self._reward.rewards_batch(
            global_energy_j=global_energy,
            local_energy_j=fleet_local[candidate_rows],
            accuracy=training.accuracy,
            previous_accuracy=training.previous_accuracy,
            selected=selected_mask[candidate_rows],
            failed=failed_mask[candidate_rows],
        )
        agent.record_rewards(rewards)

    def feedback(
        self,
        ctx: RoundContext,
        decision: SelectionDecision,
        execution: RoundExecution,
        training: RoundTrainingResult,
    ) -> None:
        agent = self._ensure_agent(ctx)
        if self._vectorized:
            # Slow array-path fallback for callers that only have the scalar execution
            # object; the simulation runner routes through feedback_batch instead.
            assert isinstance(agent, VectorAutoFLAgent)
            fleet_ids = ctx.environment.fleet_arrays.device_ids
            selected_set = set(decision.participants)
            failed_set = set(execution.failed_ids)
            energies = [execution.energy.device(int(d)) for d in fleet_ids]
            fleet_local = np.array(
                [
                    energy.total_j if int(d) in selected_set else energy.idle_j
                    for d, energy in zip(fleet_ids, energies)
                ],
                dtype=np.float64,
            )
            selected_mask = np.array([int(d) in selected_set for d in fleet_ids])
            failed_mask = np.array([int(d) in failed_set for d in fleet_ids])
            self._apply_vector_feedback(
                ctx, fleet_local, selected_mask, failed_mask,
                execution.energy.global_j, training,
            )
            return
        assert isinstance(agent, AutoFLAgent)
        selected = set(decision.participants)
        global_energy = execution.energy.global_j
        participant_energies = [
            execution.energy.device(device_id).total_j for device_id in selected
        ]
        mean_participant = float(np.mean(participant_energies)) if participant_energies else 0.0
        self._reward.observe_round(global_energy, mean_participant)

        # Mid-round failures feed back as unreliability: a failed pick wasted energy and
        # contributed nothing, so its reward collapses to the penalty branch and the
        # Q-tables learn to avoid re-selecting devices in that (state, action).
        failed = set(execution.failed_ids)
        rewards: dict[int, float] = {}
        for device in ctx.environment.fleet:
            device_id = device.device_id
            energy = execution.energy.device(device_id)
            local_energy = energy.total_j if device_id in selected else energy.idle_j
            rewards[device_id] = self._reward.reward(
                global_energy_j=global_energy,
                local_energy_j=local_energy,
                accuracy=training.accuracy,
                previous_accuracy=training.previous_accuracy,
                selected=device_id in selected,
                failed=device_id in failed,
            )
        agent.record_rewards(rewards)

    def reward_history(self) -> list[float]:
        """Mean per-round reward trajectory (Figure 15 convergence analysis)."""
        if self._agent is None:
            return []
        return self._agent.reward_history


POLICIES.add(
    "autofl-fast",
    lambda rng=None, **kwargs: AutoFLPolicy(rng=rng, vectorized=True, **kwargs),
    summary="AutoFL with the vectorised (array-native) agent hot path.",
)
