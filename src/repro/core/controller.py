"""The AutoFL policy: the Q-learning agent plugged into the FL aggregation server."""

from __future__ import annotations

import numpy as np

from repro.core.actions import ActionCatalog
from repro.core.agent import AutoFLAgent, QLearningConfig
from repro.core.qtable import QTableStore
from repro.core.reward import RewardCalculator, RewardWeights
from repro.core.selection import Policy, effective_num_participants
from repro.core.state import GlobalState, LocalState, StateEncoder
from repro.exceptions import PolicyError
from repro.registry import POLICIES
from repro.fl.server import RoundTrainingResult
from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.results import RoundExecution


@POLICIES.register("autofl")
class AutoFLPolicy(Policy):
    """AutoFL: heterogeneity-aware, energy-efficient participant and target selection.

    Every round the policy (1) observes the global configuration and each device's runtime
    conditions and data coverage, (2) asks the Q-learning agent for the K participants and
    their execution targets, and (3) after aggregation converts the measured energies and
    accuracy into per-device rewards that update the Q-tables (paper Figure 7).
    """

    name = "autofl"

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        config: QLearningConfig | None = None,
        reward_weights: RewardWeights | None = None,
        qtable_sharing: str = QTableStore.PER_TIER,
        catalog: ActionCatalog | None = None,
    ) -> None:
        super().__init__(rng)
        self._config = config or QLearningConfig()
        self._reward = RewardCalculator(reward_weights)
        self._qtable_sharing = qtable_sharing
        self._catalog = catalog or ActionCatalog()
        self._encoder = StateEncoder()
        self._agent: AutoFLAgent | None = None

    @property
    def agent(self) -> AutoFLAgent:
        """The underlying Q-learning agent (created on first use)."""
        if self._agent is None:
            raise PolicyError("the AutoFL agent is created on the first select() call")
        return self._agent

    def _ensure_agent(self, ctx: RoundContext) -> AutoFLAgent:
        if self._agent is None:
            self._agent = AutoFLAgent(
                fleet=ctx.environment.fleet,
                catalog=self._catalog,
                config=self._config,
                qtable_sharing=self._qtable_sharing,
                rng=self._rng,
            )
        return self._agent

    def _encode_states(
        self, ctx: RoundContext
    ) -> tuple[GlobalState, dict[int, LocalState]]:
        environment = ctx.environment
        global_state = self._encoder.encode_global(environment.workload, environment.global_params)
        # Only online candidates are observable: the FL protocol cannot collect runtime
        # state from an unreachable device, so offline devices get no transition (and no
        # Q-update) this round.
        local_states = {
            device_id: self._encoder.encode_local(
                ctx.condition(device_id), environment.data_profile(device_id)
            )
            for device_id in ctx.candidate_ids()
        }
        return global_state, local_states

    def select(self, ctx: RoundContext) -> SelectionDecision:
        agent = self._ensure_agent(ctx)
        global_state, local_states = self._encode_states(ctx)
        selection = agent.select(
            global_state, local_states, effective_num_participants(ctx)
        )
        targets = {
            device_id: self._catalog.to_target(action_id, ctx.environment.fleet[device_id])
            for device_id, action_id in selection.actions.items()
        }
        return SelectionDecision(participants=selection.participant_ids, targets=targets)

    def feedback(
        self,
        ctx: RoundContext,
        decision: SelectionDecision,
        execution: RoundExecution,
        training: RoundTrainingResult,
    ) -> None:
        agent = self._ensure_agent(ctx)
        selected = set(decision.participants)
        global_energy = execution.energy.global_j
        participant_energies = [
            execution.energy.device(device_id).total_j for device_id in selected
        ]
        mean_participant = float(np.mean(participant_energies)) if participant_energies else 0.0
        self._reward.observe_round(global_energy, mean_participant)

        # Mid-round failures feed back as unreliability: a failed pick wasted energy and
        # contributed nothing, so its reward collapses to the penalty branch and the
        # Q-tables learn to avoid re-selecting devices in that (state, action).
        failed = set(execution.failed_ids)
        rewards: dict[int, float] = {}
        for device in ctx.environment.fleet:
            device_id = device.device_id
            energy = execution.energy.device(device_id)
            local_energy = energy.total_j if device_id in selected else energy.idle_j
            rewards[device_id] = self._reward.reward(
                global_energy_j=global_energy,
                local_energy_j=local_energy,
                accuracy=training.accuracy,
                previous_accuracy=training.previous_accuracy,
                selected=device_id in selected,
                failed=device_id in failed,
            )
        agent.record_rewards(rewards)

    def reward_history(self) -> list[float]:
        """Mean per-round reward trajectory (Figure 15 convergence analysis)."""
        if self._agent is None:
            return []
        return self._agent.reward_history
