"""AutoFL state features and their discretisation (paper Table 1).

The Q-table is indexed by a *global* state (NN characteristics and FL global parameters —
identical for every device within a training job) and a *local* state (per-device runtime
variance and data coverage).  Continuous features are discretised into the bins of paper
Table 1; :mod:`repro.core.dbscan` shows how such bins can be re-derived from observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GlobalParams
from repro.data.profiles import DeviceDataProfile
from repro.devices.device import RoundConditions
from repro.devices.fleet_arrays import RoundConditionsArrays
from repro.exceptions import PolicyError
from repro.network.bandwidth import BAD_NETWORK_THRESHOLD_MBPS
from repro.nn.workloads import WorkloadProfile


@dataclass(frozen=True)
class GlobalState:
    """Discretised global state: NN-related features plus FL global parameters."""

    s_conv: int
    s_fc: int
    s_rc: int
    s_batch: int
    s_epochs: int
    s_participants: int

    def as_tuple(self) -> tuple[int, ...]:
        """Hashable tuple form used as part of the Q-table key."""
        return (
            self.s_conv,
            self.s_fc,
            self.s_rc,
            self.s_batch,
            self.s_epochs,
            self.s_participants,
        )


@dataclass(frozen=True)
class LocalState:
    """Discretised per-device state: runtime variance plus local data coverage."""

    s_co_cpu: int
    s_co_mem: int
    s_network: int
    s_data: int

    def as_tuple(self) -> tuple[int, ...]:
        """Hashable tuple form used as part of the Q-table key."""
        return (self.s_co_cpu, self.s_co_mem, self.s_network, self.s_data)


def _bin_value(value: float, thresholds: list[float]) -> int:
    """Index of the first threshold exceeding ``value`` (``len(thresholds)`` if none)."""
    for index, threshold in enumerate(thresholds):
        if value < threshold:
            return index
    return len(thresholds)


class StateEncoder:
    """Encodes raw observations into the discrete states of paper Table 1."""

    #: ``S_CONV``: none, small (<10), medium (<20), large (<30), larger (>=30).  A leading
    #: "none" bin is added to Table 1's bins so models without a layer family are
    #: distinguishable from models with a few such layers.
    CONV_THRESHOLDS = [0.5, 10.0, 20.0, 30.0]
    #: ``S_FC``: none, small (<10), large (>=10).
    FC_THRESHOLDS = [0.5, 10.0]
    #: ``S_RC``: none, small (<5), medium (<10), large (>=10).
    RC_THRESHOLDS = [0.5, 5.0, 10.0]
    #: ``S_B``: small (<8), medium (<32), large (>=32).
    BATCH_THRESHOLDS = [8.0, 32.0]
    #: ``S_E``: small (<5), medium (<10), large (>=10).
    EPOCH_THRESHOLDS = [5.0, 10.0]
    #: ``S_K``: small (<10), medium (<50), large (>=50).
    PARTICIPANT_THRESHOLDS = [10.0, 50.0]
    #: ``S_Co_CPU`` / ``S_Co_MEM``: none (0 %), small (<25 %), medium (<75 %), large.
    UTILIZATION_THRESHOLDS = [1e-9, 0.25, 0.75]
    #: ``S_Data``: small (<25 %), medium (<100 %), large (=100 %) of classes present.
    DATA_THRESHOLDS = [0.25, 0.999999]

    def encode_global(self, workload: WorkloadProfile, params: GlobalParams) -> GlobalState:
        """Discretise the NN characteristics and FL global parameters."""
        return GlobalState(
            s_conv=_bin_value(workload.num_conv_layers, self.CONV_THRESHOLDS),
            s_fc=_bin_value(workload.num_fc_layers, self.FC_THRESHOLDS),
            s_rc=_bin_value(workload.num_rc_layers, self.RC_THRESHOLDS),
            s_batch=_bin_value(params.batch_size, self.BATCH_THRESHOLDS),
            s_epochs=_bin_value(params.local_epochs, self.EPOCH_THRESHOLDS),
            s_participants=_bin_value(params.num_participants, self.PARTICIPANT_THRESHOLDS),
        )

    def encode_local(
        self, conditions: RoundConditions, data_profile: DeviceDataProfile
    ) -> LocalState:
        """Discretise one device's runtime conditions and data coverage."""
        if conditions is None or data_profile is None:
            raise PolicyError("conditions and data_profile are required to encode a local state")
        return LocalState(
            s_co_cpu=_bin_value(conditions.co_cpu_util, self.UTILIZATION_THRESHOLDS),
            s_co_mem=_bin_value(conditions.co_mem_util, self.UTILIZATION_THRESHOLDS),
            s_network=0 if conditions.bandwidth_mbps > BAD_NETWORK_THRESHOLD_MBPS else 1,
            s_data=_bin_value(data_profile.class_fraction, self.DATA_THRESHOLDS),
        )

    # ------------------------------------------------------------------ batch encoding
    #: Bin counts per local-state feature — the mixed radix of :meth:`local_code`.
    NUM_UTILIZATION_BINS = len(UTILIZATION_THRESHOLDS) + 1
    NUM_NETWORK_BINS = 2
    NUM_DATA_BINS = len(DATA_THRESHOLDS) + 1
    #: Total number of distinct packed local states (4 * 4 * 2 * 3 = 96).
    NUM_LOCAL_CODES = (
        NUM_UTILIZATION_BINS * NUM_UTILIZATION_BINS * NUM_NETWORK_BINS * NUM_DATA_BINS
    )

    @classmethod
    def local_code(cls, state: LocalState) -> int:
        """Pack a :class:`LocalState` into its dense integer code in ``[0, 96)``."""
        return (
            (state.s_co_cpu * cls.NUM_UTILIZATION_BINS + state.s_co_mem)
            * cls.NUM_NETWORK_BINS
            + state.s_network
        ) * cls.NUM_DATA_BINS + state.s_data

    def encode_local_codes(
        self, conditions: RoundConditionsArrays, class_fractions: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`encode_local` over aligned condition/coverage arrays.

        Returns packed local-state codes (``local_code`` of the per-device
        :class:`LocalState`).  Binning uses ``searchsorted(side="right")``, which is
        exactly ``_bin_value``'s first-threshold-exceeding rule including the
        on-threshold tie (a value equal to a threshold lands in the upper bin in both).
        """
        utilization = np.asarray(self.UTILIZATION_THRESHOLDS, dtype=np.float64)
        data = np.asarray(self.DATA_THRESHOLDS, dtype=np.float64)
        s_co_cpu = np.searchsorted(utilization, conditions.co_cpu_util, side="right")
        s_co_mem = np.searchsorted(utilization, conditions.co_mem_util, side="right")
        s_network = np.where(conditions.bandwidth_mbps > BAD_NETWORK_THRESHOLD_MBPS, 0, 1)
        s_data = np.searchsorted(data, class_fractions, side="right")
        return (
            (s_co_cpu * self.NUM_UTILIZATION_BINS + s_co_mem) * self.NUM_NETWORK_BINS
            + s_network
        ) * self.NUM_DATA_BINS + s_data
