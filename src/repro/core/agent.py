"""The AutoFL Q-learning agent (paper Algorithm 1).

The agent maintains the Q-tables, performs epsilon-greedy participant/target selection and
applies the Q-learning update once the next round's state is observed (the bootstrap term
``max_a' Q(S', a')`` of Algorithm 1 needs the *new* state, so updates for round *t* are
completed at the start of round *t + 1*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.actions import ActionCatalog, IDLE_ACTION
from repro.core.qtable import QTableStore
from repro.core.state import GlobalState, LocalState
from repro.devices.fleet import Fleet
from repro.exceptions import PolicyError


@dataclass(frozen=True)
class QLearningConfig:
    """Hyperparameters of the Q-learning agent (paper Section 5.3)."""

    learning_rate: float = 0.9
    discount_factor: float = 0.1
    epsilon: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise PolicyError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.discount_factor < 1.0:
            raise PolicyError("discount_factor must be in [0, 1)")
        if not 0.0 <= self.epsilon <= 1.0:
            raise PolicyError("epsilon must be in [0, 1]")


@dataclass
class PendingTransition:
    """A (state, action, reward) tuple awaiting its next-state bootstrap."""

    global_state: GlobalState
    local_state: LocalState
    action_id: int
    reward: float = 0.0
    reward_ready: bool = False


@dataclass
class AgentSelection:
    """Result of one agent decision: ranked participants and their chosen actions."""

    participant_ids: list[int]
    actions: dict[int, int]
    explored: bool = False
    pending: dict[int, PendingTransition] = field(default_factory=dict)


class AutoFLAgent:
    """Per-fleet Q-learning agent selecting participants and execution targets."""

    def __init__(
        self,
        fleet: Fleet,
        catalog: ActionCatalog | None = None,
        config: QLearningConfig | None = None,
        qtable_sharing: str = QTableStore.PER_TIER,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._fleet = fleet
        self._catalog = catalog or ActionCatalog()
        self._config = config or QLearningConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._store = QTableStore(sharing=qtable_sharing, rng=self._rng)
        self._pending: dict[int, PendingTransition] = {}
        self._reward_history: list[float] = []

    @property
    def catalog(self) -> ActionCatalog:
        """The per-device execution-target action catalog."""
        return self._catalog

    @property
    def config(self) -> QLearningConfig:
        """The Q-learning hyperparameters."""
        return self._config

    @property
    def qtable_store(self) -> QTableStore:
        """The underlying Q-table store."""
        return self._store

    @property
    def reward_history(self) -> list[float]:
        """Mean per-round reward over time (used for convergence analysis, Figure 15)."""
        return list(self._reward_history)

    # ------------------------------------------------------------------ selection
    def _device_value(
        self, device_id: int, global_state: GlobalState, local_state: LocalState
    ) -> tuple[int, float]:
        device = self._fleet[device_id]
        table = self._store.table_for(device_id, device.tier)
        return table.best_action(global_state, local_state, self._catalog.action_ids)

    def select(
        self,
        global_state: GlobalState,
        local_states: dict[int, LocalState],
        num_participants: int,
    ) -> AgentSelection:
        """Epsilon-greedy selection of participants and their execution-target actions.

        Before ranking, any pending Q-updates from the previous round are completed using
        the newly observed states (the ``S'`` of Algorithm 1).
        """
        if num_participants <= 0:
            raise PolicyError("num_participants must be positive")
        if len(local_states) < num_participants:
            raise PolicyError("not enough devices with observed local states")
        self._complete_pending_updates(global_state, local_states)

        device_ids = list(local_states)
        explored = bool(self._rng.random() < self._config.epsilon)
        if explored:
            chosen = list(
                self._rng.choice(device_ids, size=num_participants, replace=False).astype(int)
            )
            actions = {
                device_id: int(self._rng.choice(self._catalog.action_ids))
                for device_id in chosen
            }
        else:
            # Ties (devices sharing a Q-table entry) are broken randomly to avoid a biased
            # selection among equivalent devices (paper Section 4.2).
            scored = [
                (
                    device_id,
                    *self._device_value(device_id, global_state, local_states[device_id]),
                )
                for device_id in device_ids
            ]
            jitter = {device_id: self._rng.random() * 1e-6 for device_id in device_ids}
            scored.sort(key=lambda item: item[2] + jitter[item[0]], reverse=True)
            top = scored[:num_participants]
            chosen = [device_id for device_id, _action, _value in top]
            actions = {device_id: action for device_id, action, _value in top}

        pending: dict[int, PendingTransition] = {}
        for device_id in device_ids:
            action_id = actions.get(device_id, IDLE_ACTION)
            pending[device_id] = PendingTransition(
                global_state=global_state,
                local_state=local_states[device_id],
                action_id=action_id,
            )
        self._pending = pending
        return AgentSelection(
            participant_ids=chosen, actions=actions, explored=explored, pending=pending
        )

    # ------------------------------------------------------------------ learning
    def record_rewards(self, rewards: dict[int, float]) -> None:
        """Attach the computed per-device rewards to the round's pending transitions."""
        if not self._pending:
            raise PolicyError("record_rewards called with no pending transitions")
        for device_id, reward in rewards.items():
            transition = self._pending.get(device_id)
            if transition is None:
                continue
            transition.reward = reward
            transition.reward_ready = True
        ready = [t.reward for t in self._pending.values() if t.reward_ready]
        if ready:
            self._reward_history.append(float(np.mean(ready)))

    def _complete_pending_updates(
        self, new_global_state: GlobalState, new_local_states: dict[int, LocalState]
    ) -> None:
        """Apply the Q-learning update of Algorithm 1 for the previous round's transitions."""
        if not self._pending:
            return
        lr = self._config.learning_rate
        discount = self._config.discount_factor
        for device_id, transition in self._pending.items():
            if not transition.reward_ready:
                continue
            new_local = new_local_states.get(device_id)
            if new_local is None:
                # The device is unobservable this round (offline or churned away under
                # fleet dynamics).  Bootstrap from the stored state instead of dropping
                # the update — exact for a zero discount factor, a close approximation
                # for the paper's 0.1 — so rewards for unreliable picks (which are
                # exactly the devices likely to be offline next round) always land.
                new_local = transition.local_state
            device = self._fleet[device_id]
            table = self._store.table_for(device_id, device.tier)
            action_ids = self._catalog.action_ids
            if transition.action_id == IDLE_ACTION:
                # Track a dedicated idle entry so non-participation also accumulates value.
                current = table.get(transition.global_state, transition.local_state, IDLE_ACTION)
                lookup_ids = action_ids + [IDLE_ACTION]
            else:
                current = table.get(
                    transition.global_state, transition.local_state, transition.action_id
                )
                lookup_ids = action_ids
            _best_next_action, best_next_value = table.best_action(
                new_global_state, new_local, lookup_ids
            )
            updated = current + lr * (
                transition.reward + discount * best_next_value - current
            )
            table.set(
                transition.global_state, transition.local_state, transition.action_id, updated
            )
        self._pending = {}

    def flush(self, fallback_local_states: dict[int, LocalState] | None = None) -> None:
        """Finalise any pending updates without a next state (end of a training job).

        Uses the stored transition's own state as the bootstrap state, which is exact when
        the discount factor is zero and a close approximation for the paper's 0.1.
        """
        if not self._pending:
            return
        states = {
            device_id: transition.local_state for device_id, transition in self._pending.items()
        }
        if fallback_local_states:
            states.update(fallback_local_states)
        any_transition = next(iter(self._pending.values()))
        self._complete_pending_updates(any_transition.global_state, states)
