"""The AutoFL Q-learning agent (paper Algorithm 1).

The agent maintains the Q-tables, performs epsilon-greedy participant/target selection and
applies the Q-learning update once the next round's state is observed (the bootstrap term
``max_a' Q(S', a')`` of Algorithm 1 needs the *new* state, so updates for round *t* are
completed at the start of round *t + 1*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.actions import ActionCatalog, IDLE_ACTION
from repro.core.qtable import QTableStore, VectorQTableStore
from repro.core.state import GlobalState, LocalState, StateEncoder
from repro.devices.fleet import Fleet
from repro.devices.fleet_arrays import TIER_ORDER
from repro.exceptions import PolicyError


@dataclass(frozen=True)
class QLearningConfig:
    """Hyperparameters of the Q-learning agent (paper Section 5.3)."""

    learning_rate: float = 0.9
    discount_factor: float = 0.1
    epsilon: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise PolicyError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.discount_factor < 1.0:
            raise PolicyError("discount_factor must be in [0, 1)")
        if not 0.0 <= self.epsilon <= 1.0:
            raise PolicyError("epsilon must be in [0, 1]")


@dataclass
class PendingTransition:
    """A (state, action, reward) tuple awaiting its next-state bootstrap."""

    global_state: GlobalState
    local_state: LocalState
    action_id: int
    reward: float = 0.0
    reward_ready: bool = False


@dataclass
class AgentSelection:
    """Result of one agent decision: ranked participants and their chosen actions."""

    participant_ids: list[int]
    actions: dict[int, int]
    explored: bool = False
    pending: dict[int, PendingTransition] = field(default_factory=dict)


class AutoFLAgent:
    """Per-fleet Q-learning agent selecting participants and execution targets."""

    def __init__(
        self,
        fleet: Fleet,
        catalog: ActionCatalog | None = None,
        config: QLearningConfig | None = None,
        qtable_sharing: str = QTableStore.PER_TIER,
        rng: np.random.Generator | None = None,
        init_scale: float = 0.01,
    ) -> None:
        self._fleet = fleet
        self._catalog = catalog or ActionCatalog()
        self._config = config or QLearningConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._store = QTableStore(sharing=qtable_sharing, rng=self._rng, init_scale=init_scale)
        self._pending: dict[int, PendingTransition] = {}
        self._reward_history: list[float] = []

    @property
    def catalog(self) -> ActionCatalog:
        """The per-device execution-target action catalog."""
        return self._catalog

    @property
    def config(self) -> QLearningConfig:
        """The Q-learning hyperparameters."""
        return self._config

    @property
    def qtable_store(self) -> QTableStore:
        """The underlying Q-table store."""
        return self._store

    @property
    def reward_history(self) -> list[float]:
        """Mean per-round reward over time (used for convergence analysis, Figure 15)."""
        return list(self._reward_history)

    # ------------------------------------------------------------------ selection
    def _device_value(
        self, device_id: int, global_state: GlobalState, local_state: LocalState
    ) -> tuple[int, float]:
        device = self._fleet[device_id]
        table = self._store.table_for(device_id, device.tier)
        return table.best_action(global_state, local_state, self._catalog.action_ids)

    def select(
        self,
        global_state: GlobalState,
        local_states: dict[int, LocalState],
        num_participants: int,
    ) -> AgentSelection:
        """Epsilon-greedy selection of participants and their execution-target actions.

        Before ranking, any pending Q-updates from the previous round are completed using
        the newly observed states (the ``S'`` of Algorithm 1).
        """
        if num_participants <= 0:
            raise PolicyError("num_participants must be positive")
        if len(local_states) < num_participants:
            raise PolicyError("not enough devices with observed local states")
        self._complete_pending_updates(global_state, local_states)

        device_ids = list(local_states)
        explored = bool(self._rng.random() < self._config.epsilon)
        if explored:
            chosen = list(
                self._rng.choice(device_ids, size=num_participants, replace=False).astype(int)
            )
            actions = {
                device_id: int(self._rng.choice(self._catalog.action_ids))
                for device_id in chosen
            }
        else:
            # Ties (devices sharing a Q-table entry) are broken randomly to avoid a biased
            # selection among equivalent devices (paper Section 4.2).
            scored = [
                (
                    device_id,
                    *self._device_value(device_id, global_state, local_states[device_id]),
                )
                for device_id in device_ids
            ]
            jitter = {device_id: self._rng.random() * 1e-6 for device_id in device_ids}
            scored.sort(key=lambda item: item[2] + jitter[item[0]], reverse=True)
            top = scored[:num_participants]
            chosen = [device_id for device_id, _action, _value in top]
            actions = {device_id: action for device_id, action, _value in top}

        pending: dict[int, PendingTransition] = {}
        for device_id in device_ids:
            action_id = actions.get(device_id, IDLE_ACTION)
            pending[device_id] = PendingTransition(
                global_state=global_state,
                local_state=local_states[device_id],
                action_id=action_id,
            )
        self._pending = pending
        return AgentSelection(
            participant_ids=chosen, actions=actions, explored=explored, pending=pending
        )

    # ------------------------------------------------------------------ learning
    def record_rewards(self, rewards: dict[int, float]) -> None:
        """Attach the computed per-device rewards to the round's pending transitions."""
        if not self._pending:
            raise PolicyError("record_rewards called with no pending transitions")
        for device_id, reward in rewards.items():
            transition = self._pending.get(device_id)
            if transition is None:
                continue
            transition.reward = reward
            transition.reward_ready = True
        ready = [t.reward for t in self._pending.values() if t.reward_ready]
        if ready:
            self._reward_history.append(float(np.mean(ready)))

    def _complete_pending_updates(
        self, new_global_state: GlobalState, new_local_states: dict[int, LocalState]
    ) -> None:
        """Apply the Q-learning update of Algorithm 1 for the previous round's transitions."""
        if not self._pending:
            return
        lr = self._config.learning_rate
        discount = self._config.discount_factor
        for device_id, transition in self._pending.items():
            if not transition.reward_ready:
                continue
            new_local = new_local_states.get(device_id)
            if new_local is None:
                # The device is unobservable this round (offline or churned away under
                # fleet dynamics).  Bootstrap from the stored state instead of dropping
                # the update — exact for a zero discount factor, a close approximation
                # for the paper's 0.1 — so rewards for unreliable picks (which are
                # exactly the devices likely to be offline next round) always land.
                new_local = transition.local_state
            device = self._fleet[device_id]
            table = self._store.table_for(device_id, device.tier)
            action_ids = self._catalog.action_ids
            if transition.action_id == IDLE_ACTION:
                # Track a dedicated idle entry so non-participation also accumulates value.
                current = table.get(transition.global_state, transition.local_state, IDLE_ACTION)
                lookup_ids = action_ids + [IDLE_ACTION]
            else:
                current = table.get(
                    transition.global_state, transition.local_state, transition.action_id
                )
                lookup_ids = action_ids
            _best_next_action, best_next_value = table.best_action(
                new_global_state, new_local, lookup_ids
            )
            updated = current + lr * (
                transition.reward + discount * best_next_value - current
            )
            table.set(
                transition.global_state, transition.local_state, transition.action_id, updated
            )
        self._pending = {}

    def flush(self, fallback_local_states: dict[int, LocalState] | None = None) -> None:
        """Finalise any pending updates without a next state (end of a training job).

        Uses the stored transition's own state as the bootstrap state, which is exact when
        the discount factor is zero and a close approximation for the paper's 0.1.
        """
        if not self._pending:
            return
        states = {
            device_id: transition.local_state for device_id, transition in self._pending.items()
        }
        if fallback_local_states:
            states.update(fallback_local_states)
        any_transition = next(iter(self._pending.values()))
        self._complete_pending_updates(any_transition.global_state, states)


@dataclass
class _VectorPending:
    """One round's pending transitions of :class:`VectorAutoFLAgent` as arrays."""

    global_tuple: tuple[int, ...]
    rows: np.ndarray
    local_codes: np.ndarray
    action_cols: np.ndarray
    rewards: np.ndarray | None = None


@dataclass
class VectorAgentSelection:
    """Result of one vectorised agent decision."""

    participant_ids: list[int]
    actions: dict[int, int]
    explored: bool = False


class VectorAutoFLAgent:
    """Array-native Q-learning agent: the AutoFL hot path without per-device Python.

    State binning happens upstream as packed local codes
    (:meth:`~repro.core.state.StateEncoder.encode_local_codes`); lookup/argmax and the
    Q-update run as fancy indexing into :class:`VectorQTableStore` blocks.

    Semantics relative to :class:`AutoFLAgent`: selection draws consume the *same* RNG
    stream (one epsilon draw, then either the explore choices or one jitter draw per
    candidate), and the Q-update is **batch-synchronous** — every bootstrap reads the
    pre-round table, and duplicate writes to one shared cell fold with the exact
    sequential recurrence.  With per-device table sharing no two candidates share a cell,
    so batch-synchronous equals the scalar agent's sequential update exactly; with
    per-tier sharing the scalar agent's intra-round read-after-write ordering is
    intentionally not reproduced (that ordering is an artefact of its Python loop).
    """

    def __init__(
        self,
        tier_codes: np.ndarray,
        device_ids: np.ndarray,
        catalog: ActionCatalog | None = None,
        config: QLearningConfig | None = None,
        qtable_sharing: str = QTableStore.PER_TIER,
        rng: np.random.Generator | None = None,
        init_scale: float = 0.01,
    ) -> None:
        if qtable_sharing not in (QTableStore.PER_DEVICE, QTableStore.PER_TIER):
            raise PolicyError(f"unknown qtable sharing mode {qtable_sharing!r}")
        self._tier_codes = np.asarray(tier_codes, dtype=np.int64)
        self._device_ids = np.asarray(device_ids, dtype=np.int64)
        self._catalog = catalog or ActionCatalog()
        self._config = config or QLearningConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._sharing = qtable_sharing
        self._action_ids = self._catalog.action_ids
        self._action_id_array = np.array(self._action_ids, dtype=np.int64)
        num_keys = (
            len(self._tier_codes) if qtable_sharing == QTableStore.PER_DEVICE else len(TIER_ORDER)
        )
        self._store = VectorQTableStore(
            num_keys=num_keys,
            num_local_codes=StateEncoder.NUM_LOCAL_CODES,
            num_actions=len(self._action_ids),
            rng=self._rng,
            init_scale=init_scale,
        )
        self._pending: _VectorPending | None = None
        self._reward_history: list[float] = []

    @property
    def catalog(self) -> ActionCatalog:
        """The per-device execution-target action catalog."""
        return self._catalog

    @property
    def config(self) -> QLearningConfig:
        """The Q-learning hyperparameters."""
        return self._config

    @property
    def qtable_store(self) -> VectorQTableStore:
        """The underlying dense Q-block store."""
        return self._store

    @property
    def reward_history(self) -> list[float]:
        """Mean per-round reward over time (used for convergence analysis, Figure 15)."""
        return list(self._reward_history)

    def _key_indices(self, rows: np.ndarray) -> np.ndarray:
        if self._sharing == QTableStore.PER_DEVICE:
            return rows
        return self._tier_codes[rows]

    # ------------------------------------------------------------------ selection
    def select(
        self,
        global_state: GlobalState,
        candidate_rows: np.ndarray,
        local_codes: np.ndarray,
        num_participants: int,
    ) -> VectorAgentSelection:
        """Epsilon-greedy selection over the observable candidates (fleet rows).

        ``candidate_rows`` / ``local_codes`` are aligned, in fleet order.  Pending
        Q-updates from the previous round complete first, exactly like the scalar agent.
        """
        if num_participants <= 0:
            raise PolicyError("num_participants must be positive")
        if len(candidate_rows) < num_participants:
            raise PolicyError("not enough devices with observed local states")
        global_tuple = global_state.as_tuple()
        self._complete_pending_updates(global_tuple, candidate_rows, local_codes)

        candidate_ids = self._device_ids[candidate_rows]
        num_actions = len(self._action_ids)
        idle_col = self._store.idle_column
        explored = bool(self._rng.random() < self._config.epsilon)
        action_cols = np.full(len(candidate_rows), idle_col, dtype=np.int64)
        if explored:
            chosen_ids = self._rng.choice(
                candidate_ids, size=num_participants, replace=False
            ).astype(np.int64)
            sorter = np.argsort(candidate_ids, kind="stable")
            positions = sorter[np.searchsorted(candidate_ids, chosen_ids, sorter=sorter)]
            actions: dict[int, int] = {}
            for position, device_id in zip(positions, chosen_ids):
                action_id = int(self._rng.choice(self._action_ids))
                actions[int(device_id)] = action_id
                action_cols[position] = self._action_ids.index(action_id)
            chosen = [int(device_id) for device_id in chosen_ids]
        else:
            block = self._store.block(global_tuple)
            key_idx = self._key_indices(candidate_rows)
            values = block[key_idx, local_codes, :num_actions]
            # First-max-wins argmax matches the scalar best_action's strict-> scan.
            best_cols = np.argmax(values, axis=1)
            best_values = values[np.arange(len(values)), best_cols]
            # Ties (devices sharing a Q-table entry) are broken randomly to avoid a
            # biased selection among equivalent devices (paper Section 4.2).
            jitter = self._rng.random(len(candidate_rows)) * 1e-6
            order = np.argsort(-(best_values + jitter), kind="stable")
            top = order[:num_participants]
            action_cols[top] = best_cols[top]
            chosen = [int(device_id) for device_id in candidate_ids[top]]
            actions = {
                int(candidate_ids[position]): self._action_ids[int(best_cols[position])]
                for position in top
            }
        self._pending = _VectorPending(
            global_tuple=global_tuple,
            rows=np.asarray(candidate_rows, dtype=np.int64),
            local_codes=np.asarray(local_codes, dtype=np.int64),
            action_cols=action_cols,
        )
        return VectorAgentSelection(participant_ids=chosen, actions=actions, explored=explored)

    # ------------------------------------------------------------------ learning
    def record_rewards(self, rewards: np.ndarray) -> None:
        """Attach per-candidate rewards (aligned on the pending candidate rows)."""
        if self._pending is None:
            raise PolicyError("record_rewards called with no pending transitions")
        if len(rewards) != len(self._pending.rows):
            raise PolicyError("rewards must align with the pending candidate rows")
        self._pending.rewards = np.asarray(rewards, dtype=np.float64)
        self._reward_history.append(float(np.mean(self._pending.rewards)))

    def _complete_pending_updates(
        self,
        new_global_tuple: tuple[int, ...],
        new_candidate_rows: np.ndarray,
        new_local_codes: np.ndarray,
    ) -> None:
        """Batch-synchronous Q-update of Algorithm 1 for the previous round."""
        pending = self._pending
        self._pending = None
        if pending is None or pending.rewards is None:
            return
        lr = self._config.learning_rate
        discount = self._config.discount_factor
        num_actions = len(self._action_ids)
        idle_col = self._store.idle_column

        # Bootstrap state: the newly observed local code where the device is still
        # observable, otherwise the stored transition's own code (offline fallback).
        new_code_of = np.full(len(self._device_ids), -1, dtype=np.int64)
        new_code_of[new_candidate_rows] = new_local_codes
        observed = new_code_of[pending.rows]
        bootstrap_codes = np.where(observed >= 0, observed, pending.local_codes)

        block_old = self._store.block(pending.global_tuple)
        block_new = self._store.block(new_global_tuple)
        key_idx = self._key_indices(pending.rows)
        current = block_old[key_idx, pending.local_codes, pending.action_cols]
        next_values = block_new[key_idx, bootstrap_codes, :]
        # Idle transitions bootstrap over actions plus the dedicated idle entry, so
        # non-participation also accumulates value (mirrors the scalar agent).
        best_next_actions = np.max(next_values[:, :num_actions], axis=1)
        best_next_all = np.maximum(best_next_actions, next_values[:, idle_col])
        best_next = np.where(
            pending.action_cols == idle_col, best_next_all, best_next_actions
        )
        targets = pending.rewards + discount * best_next

        # Scatter with duplicate folding: candidates sharing one (key, state, action)
        # cell apply the exact sequential recurrence
        #   c_{i+1} = (1 - lr) * c_i + lr * t_i
        # in candidate order.  Cells hit once use the scalar agent's literal
        # ``c + lr * (t - c)`` expression so per-device sharing matches it bit-for-bit.
        flat = (
            key_idx * block_old.shape[1] + pending.local_codes
        ) * (num_actions + 1) + pending.action_cols
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        sorted_targets = targets[order]
        unique_cells, first_index, counts = np.unique(
            sorted_flat, return_index=True, return_counts=True
        )
        first_current = current[order][first_index]
        first_targets = sorted_targets[first_index]
        position = np.arange(len(sorted_flat)) - np.repeat(first_index, counts)
        group_size = np.repeat(counts, counts)
        weights = lr * (1.0 - lr) ** (group_size - 1 - position)
        folded = (1.0 - lr) ** counts * first_current + np.add.reduceat(
            weights * sorted_targets, first_index
        )
        final = np.where(
            counts == 1,
            first_current + lr * (first_targets - first_current),
            folded,
        )
        block_old.reshape(-1)[unique_cells] = final

    def flush(self) -> None:
        """Finalise pending updates without a next state (end of a training job).

        Bootstraps from each transition's own stored state, which is exact for a zero
        discount factor and a close approximation for the paper's 0.1.
        """
        pending = self._pending
        if pending is None:
            return
        self._complete_pending_updates(
            pending.global_tuple, pending.rows, pending.local_codes
        )
