"""Oracle selection policies ``Oparticipant`` and ``OFL`` (paper Section 5.1).

``Oparticipant`` picks, with full knowledge of the round's true conditions and of every
device's data profile, the cluster of K participants that maximises a performance-per-watt
proxy (expected convergence progress divided by the round's global energy).  ``OFL``
additionally chooses each selected device's execution target, exploiting straggler slack
with lower DVFS steps or the GPU.  AutoFL's prediction accuracy (Figure 12) is measured
against ``OFL``'s decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.actions import ActionCatalog
from repro.core.selection import CLUSTER_TEMPLATES, Policy, scale_template
from repro.devices.device import ExecutionTarget
from repro.devices.specs import DeviceTier
from repro.exceptions import PolicyError
from repro.registry import POLICIES
from repro.fl.surrogate import STALL_QUALITY_THRESHOLD
from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.results import DeviceRoundOutcome
from repro.sim.round_engine import RoundEngine


@dataclass(frozen=True)
class _CandidatePlan:
    """One evaluated candidate selection."""

    template_name: str
    participants: list[int]
    targets: dict[int, ExecutionTarget]
    round_time_s: float
    global_energy_j: float
    expected_gain: float

    @property
    def score(self) -> float:
        """PPW proxy: expected convergence progress per Joule of global energy."""
        if self.global_energy_j <= 0:
            return 0.0
        return (0.05 + self.expected_gain) / self.global_energy_j


@POLICIES.register("oparticipant", aliases=("o-participant", "oracle-participant"))
class OracleParticipantPolicy(Policy):
    """``Oparticipant``: oracle participant selection with default execution targets."""

    name = "oparticipant"

    #: Composite device-ranking weights used to realise a template into concrete devices.
    DATA_WEIGHT = 3.0
    INTERFERENCE_WEIGHT = 1.0
    NETWORK_WEIGHT = 0.5

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__(rng)
        self._catalog = ActionCatalog()

    # ------------------------------------------------------------------ device ranking
    def _device_goodness(self, ctx: RoundContext, device_id: int) -> float:
        profile = ctx.environment.data_profile(device_id)
        condition = ctx.condition(device_id)
        network_score = min(1.0, condition.bandwidth_mbps / 100.0)
        return (
            self.DATA_WEIGHT * profile.data_quality
            - self.INTERFERENCE_WEIGHT * (condition.co_cpu_util + 0.5 * condition.co_mem_util)
            + self.NETWORK_WEIGHT * network_score
        )

    def _realize_template(
        self, ctx: RoundContext, template: dict[DeviceTier, int]
    ) -> list[int]:
        fleet = ctx.environment.fleet
        num_participants = ctx.environment.global_params.num_participants
        counts = scale_template(template, num_participants)
        chosen: list[int] = []
        for tier in (DeviceTier.HIGH, DeviceTier.MID, DeviceTier.LOW):
            wanted = counts.get(tier, 0)
            if wanted == 0:
                continue
            candidates = [device.device_id for device in fleet.by_tier(tier)]
            candidates.sort(key=lambda device_id: self._device_goodness(ctx, device_id), reverse=True)
            chosen.extend(candidates[:wanted])
        if len(chosen) < num_participants:
            remaining = [
                device_id
                for device_id in sorted(
                    fleet.device_ids,
                    key=lambda device_id: self._device_goodness(ctx, device_id),
                    reverse=True,
                )
                if device_id not in set(chosen)
            ]
            chosen.extend(remaining[: num_participants - len(chosen)])
        return chosen[:num_participants]

    # ------------------------------------------------------------------ plan evaluation
    def _expected_gain(self, ctx: RoundContext, participants: list[int]) -> float:
        profiles = [ctx.environment.data_profile(device_id) for device_id in participants]
        total_samples = sum(profile.num_samples for profile in profiles)
        if total_samples == 0:
            return 0.0
        quality = (
            sum(profile.data_quality * profile.num_samples for profile in profiles) / total_samples
        )
        if quality <= STALL_QUALITY_THRESHOLD:
            return 0.0
        return (quality - STALL_QUALITY_THRESHOLD) / (1.0 - STALL_QUALITY_THRESHOLD)

    def _plan_energy(
        self,
        ctx: RoundContext,
        outcomes: dict[int, DeviceRoundOutcome],
    ) -> tuple[float, float]:
        round_time = max(outcome.total_time_s for outcome in outcomes.values())
        active_energy = sum(outcome.energy.active_j for outcome in outcomes.values())
        idle_energy = sum(
            device.idle_power() * round_time
            for device in ctx.environment.fleet
            if device.device_id not in outcomes
        )
        return round_time, active_energy + idle_energy

    def _targets_for(
        self, ctx: RoundContext, engine: RoundEngine, participants: list[int]
    ) -> dict[int, ExecutionTarget]:
        """Execution targets used when evaluating a plan.  Overridden by :class:`OracleFLPolicy`."""
        return {
            device_id: ctx.environment.fleet[device_id].default_target()
            for device_id in participants
        }

    def _evaluate_plan(
        self, ctx: RoundContext, engine: RoundEngine, name: str, participants: list[int]
    ) -> _CandidatePlan:
        targets = self._targets_for(ctx, engine, participants)
        outcomes = {
            device_id: engine.estimate_device(
                ctx.environment.fleet[device_id], targets[device_id], ctx.condition(device_id)
            )
            for device_id in participants
        }
        round_time, global_energy = self._plan_energy(ctx, outcomes)
        return _CandidatePlan(
            template_name=name,
            participants=participants,
            targets=targets,
            round_time_s=round_time,
            global_energy_j=global_energy,
            expected_gain=self._expected_gain(ctx, participants),
        )

    def select(self, ctx: RoundContext) -> SelectionDecision:
        engine = RoundEngine(ctx.environment)
        plans = [
            self._evaluate_plan(ctx, engine, name, self._realize_template(ctx, template))
            for name, template in CLUSTER_TEMPLATES.items()
        ]
        if not plans:
            raise PolicyError("no candidate plans could be evaluated")
        best = max(plans, key=lambda plan: plan.score)
        return SelectionDecision(participants=best.participants, targets=best.targets)


@POLICIES.register("ofl", aliases=("o-fl", "oracle-fl", "oracle"))
class OracleFLPolicy(OracleParticipantPolicy):
    """``OFL``: oracle participant selection plus per-device execution-target selection."""

    name = "ofl"

    def _targets_for(
        self, ctx: RoundContext, engine: RoundEngine, participants: list[int]
    ) -> dict[int, ExecutionTarget]:
        fleet = ctx.environment.fleet
        # First pass with default (highest-performance CPU) targets establishes the round
        # deadline set by the slowest participant.
        default_outcomes = {
            device_id: engine.estimate_device(
                fleet[device_id], fleet[device_id].default_target(), ctx.condition(device_id)
            )
            for device_id in participants
        }
        deadline = max(outcome.total_time_s for outcome in default_outcomes.values())
        targets: dict[int, ExecutionTarget] = {}
        for device_id in participants:
            device = fleet[device_id]
            condition = ctx.condition(device_id)
            best_target = device.default_target()
            best_energy = default_outcomes[device_id].energy.active_j
            best_time = default_outcomes[device_id].total_time_s
            for action_id in self._catalog.action_ids:
                target = self._catalog.to_target(action_id, device)
                outcome = engine.estimate_device(device, target, condition)
                meets_deadline = outcome.total_time_s <= deadline * 1.001
                if meets_deadline and outcome.energy.active_j < best_energy:
                    best_target = target
                    best_energy = outcome.energy.active_j
                    best_time = outcome.total_time_s
                elif not meets_deadline and best_time > deadline and outcome.total_time_s < best_time:
                    # The device is a straggler either way; minimise its time instead.
                    best_target = target
                    best_energy = outcome.energy.active_j
                    best_time = outcome.total_time_s
            targets[device_id] = best_target
        return targets
