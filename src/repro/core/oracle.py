"""Oracle selection policies ``Oparticipant`` and ``OFL`` (paper Section 5.1).

``Oparticipant`` picks, with full knowledge of the round's true conditions and of every
device's data profile, the cluster of K participants that maximises a performance-per-watt
proxy (expected convergence progress divided by the round's global energy).  ``OFL``
additionally chooses each selected device's execution target, exploiting straggler slack
with lower DVFS steps or the GPU.  AutoFL's prediction accuracy (Figure 12) is measured
against ``OFL``'s decisions.

Both oracles score every candidate cluster template with the round engine's *batched*
estimator: device goodness, template realisation and plan energies are computed as array
expressions over the fleet snapshot, so oracle rounds stay fast on thousand-device fleets
(the nested per-device/per-action loops of the scalar reference would dominate otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.actions import ActionCatalog
from repro.core.selection import (
    CLUSTER_TEMPLATES,
    Policy,
    effective_num_participants,
    scale_template,
)
from repro.devices.device import ExecutionTarget
from repro.devices.fleet_arrays import (
    PROC_CPU,
    PROCESSOR_CODES,
    PROCESSOR_NAMES,
    TIER_ORDER,
    FleetArrays,
    RoundConditionsArrays,
)
from repro.devices.specs import DeviceTier
from repro.exceptions import PolicyError
from repro.registry import POLICIES
from repro.fl.surrogate import STALL_QUALITY_THRESHOLD
from repro.sim.context import RoundContext, SelectionDecision
from repro.sim.round_engine import RoundEngine


@dataclass(frozen=True)
class _RoundCache:
    """Per-round precomputation shared by every candidate plan evaluation."""

    arrays: FleetArrays
    conditions: RoundConditionsArrays
    data_quality: np.ndarray
    data_samples: np.ndarray
    goodness: np.ndarray
    #: Device ids per tier, ranked by descending goodness (stable on fleet order).
    ranked_by_tier: dict[DeviceTier, list[int]]
    #: All device ids ranked by descending goodness.
    ranked_all: list[int]


@dataclass(frozen=True)
class _CandidatePlan:
    """One evaluated candidate selection."""

    template_name: str
    participants: list[int]
    processors: np.ndarray
    vf_steps: np.ndarray
    round_time_s: float
    global_energy_j: float
    expected_gain: float

    @property
    def score(self) -> float:
        """PPW proxy: expected convergence progress per Joule of global energy."""
        if self.global_energy_j <= 0:
            return 0.0
        return (0.05 + self.expected_gain) / self.global_energy_j

    def targets(self) -> dict[int, ExecutionTarget]:
        """Materialise the per-device execution targets of this plan."""
        return {
            device_id: ExecutionTarget(
                processor=PROCESSOR_NAMES[int(self.processors[i])],
                vf_step=int(self.vf_steps[i]),
            )
            for i, device_id in enumerate(self.participants)
        }


@POLICIES.register("oparticipant", aliases=("o-participant", "oracle-participant"))
class OracleParticipantPolicy(Policy):
    """``Oparticipant``: oracle participant selection with default execution targets."""

    name = "oparticipant"

    #: Composite device-ranking weights used to realise a template into concrete devices.
    DATA_WEIGHT = 3.0
    INTERFERENCE_WEIGHT = 1.0
    NETWORK_WEIGHT = 0.5

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__(rng)
        self._catalog = ActionCatalog()
        self._engine: RoundEngine | None = None
        self._engine_env: object | None = None

    def _engine_for(self, ctx: RoundContext) -> RoundEngine:
        """The plan-scoring engine, cached across rounds of the same environment."""
        if self._engine is None or self._engine_env is not ctx.environment:
            self._engine = RoundEngine(ctx.environment)
            self._engine_env = ctx.environment
        return self._engine

    # ------------------------------------------------------------------ device ranking
    def _build_cache(self, ctx: RoundContext) -> _RoundCache:
        environment = ctx.environment
        arrays = environment.fleet_arrays
        conditions = ctx.conditions_as_arrays()
        network_score = np.minimum(1.0, conditions.bandwidth_mbps / 100.0)
        goodness = (
            self.DATA_WEIGHT * environment.data_quality_array
            - self.INTERFERENCE_WEIGHT
            * (conditions.co_cpu_util + 0.5 * conditions.co_mem_util)
            + self.NETWORK_WEIGHT * network_score
        )
        # Oracles are still bound by physical reachability: offline devices are
        # invisible to the ranking, so every realised template is selectable.
        online = ctx.online_mask
        ranked_by_tier: dict[DeviceTier, list[int]] = {}
        for code, tier in enumerate(TIER_ORDER):
            rows = np.flatnonzero(arrays.tier_codes == code)
            if online is not None:
                rows = rows[online[rows]]
            order = rows[np.argsort(-goodness[rows], kind="stable")]
            ranked_by_tier[tier] = [int(arrays.device_ids[row]) for row in order]
        all_rows = np.argsort(-goodness, kind="stable")
        if online is not None:
            all_rows = all_rows[online[all_rows]]
        ranked_all = [int(arrays.device_ids[row]) for row in all_rows]
        return _RoundCache(
            arrays=arrays,
            conditions=conditions,
            data_quality=environment.data_quality_array,
            data_samples=environment.data_samples_array,
            goodness=goodness,
            ranked_by_tier=ranked_by_tier,
            ranked_all=ranked_all,
        )

    def _realize_template(
        self, ctx: RoundContext, cache: _RoundCache, template: dict[DeviceTier, int]
    ) -> list[int]:
        num_participants = effective_num_participants(ctx)
        counts = scale_template(template, num_participants)
        chosen: list[int] = []
        for tier in (DeviceTier.HIGH, DeviceTier.MID, DeviceTier.LOW):
            wanted = counts.get(tier, 0)
            if wanted == 0:
                continue
            chosen.extend(cache.ranked_by_tier[tier][:wanted])
        if len(chosen) < num_participants:
            taken = set(chosen)
            remaining = [
                device_id for device_id in cache.ranked_all if device_id not in taken
            ]
            chosen.extend(remaining[: num_participants - len(chosen)])
        return chosen[:num_participants]

    # ------------------------------------------------------------------ plan evaluation
    def _expected_gain(self, cache: _RoundCache, rows: np.ndarray) -> float:
        total_samples = int(np.sum(cache.data_samples[rows]))
        if total_samples == 0:
            return 0.0
        quality = float(
            np.sum(cache.data_quality[rows] * cache.data_samples[rows]) / total_samples
        )
        if quality <= STALL_QUALITY_THRESHOLD:
            return 0.0
        return (quality - STALL_QUALITY_THRESHOLD) / (1.0 - STALL_QUALITY_THRESHOLD)

    def _target_arrays(
        self,
        ctx: RoundContext,
        engine: RoundEngine,
        cache: _RoundCache,
        rows: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-participant execution targets used when evaluating a plan.

        The base oracle keeps every participant on its default target (CPU at the highest
        V-F step); :class:`OracleFLPolicy` overrides this with batched target search.
        """
        processors = np.full(len(rows), PROC_CPU, dtype=np.int64)
        vf_steps = cache.arrays.default_vf_steps()[rows]
        return processors, vf_steps

    def _evaluate_plan(
        self,
        ctx: RoundContext,
        engine: RoundEngine,
        cache: _RoundCache,
        name: str,
        participants: list[int],
    ) -> _CandidatePlan:
        rows = cache.arrays.rows_for(participants)
        processors, vf_steps = self._target_arrays(ctx, engine, cache, rows)
        estimates = engine.estimate_batch(
            rows, processors, vf_steps, cache.conditions.take(rows)
        )
        total_times = estimates.total_time_s
        round_time = float(total_times.max())
        active_energy = float(np.sum(estimates.compute_j + estimates.communication_j))
        idle_mask = np.ones(len(cache.arrays), dtype=bool)
        idle_mask[rows] = False
        if ctx.online_mask is not None:
            # Offline devices draw no idle energy on behalf of this job.
            idle_mask &= ctx.online_mask
        idle_energy = float(np.sum(cache.arrays.idle_power_watt[idle_mask] * round_time))
        return _CandidatePlan(
            template_name=name,
            participants=participants,
            processors=processors,
            vf_steps=vf_steps,
            round_time_s=round_time,
            global_energy_j=active_energy + idle_energy,
            expected_gain=self._expected_gain(cache, rows),
        )

    def select(self, ctx: RoundContext) -> SelectionDecision:
        engine = self._engine_for(ctx)
        cache = self._build_cache(ctx)
        plans = [
            self._evaluate_plan(
                ctx, engine, cache, name, self._realize_template(ctx, cache, template)
            )
            for name, template in CLUSTER_TEMPLATES.items()
        ]
        if not plans:
            raise PolicyError("no candidate plans could be evaluated")
        best = max(plans, key=lambda plan: plan.score)
        # The array form of the winning plan's targets lets the round engine skip its
        # per-participant dict walk; the dict form stays for scalar consumers.
        return SelectionDecision(
            participants=best.participants,
            targets=best.targets(),
            target_processors=best.processors,
            target_vf_steps=best.vf_steps,
        )


@POLICIES.register("ofl", aliases=("o-fl", "oracle-fl", "oracle"))
class OracleFLPolicy(OracleParticipantPolicy):
    """``OFL``: oracle participant selection plus per-device execution-target selection."""

    name = "ofl"

    def _target_arrays(
        self,
        ctx: RoundContext,
        engine: RoundEngine,
        cache: _RoundCache,
        rows: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        conditions = cache.conditions.take(rows)
        # First pass with default (highest-performance CPU) targets establishes the round
        # deadline set by the slowest participant.
        best_processors, best_steps = super()._target_arrays(ctx, engine, cache, rows)
        defaults = engine.estimate_batch(rows, best_processors, best_steps, conditions)
        default_times = defaults.total_time_s
        deadline = float(default_times.max())
        best_energy = defaults.compute_j + defaults.communication_j
        best_time = default_times
        for action_id in self._catalog.action_ids:
            action = self._catalog.spec(action_id)
            code = PROCESSOR_CODES[action.processor]
            processors = np.full(len(rows), code, dtype=np.int64)
            num_steps = cache.arrays.num_vf_steps[code, rows]
            vf_steps = np.round(action.frequency_fraction * (num_steps - 1)).astype(np.int64)
            estimate = engine.estimate_batch(rows, processors, vf_steps, conditions)
            times = estimate.total_time_s
            energies = estimate.compute_j + estimate.communication_j
            meets_deadline = times <= deadline * 1.001
            # A target that meets the deadline wins on energy; a device that is a
            # straggler either way instead minimises its time.
            improves = meets_deadline & (energies < best_energy)
            unstalls = (~meets_deadline) & (best_time > deadline) & (times < best_time)
            update = improves | unstalls
            best_processors = np.where(update, processors, best_processors)
            best_steps = np.where(update, vf_steps, best_steps)
            best_energy = np.where(update, energies, best_energy)
            best_time = np.where(update, times, best_time)
        return best_processors, best_steps
