"""Q-table storage: per-device lookup tables with optional per-tier sharing.

Paper Section 4: AutoFL keeps a Q-table per device; to scale to large populations (and to
speed up early training), devices of the same performance category can share one table at
the cost of a small prediction-accuracy loss (Section 6.4, Figure 15).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import GlobalState, LocalState
from repro.devices.specs import DeviceTier
from repro.exceptions import PolicyError

QKey = tuple[tuple[int, ...], tuple[int, ...], int]


class QTable:
    """A sparse Q(S_global, S_local, A) lookup table."""

    def __init__(self, rng: np.random.Generator | None = None, init_scale: float = 0.01) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._init_scale = init_scale
        self._values: dict[QKey, float] = {}

    def __len__(self) -> int:
        return len(self._values)

    @staticmethod
    def _key(global_state: GlobalState, local_state: LocalState, action_id: int) -> QKey:
        return (global_state.as_tuple(), local_state.as_tuple(), action_id)

    def get(self, global_state: GlobalState, local_state: LocalState, action_id: int) -> float:
        """Q-value of a (state, action) pair, lazily initialised to a small random value.

        At ``init_scale=0.0`` entries initialise to exact zero *without consuming the RNG
        stream* — the configuration under which the scalar and vectorised agents are
        stream-compatible.
        """
        key = self._key(global_state, local_state, action_id)
        if key not in self._values:
            if self._init_scale == 0.0:
                self._values[key] = 0.0
            else:
                self._values[key] = float(self._rng.normal(0.0, self._init_scale))
        return self._values[key]

    def set(
        self, global_state: GlobalState, local_state: LocalState, action_id: int, value: float
    ) -> None:
        """Overwrite the Q-value of a (state, action) pair."""
        self._values[self._key(global_state, local_state, action_id)] = float(value)

    def best_action(
        self, global_state: GlobalState, local_state: LocalState, action_ids: list[int]
    ) -> tuple[int, float]:
        """The action (among ``action_ids``) with the highest Q-value, and that value."""
        if not action_ids:
            raise PolicyError("action_ids must not be empty")
        best_id = action_ids[0]
        best_value = self.get(global_state, local_state, best_id)
        for action_id in action_ids[1:]:
            value = self.get(global_state, local_state, action_id)
            if value > best_value:
                best_id, best_value = action_id, value
        return best_id, best_value

    def memory_entries(self) -> int:
        """Number of materialised table entries (a proxy for memory footprint)."""
        return len(self._values)


class VectorQTableStore:
    """Dense Q-value blocks for the vectorised AutoFL agent.

    Where :class:`QTable` is a sparse per-entry dict, this store keeps, per global-state
    tuple, one dense array of shape ``[num_keys, num_local_codes, num_actions + 1]`` —
    ``num_keys`` is the number of sharing groups (fleet size for per-device sharing,
    number of tiers for per-tier), local states are addressed by their packed code
    (:meth:`repro.core.state.StateEncoder.local_code`) and the final action column is the
    reserved idle action.  Lookup, argmax and the Q-update for a whole candidate set then
    collapse into fancy indexing.

    Blocks are initialised with one draw of ``rng.normal(0, init_scale)`` per cell at
    first access of their global tuple.  The draw *order* necessarily differs from the
    sparse table's per-entry lazy initialisation, so the vectorised agent is stream-
    compatible with the scalar agent only at ``init_scale=0.0`` (both start from exact
    zeros) — which is how the equivalence tests pin the two implementations.
    """

    def __init__(
        self,
        num_keys: int,
        num_local_codes: int,
        num_actions: int,
        rng: np.random.Generator | None = None,
        init_scale: float = 0.01,
    ) -> None:
        if num_keys <= 0 or num_local_codes <= 0 or num_actions <= 0:
            raise PolicyError("VectorQTableStore dimensions must be positive")
        self._num_keys = num_keys
        self._num_local_codes = num_local_codes
        self._num_actions = num_actions
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._init_scale = init_scale
        self._blocks: dict[tuple[int, ...], np.ndarray] = {}

    @property
    def num_actions(self) -> int:
        """Number of selectable actions (the idle column is extra)."""
        return self._num_actions

    @property
    def idle_column(self) -> int:
        """Column index of the reserved idle action."""
        return self._num_actions

    def block(self, global_tuple: tuple[int, ...]) -> np.ndarray:
        """The dense Q-block of one global state, created on first access."""
        existing = self._blocks.get(global_tuple)
        if existing is not None:
            return existing
        if self._init_scale == 0.0:
            block = np.zeros(
                (self._num_keys, self._num_local_codes, self._num_actions + 1),
                dtype=np.float64,
            )
        else:
            block = self._rng.normal(
                0.0,
                self._init_scale,
                size=(self._num_keys, self._num_local_codes, self._num_actions + 1),
            )
        self._blocks[global_tuple] = block
        return block

    @property
    def num_tables(self) -> int:
        """Number of materialised global-state blocks."""
        return len(self._blocks)

    def total_entries(self) -> int:
        """Total number of Q-cells materialised (a proxy for memory footprint)."""
        return sum(block.size for block in self._blocks.values())


class QTableStore:
    """Holds the Q-tables of a fleet, either one per device or one per performance tier."""

    PER_DEVICE = "per-device"
    PER_TIER = "per-tier"

    def __init__(
        self,
        sharing: str = PER_TIER,
        rng: np.random.Generator | None = None,
        init_scale: float = 0.01,
    ) -> None:
        if sharing not in (self.PER_DEVICE, self.PER_TIER):
            raise PolicyError(
                f"sharing must be {self.PER_DEVICE!r} or {self.PER_TIER!r}, got {sharing!r}"
            )
        self._sharing = sharing
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._init_scale = init_scale
        self._tables: dict[object, QTable] = {}

    @property
    def sharing(self) -> str:
        """The sharing mode (``"per-device"`` or ``"per-tier"``)."""
        return self._sharing

    def table_for(self, device_id: int, tier: DeviceTier) -> QTable:
        """The Q-table responsible for a device."""
        key: object = device_id if self._sharing == self.PER_DEVICE else tier
        if key not in self._tables:
            self._tables[key] = QTable(rng=self._rng, init_scale=self._init_scale)
        return self._tables[key]

    @property
    def num_tables(self) -> int:
        """Number of distinct tables materialised so far."""
        return len(self._tables)

    def total_entries(self) -> int:
        """Total number of Q-table entries across all tables."""
        return sum(table.memory_entries() for table in self._tables.values())
