"""Q-table storage: per-device lookup tables with optional per-tier sharing.

Paper Section 4: AutoFL keeps a Q-table per device; to scale to large populations (and to
speed up early training), devices of the same performance category can share one table at
the cost of a small prediction-accuracy loss (Section 6.4, Figure 15).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import GlobalState, LocalState
from repro.devices.specs import DeviceTier
from repro.exceptions import PolicyError

QKey = tuple[tuple[int, ...], tuple[int, ...], int]


class QTable:
    """A sparse Q(S_global, S_local, A) lookup table."""

    def __init__(self, rng: np.random.Generator | None = None, init_scale: float = 0.01) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._init_scale = init_scale
        self._values: dict[QKey, float] = {}

    def __len__(self) -> int:
        return len(self._values)

    @staticmethod
    def _key(global_state: GlobalState, local_state: LocalState, action_id: int) -> QKey:
        return (global_state.as_tuple(), local_state.as_tuple(), action_id)

    def get(self, global_state: GlobalState, local_state: LocalState, action_id: int) -> float:
        """Q-value of a (state, action) pair, lazily initialised to a small random value."""
        key = self._key(global_state, local_state, action_id)
        if key not in self._values:
            self._values[key] = float(self._rng.normal(0.0, self._init_scale))
        return self._values[key]

    def set(
        self, global_state: GlobalState, local_state: LocalState, action_id: int, value: float
    ) -> None:
        """Overwrite the Q-value of a (state, action) pair."""
        self._values[self._key(global_state, local_state, action_id)] = float(value)

    def best_action(
        self, global_state: GlobalState, local_state: LocalState, action_ids: list[int]
    ) -> tuple[int, float]:
        """The action (among ``action_ids``) with the highest Q-value, and that value."""
        if not action_ids:
            raise PolicyError("action_ids must not be empty")
        best_id = action_ids[0]
        best_value = self.get(global_state, local_state, best_id)
        for action_id in action_ids[1:]:
            value = self.get(global_state, local_state, action_id)
            if value > best_value:
                best_id, best_value = action_id, value
        return best_id, best_value

    def memory_entries(self) -> int:
        """Number of materialised table entries (a proxy for memory footprint)."""
        return len(self._values)


class QTableStore:
    """Holds the Q-tables of a fleet, either one per device or one per performance tier."""

    PER_DEVICE = "per-device"
    PER_TIER = "per-tier"

    def __init__(
        self,
        sharing: str = PER_TIER,
        rng: np.random.Generator | None = None,
    ) -> None:
        if sharing not in (self.PER_DEVICE, self.PER_TIER):
            raise PolicyError(
                f"sharing must be {self.PER_DEVICE!r} or {self.PER_TIER!r}, got {sharing!r}"
            )
        self._sharing = sharing
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._tables: dict[object, QTable] = {}

    @property
    def sharing(self) -> str:
        """The sharing mode (``"per-device"`` or ``"per-tier"``)."""
        return self._sharing

    def table_for(self, device_id: int, tier: DeviceTier) -> QTable:
        """The Q-table responsible for a device."""
        key: object = device_id if self._sharing == self.PER_DEVICE else tier
        if key not in self._tables:
            self._tables[key] = QTable(rng=self._rng)
        return self._tables[key]

    @property
    def num_tables(self) -> int:
        """Number of distinct tables materialised so far."""
        return len(self._tables)

    def total_entries(self) -> int:
        """Total number of Q-table entries across all tables."""
        return sum(table.memory_entries() for table in self._tables.values())
