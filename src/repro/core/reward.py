"""AutoFL reward computation (paper Section 4.1, Equations 5-7).

The reward mixes the global energy of the whole population, the device's own local energy,
the achieved test accuracy and the accuracy improvement over the previous round.  If the
round failed to improve accuracy, the reward collapses to ``accuracy - 100`` (how far the
model still is from 100 %), strongly discouraging re-selecting the action that caused it.

Energies from different fleets/workloads differ by orders of magnitude, so before entering
the reward they are normalised by running means (maintained per reward calculator), keeping
the energy terms commensurate with the accuracy terms exactly as the paper's weighting
(``alpha``, ``beta``) presumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PolicyError


@dataclass(frozen=True)
class RewardWeights:
    """Weights of the accuracy terms in Eq. 7."""

    alpha: float = 0.5
    beta: float = 2.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise PolicyError("reward weights must be non-negative")


class _RunningMean:
    """Numerically simple running mean used for energy normalisation."""

    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def update(self, value: float) -> None:
        self._total += value
        self._count += 1

    @property
    def value(self) -> float:
        return self._total / self._count if self._count else 0.0


class RewardCalculator:
    """Computes per-device rewards for one aggregation round."""

    #: Scale of the normalised energy terms (a typical round's global energy maps to this).
    ENERGY_SCALE = 10.0

    def __init__(self, weights: RewardWeights | None = None) -> None:
        self._weights = weights or RewardWeights()
        self._global_mean = _RunningMean()
        self._local_mean = _RunningMean()

    @property
    def weights(self) -> RewardWeights:
        """The accuracy/improvement weights in use."""
        return self._weights

    def observe_round(self, global_energy_j: float, mean_local_energy_j: float) -> None:
        """Update the normalisation statistics with this round's measured energies."""
        if global_energy_j < 0 or mean_local_energy_j < 0:
            raise PolicyError("energies must be non-negative")
        self._global_mean.update(global_energy_j)
        self._local_mean.update(mean_local_energy_j)

    def _normalise(self, value: float, mean: _RunningMean) -> float:
        reference = mean.value
        if reference <= 0:
            return self.ENERGY_SCALE
        return self.ENERGY_SCALE * value / reference

    def reward(
        self,
        global_energy_j: float,
        local_energy_j: float,
        accuracy: float,
        previous_accuracy: float,
        selected: bool = True,
        failed: bool = False,
    ) -> float:
        """Reward of one device for one round (Eq. 7).

        ``accuracy`` and ``previous_accuracy`` are fractions in ``[0, 1]``; the paper's
        percent-scale formulation is recovered internally.  ``failed`` marks a selected
        device that dropped out mid-round (fleet-dynamics fault injection): its update
        never arrived, so it takes the penalty branch *plus* the normalised cost of the
        energy it wasted — unreliable picks are learnt away from.
        """
        if not 0.0 <= accuracy <= 1.0 or not 0.0 <= previous_accuracy <= 1.0:
            raise PolicyError("accuracies must be fractions in [0, 1]")
        accuracy_pct = accuracy * 100.0
        improvement_pct = (accuracy - previous_accuracy) * 100.0
        if selected and failed:
            return accuracy_pct - 100.0 - self._normalise(local_energy_j, self._local_mean)
        if selected and improvement_pct <= 0.0:
            # The selected action failed to improve the model: Eq. 7's penalty branch.
            return accuracy_pct - 100.0
        improvement_pct = max(0.0, improvement_pct)
        return (
            -self._normalise(global_energy_j, self._global_mean)
            - self._normalise(local_energy_j, self._local_mean)
            + self._weights.alpha * accuracy_pct
            + self._weights.beta * improvement_pct
        )

    def rewards_batch(
        self,
        global_energy_j: float,
        local_energy_j: np.ndarray,
        accuracy: float,
        previous_accuracy: float,
        selected: np.ndarray,
        failed: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`reward` over per-device energies and selection masks.

        ``local_energy_j`` / ``selected`` / ``failed`` are aligned per-device arrays;
        each element computes exactly the scalar branches of Eq. 7, so values match the
        per-device loop bit-for-bit.
        """
        if not 0.0 <= accuracy <= 1.0 or not 0.0 <= previous_accuracy <= 1.0:
            raise PolicyError("accuracies must be fractions in [0, 1]")
        accuracy_pct = accuracy * 100.0
        improvement_pct = (accuracy - previous_accuracy) * 100.0
        local_reference = self._local_mean.value
        if local_reference <= 0:
            norm_local = np.full_like(local_energy_j, self.ENERGY_SCALE)
        else:
            norm_local = self.ENERGY_SCALE * local_energy_j / local_reference
        norm_global = self._normalise(global_energy_j, self._global_mean)
        base = (
            -norm_global
            - norm_local
            + self._weights.alpha * accuracy_pct
            + self._weights.beta * max(0.0, improvement_pct)
        )
        rewards = np.where(
            selected & failed,
            accuracy_pct - 100.0 - norm_local,
            np.where(selected & (improvement_pct <= 0.0), accuracy_pct - 100.0, base),
        )
        return rewards
