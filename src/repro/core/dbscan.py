"""DBSCAN clustering used to discretise continuous state features.

Paper Section 4.1: "When a feature has a continuous value, it is difficult to define the
state in a discrete manner for the lookup table of Q-learning.  To convert the continuous
features into discrete values, we applied the DBSCAN clustering algorithm to each feature —
DBSCAN determines the optimal number of clusters for the given data."

:class:`DBSCAN1D` is a density-based clusterer for one-dimensional feature observations and
:func:`derive_bins` converts its clusters into bin edges compatible with
:class:`repro.core.state.StateEncoder`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PolicyError

#: Label assigned to noise points (DBSCAN convention).
NOISE = -1


class DBSCAN1D:
    """Density-based spatial clustering for one-dimensional data."""

    def __init__(self, eps: float, min_samples: int = 3) -> None:
        if eps <= 0:
            raise PolicyError("eps must be positive")
        if min_samples < 1:
            raise PolicyError("min_samples must be >= 1")
        self.eps = eps
        self.min_samples = min_samples

    def fit_predict(self, values: np.ndarray) -> np.ndarray:
        """Cluster ``values`` and return per-point labels (``-1`` marks noise).

        The 1-D case admits a simple O(n log n) implementation: sort the points, then a
        point is a core point if at least ``min_samples`` points (including itself) lie
        within ``eps``; contiguous runs of density-reachable points form clusters.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise PolicyError("DBSCAN1D expects a 1-D array")
        count = len(values)
        labels = np.full(count, NOISE, dtype=int)
        if count == 0:
            return labels
        order = np.argsort(values)
        ordered = values[order]

        neighbor_counts = np.array(
            [
                np.searchsorted(ordered, value + self.eps, side="right")
                - np.searchsorted(ordered, value - self.eps, side="left")
                for value in ordered
            ]
        )
        is_core = neighbor_counts >= self.min_samples

        cluster_id = -1
        previous_core_value: float | None = None
        ordered_labels = np.full(count, NOISE, dtype=int)
        for index, value in enumerate(ordered):
            if not is_core[index]:
                continue
            if previous_core_value is None or value - previous_core_value > self.eps:
                cluster_id += 1
            ordered_labels[index] = cluster_id
            previous_core_value = value
        # Border points: non-core points within eps of a core point join that cluster.
        core_values = ordered[is_core]
        core_labels = ordered_labels[is_core]
        if len(core_values) > 0:
            for index, value in enumerate(ordered):
                if ordered_labels[index] != NOISE:
                    continue
                nearest = int(np.argmin(np.abs(core_values - value)))
                if abs(core_values[nearest] - value) <= self.eps:
                    ordered_labels[index] = core_labels[nearest]
        labels[order] = ordered_labels
        return labels

    def num_clusters(self, values: np.ndarray) -> int:
        """Number of clusters found in ``values`` (excluding noise)."""
        labels = self.fit_predict(values)
        return int(labels.max() + 1) if (labels >= 0).any() else 0


def derive_bins(values: np.ndarray, eps: float, min_samples: int = 3) -> list[float]:
    """Derive discretisation thresholds from observations via DBSCAN.

    Each threshold is the midpoint between the maximum of one cluster and the minimum of
    the next (in value order); feeding the result to ``_bin_value``-style binning assigns
    every cluster its own discrete symbol.  Returns an empty list when fewer than two
    clusters are found (the feature is effectively constant).
    """
    values = np.asarray(values, dtype=float)
    clusterer = DBSCAN1D(eps=eps, min_samples=min_samples)
    labels = clusterer.fit_predict(values)
    cluster_ids = sorted(set(labels[labels >= 0]))
    if len(cluster_ids) < 2:
        return []
    ranges = sorted(
        (float(values[labels == cluster].min()), float(values[labels == cluster].max()))
        for cluster in cluster_ids
    )
    return [
        (ranges[index][1] + ranges[index + 1][0]) / 2.0 for index in range(len(ranges) - 1)
    ]
