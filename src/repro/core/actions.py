"""The AutoFL action space (paper Section 4.1, "Action").

Two levels of actions exist: the global-level selection of K participants (realised by
ranking devices by their Q-values) and, for each selected device, the choice of execution
target — CPU at one of several DVFS steps, or the GPU.  The catalog below enumerates a
small, fixed set of per-device target actions (shared across devices of the same tier) so
the Q-tables stay compact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.device import ExecutionTarget, MobileDevice
from repro.exceptions import PolicyError

#: Reserved action id used when a device is not selected for a round (it idles).
IDLE_ACTION = -1


@dataclass(frozen=True)
class ActionSpec:
    """One entry of the per-device action catalog."""

    action_id: int
    label: str
    processor: str
    #: Relative position of the DVFS step within the processor's range (1.0 = highest).
    frequency_fraction: float

    def to_target(self, device: MobileDevice) -> ExecutionTarget:
        """Concretise the action into an execution target for a specific device."""
        spec = device.spec.processor(self.processor)
        step = round(self.frequency_fraction * (spec.num_vf_steps - 1))
        return ExecutionTarget(processor=self.processor, vf_step=int(step))


class ActionCatalog:
    """Fixed catalog of execution-target actions shared by all devices.

    The default catalog contains the CPU at its top, 70 % and 40 % DVFS positions plus the
    GPU at its top step — enough to express the paper's "exploit straggler slack via DVFS"
    and "shift to the GPU under interference" behaviours while keeping |A| small.
    """

    def __init__(self, actions: list[ActionSpec] | None = None) -> None:
        if actions is None:
            actions = [
                ActionSpec(0, "cpu-high", "cpu", 1.0),
                ActionSpec(1, "cpu-mid", "cpu", 0.7),
                ActionSpec(2, "cpu-low", "cpu", 0.4),
                ActionSpec(3, "gpu-high", "gpu", 1.0),
            ]
        if not actions:
            raise PolicyError("action catalog must not be empty")
        ids = [action.action_id for action in actions]
        if len(set(ids)) != len(ids) or IDLE_ACTION in ids:
            raise PolicyError("action ids must be unique and must not use the idle id")
        self._actions = {action.action_id: action for action in actions}

    def __len__(self) -> int:
        return len(self._actions)

    @property
    def action_ids(self) -> list[int]:
        """All selectable action ids (idle excluded)."""
        return sorted(self._actions)

    def spec(self, action_id: int) -> ActionSpec:
        """The :class:`ActionSpec` for an action id."""
        try:
            return self._actions[action_id]
        except KeyError as exc:
            raise PolicyError(f"unknown action id {action_id}") from exc

    def to_target(self, action_id: int, device: MobileDevice) -> ExecutionTarget:
        """Concretise an action id into an execution target for ``device``."""
        return self.spec(action_id).to_target(device)

    def default_action_id(self) -> int:
        """The baseline action: CPU at the highest frequency."""
        return self.action_ids[0]
