"""AutoFL: the paper's primary contribution.

A Q-learning agent running on the aggregation server that, every round, selects the K
participant devices and each participant's execution target (CPU DVFS step or GPU) to
maximise energy efficiency while preserving convergence and accuracy (paper Section 4).
Baseline selection policies (random / power / performance / static clusters) and the two
oracle policies (``Oparticipant``, ``OFL``) used as comparison points also live here.
"""

from repro.core.actions import ActionCatalog, IDLE_ACTION
from repro.core.agent import AutoFLAgent, QLearningConfig
from repro.core.controller import AutoFLPolicy
from repro.core.dbscan import DBSCAN1D, derive_bins
from repro.core.oracle import OracleFLPolicy, OracleParticipantPolicy
from repro.core.qtable import QTable, QTableStore
from repro.core.reward import RewardCalculator, RewardWeights
from repro.core.selection import (
    Policy,
    PerformancePolicy,
    PowerPolicy,
    RandomPolicy,
    StaticClusterPolicy,
    make_policy,
)
from repro.core.state import GlobalState, LocalState, StateEncoder

__all__ = [
    "ActionCatalog",
    "AutoFLAgent",
    "AutoFLPolicy",
    "DBSCAN1D",
    "GlobalState",
    "IDLE_ACTION",
    "LocalState",
    "OracleFLPolicy",
    "OracleParticipantPolicy",
    "PerformancePolicy",
    "Policy",
    "PowerPolicy",
    "QLearningConfig",
    "QTable",
    "QTableStore",
    "RandomPolicy",
    "RewardCalculator",
    "RewardWeights",
    "StateEncoder",
    "StaticClusterPolicy",
    "derive_bins",
    "make_policy",
]
