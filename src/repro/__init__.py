"""Reproduction of *AutoFL: Enabling Heterogeneity-Aware Energy Efficient Federated Learning*.

The package is organised as a set of substrates (devices, network, interference, data,
neural networks, federated learning, simulator) plus the paper's primary contribution — the
AutoFL reinforcement-learning controller — in :mod:`repro.core`.

Quickstart
----------
>>> from repro import build_default_experiment
>>> result = build_default_experiment(policy="autofl", rounds=30).run()
>>> result.summary()  # doctest: +SKIP
"""

from repro.api import build_default_experiment, run_policy_comparison
from repro.config import GlobalParams, SimulationConfig
from repro.version import __version__

__all__ = [
    "__version__",
    "GlobalParams",
    "SimulationConfig",
    "build_default_experiment",
    "run_policy_comparison",
]
