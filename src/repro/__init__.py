"""Reproduction of *AutoFL: Enabling Heterogeneity-Aware Energy Efficient Federated Learning*.

The package is organised as a set of substrates (devices, network, interference, data,
neural networks, federated learning, simulator) plus the paper's primary contribution — the
AutoFL reinforcement-learning controller — in :mod:`repro.core`.  Experiments are
declarative: an :class:`ExperimentSpec` names a point in the paper's evaluation space, a
:class:`Sweep` expands cartesian grids over any axis, and a :class:`BatchRunner` executes
them with spec-hash caching (also exposed as the ``python -m repro`` CLI).  The
orchestration service (:mod:`repro.service`) adds a durable job queue, a lease-based
scheduler and a shared SQLite-indexed result store so many worker pools can drive the
simulator concurrently (``python -m repro {submit,serve,status,watch,cancel}``).

Quickstart
----------
>>> from repro import build_default_experiment
>>> result = build_default_experiment(policy="autofl", rounds=30).run()
>>> result.summary()  # doctest: +SKIP
"""

from repro.api import build_default_experiment, run_policy_comparison
from repro.config import GlobalParams, SimulationConfig
from repro.experiments.runner import (
    BatchRunner,
    ExperimentResult,
    MultiprocessExecutor,
    ResultStore,
    SerialExecutor,
    run_experiment,
)
from repro.experiments.spec import ExperimentSpec, Sweep
from repro.service import ArtifactStore, Job, JobQueue, Scheduler, make_job, open_store
from repro.sim.scenarios import ScenarioSpec
from repro.version import __version__

__all__ = [
    "__version__",
    "ArtifactStore",
    "BatchRunner",
    "ExperimentResult",
    "ExperimentSpec",
    "GlobalParams",
    "Job",
    "JobQueue",
    "MultiprocessExecutor",
    "ResultStore",
    "ScenarioSpec",
    "Scheduler",
    "SerialExecutor",
    "SimulationConfig",
    "Sweep",
    "build_default_experiment",
    "make_job",
    "open_store",
    "run_experiment",
    "run_policy_comparison",
]
